"""Tests for DSC (appendix A.1, Figures 7–8)."""

from __future__ import annotations

import pytest

from repro import DSCScheduler, TaskGraph


class TestClusteringBehaviour:
    def test_chain_stays_on_one_cluster(self, chain5):
        """Every zeroing along a chain reduces the start time: one cluster."""
        s = DSCScheduler().schedule(chain5)
        assert s.n_processors == 1
        assert s.makespan == chain5.serial_time()

    def test_zeroing_accepted_when_it_helps(self):
        """a->b with heavy comm: b must merge into a's cluster."""
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 10)
        g.add_edge("a", "b", 100)
        s = DSCScheduler().schedule(g)
        assert s.processor_of("a") == s.processor_of("b")
        assert s.makespan == 20.0

    def test_fork_with_light_comm_splits(self):
        """Cheap messages, big tasks: the fork's branches go parallel."""
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 100)
        g.add_task("c", 100)
        g.add_edge("a", "b", 1)
        g.add_edge("a", "c", 1)
        s = DSCScheduler().schedule(g)
        assert s.processor_of("b") != s.processor_of("c")
        assert s.makespan == pytest.approx(111.0)

    def test_fork_with_heavy_comm_serializes(self):
        """Messages dominate: both branches pile onto a's cluster."""
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 10)
        g.add_task("c", 10)
        g.add_edge("a", "b", 500)
        g.add_edge("a", "c", 500)
        s = DSCScheduler().schedule(g)
        assert s.n_processors == 1
        assert s.makespan == 30.0

    def test_independent_sources_never_merge(self, two_sources_join):
        """DSC only zeroes edges — unrelated sources stay apart, so the
        join pays cross-cluster communication (the low-G failure mode)."""
        s = DSCScheduler().schedule(two_sources_join)
        assert s.processor_of("s1") != s.processor_of("s2")
        assert s.makespan > two_sources_join.serial_time()  # retardation

    def test_join_merges_into_latest_arriving_cluster(self):
        g = TaskGraph()
        g.add_task("a", 50)
        g.add_task("b", 10)
        g.add_task("j", 10)
        g.add_edge("a", "j", 20)
        g.add_edge("b", "j", 20)
        s = DSCScheduler().schedule(g)
        # joining a's cluster: start max(50, 10+20) = 50; b's: max(10, 70) = 70
        assert s.processor_of("j") == s.processor_of("a")
        assert s.start("j") == 50.0


class TestPaperExample:
    def test_valid_and_competitive(self, paper_example):
        s = DSCScheduler().schedule(paper_example)
        s.validate(paper_example)
        assert s.makespan <= 143.0  # at least as good as fully parallel

    def test_dominant_sequence_first(self, paper_example):
        """Node 1 (source, on the dominant sequence) is scheduled at 0."""
        s = DSCScheduler().schedule(paper_example)
        assert s.start(1) == 0.0


class TestCT2Ablation:
    def test_ct2_flag_exists_and_schedules(self, paper_example, wide_fork):
        for g in (paper_example, wide_fork):
            a = DSCScheduler(use_ct2=True).schedule(g)
            b = DSCScheduler(use_ct2=False).schedule(g)
            a.validate(g)
            b.validate(g)

    def test_ct2_protects_partial_free_node(self):
        """Merging a low-priority side task must not squat on the cluster a
        high-priority partial-free task needs.

        Graph: src feeds crit (heavy path) and side (light path); crit is
        partial-free while side is free because crit also waits on src2.
        """
        g = TaskGraph()
        g.add_task("src", 10)
        g.add_task("src2", 30)
        g.add_task("side", 5)
        g.add_task("crit", 100)
        g.add_edge("src", "side", 4)
        g.add_edge("src", "crit", 4)
        g.add_edge("src2", "crit", 4)
        with_ct2 = DSCScheduler(use_ct2=True).schedule(g)
        with_ct2.validate(g)
        no_ct2 = DSCScheduler(use_ct2=False).schedule(g)
        no_ct2.validate(g)
        assert with_ct2.makespan <= no_ct2.makespan + 1e-9
