"""Tests for the GA and SA metaheuristic schedulers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import get_scheduler
from repro.schedulers import AnnealingScheduler, GeneticScheduler

from conftest import task_graphs


class TestGenetic:
    def test_valid_on_zoo(self, paper_example, diamond, wide_fork):
        ga = GeneticScheduler(population=8, generations=5)
        for g in (paper_example, diamond, wide_fork):
            ga.schedule(g).validate(g)

    def test_never_worse_than_seed_heuristics(self, paper_example, two_sources_join):
        ga = GeneticScheduler(population=8, generations=3)
        for g in (paper_example, two_sources_join):
            best_seed = min(
                get_scheduler(n).schedule(g).makespan
                for n in ("CLANS", "DSC", "MCP", "MH")
            )
            assert ga.schedule(g).makespan <= best_seed + 1e-9

    def test_deterministic_under_seed(self, paper_example):
        a = GeneticScheduler(population=8, generations=4, seed=7).schedule(paper_example)
        b = GeneticScheduler(population=8, generations=4, seed=7).schedule(paper_example)
        assert a.makespan == b.makespan

    def test_finds_optimum_on_tiny_graph(self, diamond):
        ga = GeneticScheduler(population=16, generations=15)
        opt = get_scheduler("OPT").schedule(diamond)
        assert ga.schedule(diamond).makespan == pytest.approx(opt.makespan)

    def test_max_processors_respected(self, wide_fork):
        s = GeneticScheduler(population=8, generations=3, max_processors=2).schedule(
            wide_fork
        )
        assert s.n_processors <= 2

    def test_bad_params(self):
        with pytest.raises(ValueError):
            GeneticScheduler(population=2)
        with pytest.raises(ValueError):
            GeneticScheduler(generations=0)

    @given(g=task_graphs(min_tasks=1, max_tasks=8))
    @settings(max_examples=10, deadline=None)
    def test_property_valid(self, g):
        s = GeneticScheduler(population=6, generations=2).schedule(g)
        s.validate(g)


class TestAnnealing:
    def test_valid_on_zoo(self, paper_example, diamond, wide_fork):
        sa = AnnealingScheduler(steps=150)
        for g in (paper_example, diamond, wide_fork):
            sa.schedule(g).validate(g)

    def test_never_worse_than_start(self, paper_example, two_sources_join, wide_fork):
        sa = AnnealingScheduler(steps=200, start_heuristic="MCP")
        for g in (paper_example, two_sources_join, wide_fork):
            start = get_scheduler("MCP").schedule(g).makespan
            assert sa.schedule(g).makespan <= start + 1e-9

    def test_deterministic_under_seed(self, paper_example):
        a = AnnealingScheduler(steps=150, seed=3).schedule(paper_example)
        b = AnnealingScheduler(steps=150, seed=3).schedule(paper_example)
        assert a.makespan == b.makespan

    def test_escapes_hu_disaster(self, two_sources_join):
        """Starting from HU's retarding schedule, SA must find its way to
        at-least-serial performance."""
        sa = AnnealingScheduler(steps=600, start_heuristic="HU", seed=1)
        s = sa.schedule(two_sources_join)
        assert s.makespan <= two_sources_join.serial_time() + 1e-9

    def test_bad_params(self):
        with pytest.raises(ValueError):
            AnnealingScheduler(steps=0)
        with pytest.raises(ValueError):
            AnnealingScheduler(t_start=0.1, t_end=0.5)

    @given(g=task_graphs(min_tasks=1, max_tasks=8))
    @settings(max_examples=10, deadline=None)
    def test_property_valid(self, g):
        s = AnnealingScheduler(steps=60).schedule(g)
        s.validate(g)
