"""Tests for the DLS and HLFET extension schedulers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import TaskGraph
from repro.schedulers import get_scheduler

from conftest import task_graphs


class TestDLS:
    def test_valid_on_zoo(self, paper_example, diamond, chain5, wide_fork):
        sched = get_scheduler("DLS")
        for g in (paper_example, diamond, chain5, wide_fork):
            sched.schedule(g).validate(g)

    def test_keeps_heavy_comm_local(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 10)
        g.add_edge("a", "b", 500)
        s = get_scheduler("DLS").schedule(g)
        assert s.processor_of("a") == s.processor_of("b")

    def test_prefers_critical_task(self):
        """DLS weighs static level against start time: between two ready
        tasks with equal start options, the higher-level one goes first."""
        g = TaskGraph()
        g.add_task("crit", 10)
        g.add_task("critchild", 50)
        g.add_task("minor", 10)
        g.add_edge("crit", "critchild", 1)
        s = get_scheduler("DLS").schedule(g)
        assert s.start("crit") == 0.0

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=30, deadline=None)
    def test_always_valid(self, g):
        get_scheduler("DLS").schedule(g).validate(g)


class TestHLFET:
    def test_valid_on_zoo(self, paper_example, diamond, chain5, wide_fork):
        sched = get_scheduler("HLFET")
        for g in (paper_example, diamond, chain5, wide_fork):
            sched.schedule(g).validate(g)

    def test_sits_between_hu_and_mh(self, paper_example, chain5, two_sources_join):
        """HLFET = HU's priority + MH's placement.  With MH's placement
        rule it must avoid HU's pathologies: never pay communication that
        staying local would avoid."""
        for g in (paper_example, chain5, two_sources_join):
            hlfet = get_scheduler("HLFET").schedule(g)
            hu = get_scheduler("HU").schedule(g)
            assert hlfet.makespan <= hu.makespan + 1e-9

    def test_chain_single_processor(self, chain5):
        s = get_scheduler("HLFET").schedule(chain5)
        assert s.n_processors == 1

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=30, deadline=None)
    def test_always_valid(self, g):
        get_scheduler("HLFET").schedule(g).validate(g)
