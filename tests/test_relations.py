"""Unit tests for the ancestor/descendant relation matrix."""

from __future__ import annotations

import numpy as np

from repro import TaskGraph
from repro.clans.relations import ABOVE, BELOW, UNRELATED, RelationMatrix


class TestRelationMatrix:
    def test_chain(self, chain5):
        rm = RelationMatrix(chain5)
        assert rm.rel(0, 4) == ABOVE
        assert rm.rel(4, 0) == BELOW
        assert rm.rel(2, 2) == UNRELATED  # irreflexive
        assert rm.is_ancestor(0, 4)
        assert not rm.is_ancestor(4, 0)

    def test_diamond(self, diamond):
        rm = RelationMatrix(diamond)
        assert rm.rel("b", "c") == UNRELATED
        assert rm.rel("a", "d") == ABOVE  # transitive
        assert rm.rel("d", "b") == BELOW

    def test_matrix_antisymmetry(self, paper_example):
        rm = RelationMatrix(paper_example)
        m = rm.matrix
        above = m == ABOVE
        below = m == BELOW
        assert np.array_equal(above, below.T)
        assert not np.any(above & above.T)

    def test_tasks_in_topological_order(self, paper_example):
        rm = RelationMatrix(paper_example)
        for i, u in enumerate(rm.tasks):
            for j in range(i):
                assert not rm.is_ancestor(u, rm.tasks[j])

    def test_comparable_idx(self, diamond):
        rm = RelationMatrix(diamond)
        i, j = rm.index["b"], rm.index["c"]
        assert not rm.comparable_idx(i, j)
        assert rm.comparable_idx(rm.index["a"], rm.index["d"])

    def test_disconnected(self):
        g = TaskGraph()
        g.add_task("x", 1)
        g.add_task("y", 1)
        rm = RelationMatrix(g)
        assert rm.rel("x", "y") == UNRELATED

    def test_single(self, single):
        rm = RelationMatrix(single)
        assert rm.n == 1
