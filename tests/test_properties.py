"""Property-based tests on cross-cutting invariants (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    TaskGraph,
    anchor_out_degree,
    granularity,
    paper_schedulers,
    serial_schedule,
    simulate_clustering,
)
from repro.clans import decompose, is_clan
from repro.clans.parse_tree import ClanKind
from repro.core.analysis import b_levels, critical_path_length, t_levels
from repro.generation.random_dag import (
    adjust_anchor,
    assign_weights,
    sp_dag_from_tree,
)
from repro.generation.parse_tree import random_parse_tree

from conftest import task_graphs, weighted_dags_with_edges


class TestLevelInvariants:
    @given(g=task_graphs(min_tasks=1, max_tasks=14))
    @settings(max_examples=80, deadline=None)
    def test_tlevel_plus_blevel_bounded_by_cp(self, g):
        tl = t_levels(g)
        bl = b_levels(g)
        cp = critical_path_length(g)
        for t in g.tasks():
            assert tl[t] + bl[t] <= cp + 1e-9
        if g.n_tasks:
            assert max(tl[t] + bl[t] for t in g.tasks()) == pytest.approx(cp)

    @given(g=task_graphs(min_tasks=1, max_tasks=14))
    @settings(max_examples=60, deadline=None)
    def test_comm_free_levels_below_comm_levels(self, g):
        with_comm = b_levels(g, communication=True)
        without = b_levels(g, communication=False)
        for t in g.tasks():
            assert without[t] <= with_comm[t] + 1e-9


class TestSimulatorInvariants:
    @given(
        g=task_graphs(min_tasks=1, max_tasks=12),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_assignment_simulates_validly(self, g, data):
        n_procs = data.draw(st.integers(1, max(1, g.n_tasks)))
        assignment = {
            t: data.draw(st.integers(0, n_procs - 1), label=f"proc[{t}]")
            for t in g.tasks()
        }
        s = simulate_clustering(g, assignment)
        s.validate(g)

    @given(g=task_graphs(min_tasks=1, max_tasks=12))
    @settings(max_examples=40, deadline=None)
    def test_serial_schedule_equals_serial_time(self, g):
        s = serial_schedule(g)
        assert s.makespan == pytest.approx(g.serial_time())
        s.validate(g)

    @given(g=task_graphs(min_tasks=2, max_tasks=12))
    @settings(max_examples=40, deadline=None)
    def test_single_cluster_assignment_beats_nothing(self, g):
        """All-on-one-processor simulation never pays communication."""
        s = simulate_clustering(g, {t: 0 for t in g.tasks()})
        assert s.makespan == pytest.approx(g.serial_time())


class TestDecompositionVsSchedulers:
    @given(g=task_graphs(min_tasks=1, max_tasks=12))
    @settings(max_examples=50, deadline=None)
    def test_root_members_are_all_tasks(self, g):
        tree = decompose(g)
        assert tree.members == frozenset(g.tasks())

    @given(g=task_graphs(min_tasks=2, max_tasks=12))
    @settings(max_examples=50, deadline=None)
    def test_linear_children_of_root_execute_in_order(self, g):
        """For a LINEAR root, every member of child i is an ancestor of
        every member of child i+1 (total order of co-components)."""
        tree = decompose(g)
        if tree.kind is not ClanKind.LINEAR:
            return
        for a, b in zip(tree.children, tree.children[1:]):
            for x in a.members:
                for y in b.members:
                    assert y in g.descendants(x)


class TestGenerationInvariants:
    @given(
        n=st.integers(5, 35),
        anchor=st.integers(2, 4),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_anchor_adjustment_preserves_dagness(self, n, anchor, seed):
        rng = np.random.default_rng(seed)
        g = sp_dag_from_tree(random_parse_tree(n, rng))
        if g.n_edges == 0:
            return
        try:
            adjust_anchor(g, anchor, rng)
        except Exception:
            return  # generation may legitimately fail; resampling is the API
        g.validate()
        assert anchor_out_degree(g) == anchor

    @given(
        target=st.floats(0.01, 10.0),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_weight_assignment_hits_target_exactly(self, target, seed):
        rng = np.random.default_rng(seed)
        g = sp_dag_from_tree(random_parse_tree(20, rng))
        if g.n_edges == 0:
            return
        assign_weights(g, rng, weight_range=(20, 100), target_granularity=target)
        assert granularity(g) == pytest.approx(target, rel=1e-9)


class TestSchedulerOrderings:
    @given(g=weighted_dags_with_edges(min_tasks=3, max_tasks=10))
    @settings(max_examples=30, deadline=None)
    def test_serial_is_never_best_by_more_than_schedulers(self, g):
        """Sanity: the best heuristic is never worse than 3x serial
        (trivially true for CLANS, bounds group behaviour)."""
        best = min(s.schedule(g).makespan for s in paper_schedulers())
        assert best <= g.serial_time() + 1e-9  # CLANS guarantees this

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=30, deadline=None)
    def test_processor_counts_bounded_by_tasks(self, g):
        for sched in paper_schedulers():
            s = sched.schedule(g)
            assert 1 <= s.n_processors <= g.n_tasks
