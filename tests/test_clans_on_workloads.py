"""Clan decomposition pinned against known workload structures.

Each structured workload has a parse tree we can derive by hand; these
tests pin the decomposition's output on them, complementing the random
property tests with exact structural expectations.
"""

from __future__ import annotations

import pytest

from repro import TaskGraph
from repro.clans import ClanKind, decompose, tree_statistics, verify_parse_tree
from repro.generation import workloads as w


class TestChain:
    def test_pure_linear(self):
        g = w.chain(6)
        tree = decompose(g)
        assert tree.kind is ClanKind.LINEAR
        assert len(tree.children) == 6
        assert all(c.is_leaf for c in tree.children)


class TestForkJoin:
    def test_single_stage(self):
        g = w.fork_join(4, stages=1)
        tree = decompose(g)
        # source, independent middle, join => LINEAR root with 3 children
        assert tree.kind is ClanKind.LINEAR
        assert len(tree.children) == 3
        mid = tree.children[1]
        assert mid.kind is ClanKind.INDEPENDENT
        assert len(mid.children) == 4
        assert all(c.is_leaf for c in mid.children)

    def test_multi_stage_alternates(self):
        g = w.fork_join(3, stages=2)
        tree = decompose(g)
        assert tree.kind is ClanKind.LINEAR
        kinds = [c.kind for c in tree.children]
        # src, IND, join, IND, join
        assert kinds.count(ClanKind.INDEPENDENT) == 2
        verify_parse_tree(g, tree)


class TestDisjointUnion:
    def test_independent_root(self):
        g = TaskGraph()
        for i in range(6):
            g.add_task(i, 1)
        g.add_edge(0, 1, 1)
        g.add_edge(2, 3, 1)
        tree = decompose(g)
        assert tree.kind is ClanKind.INDEPENDENT
        sizes = sorted(c.size for c in tree.children)
        assert sizes == [1, 1, 2, 2]


class TestTrees:
    def test_out_tree_recursive_structure(self):
        g = w.out_tree(2, branching=2)
        tree = decompose(g)
        # root task then the two subtrees concurrently
        assert tree.kind is ClanKind.LINEAR
        assert tree.children[0].is_leaf
        rest = tree.children[1]
        assert rest.kind is ClanKind.INDEPENDENT
        assert len(rest.children) == 2
        for sub in rest.children:
            assert sub.kind is ClanKind.LINEAR
            assert sub.size == 3

    def test_in_tree_mirrors(self):
        g = w.in_tree(2, branching=2)
        tree = decompose(g)
        assert tree.kind is ClanKind.LINEAR
        assert tree.children[-1].is_leaf  # the root task executes last


class TestFFT:
    def test_butterfly_is_primitive(self):
        """The 4-point FFT butterfly has crossing dependences that admit no
        linear/independent split above the leaves."""
        g = w.fft_graph(2)
        tree = decompose(g)
        stats = tree_statistics(tree)
        assert stats.n_primitive >= 1
        verify_parse_tree(g, tree)


class TestDivideAndConquer:
    def test_deep_alternation(self):
        g = w.divide_and_conquer(2)
        tree = decompose(g)
        assert tree.kind is ClanKind.LINEAR
        stats = tree_statistics(tree)
        assert stats.n_primitive == 0  # D&C is series-parallel
        assert stats.n_independent >= 2
        assert stats.depth >= 4
        verify_parse_tree(g, tree)


class TestWavefront:
    def test_wavefront_is_primitive_heavy(self):
        g = w.wavefront(3, 3)
        stats = tree_statistics(decompose(g))
        assert stats.n_primitive >= 1

    def test_chain_row_degenerates_to_linear(self):
        g = w.wavefront(1, 5)  # single row: a chain
        tree = decompose(g)
        assert tree.kind is ClanKind.LINEAR
        assert all(c.is_leaf for c in tree.children)


class TestGauss:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_verifies_at_all_sizes(self, n):
        g = w.gaussian_elimination(n)
        verify_parse_tree(g, decompose(g))


class TestCholesky:
    def test_verifies(self):
        g = w.cholesky(4)
        verify_parse_tree(g, decompose(g))
        stats = tree_statistics(decompose(g))
        assert stats.n_leaves == g.n_tasks
