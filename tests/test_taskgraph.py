"""Unit tests for repro.core.taskgraph."""

from __future__ import annotations

import json

import pytest

from repro import CycleError, GraphError, TaskGraph


class TestConstruction:
    def test_empty(self):
        g = TaskGraph()
        assert g.n_tasks == 0
        assert g.n_edges == 0
        assert len(g) == 0
        assert list(g) == []

    def test_add_task(self):
        g = TaskGraph()
        g.add_task("a", 5)
        assert "a" in g
        assert g.weight("a") == 5.0
        assert g.n_tasks == 1

    def test_read_task_weight_updates(self):
        g = TaskGraph()
        g.add_task("a", 5)
        g.add_task("a", 9)
        assert g.weight("a") == 9.0
        assert g.n_tasks == 1

    def test_add_edge(self):
        g = TaskGraph()
        g.add_task("a", 1)
        g.add_task("b", 1)
        g.add_edge("a", "b", 3)
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")
        assert g.edge_weight("a", "b") == 3.0

    def test_edge_to_unknown_task_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1)
        with pytest.raises(GraphError):
            g.add_edge("a", "missing", 1)
        with pytest.raises(GraphError):
            g.add_edge("missing", "a", 1)

    def test_self_loop_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1)
        with pytest.raises(GraphError):
            g.add_edge("a", "a", 1)

    @pytest.mark.parametrize("bad", [-1, float("nan"), float("inf"), "x", None])
    def test_bad_task_weight_rejected(self, bad):
        g = TaskGraph()
        with pytest.raises(GraphError):
            g.add_task("a", bad)

    @pytest.mark.parametrize("bad", [-0.5, float("nan"), float("inf")])
    def test_bad_edge_weight_rejected(self, bad):
        g = TaskGraph()
        g.add_task("a", 1)
        g.add_task("b", 1)
        with pytest.raises(GraphError):
            g.add_edge("a", "b", bad)

    def test_zero_weights_allowed(self):
        g = TaskGraph()
        g.add_task("a", 0)
        g.add_task("b", 1)
        g.add_edge("a", "b", 0)
        assert g.weight("a") == 0.0
        assert g.edge_weight("a", "b") == 0.0

    def test_from_weights(self):
        g = TaskGraph.from_weights({"a": 1, "b": 2}, {("a", "b"): 3})
        assert g.n_tasks == 2
        assert g.edge_weight("a", "b") == 3.0


class TestMutation:
    def test_remove_edge(self, diamond):
        diamond.remove_edge("a", "b")
        assert not diamond.has_edge("a", "b")
        assert "b" in diamond.sources()

    def test_remove_missing_edge(self, diamond):
        with pytest.raises(GraphError):
            diamond.remove_edge("b", "c")

    def test_remove_task(self, diamond):
        diamond.remove_task("b")
        assert "b" not in diamond
        assert diamond.n_edges == 2  # a->c, c->d survive
        diamond.validate()

    def test_remove_missing_task(self):
        with pytest.raises(GraphError):
            TaskGraph().remove_task("nope")

    def test_updating_edge_weight(self, diamond):
        diamond.add_edge("a", "b", 99)
        assert diamond.edge_weight("a", "b") == 99.0
        assert diamond.n_edges == 4


class TestQueries:
    def test_degrees(self, diamond):
        assert diamond.out_degree("a") == 2
        assert diamond.in_degree("d") == 2
        assert diamond.in_degree("a") == 0

    def test_neighbors(self, diamond):
        assert sorted(diamond.successors("a")) == ["b", "c"]
        assert sorted(diamond.predecessors("d")) == ["b", "c"]

    def test_unknown_task_queries(self, diamond):
        for fn in (
            diamond.weight,
            diamond.successors,
            diamond.predecessors,
        ):
            with pytest.raises(GraphError):
                fn("missing")

    def test_out_edges_is_read_only_view(self, diamond):
        edges = diamond.out_edges("a")
        with pytest.raises(TypeError):
            edges["b"] = 999
        assert diamond.edge_weight("a", "b") == 4.0
        assert dict(diamond.in_edges("b")) == {"a": 4.0}
        # the view is live: it reflects later mutations of the graph
        diamond.add_task("z")
        diamond.add_edge("a", "z", 1.0)
        assert edges["z"] == 1.0

    def test_sources_sinks(self, diamond, chain5):
        assert diamond.sources() == ["a"]
        assert diamond.sinks() == ["d"]
        assert chain5.sources() == [0]
        assert chain5.sinks() == [4]

    def test_serial_time(self, paper_example):
        assert paper_example.serial_time() == 150.0

    def test_repr(self, diamond):
        assert "n_tasks=4" in repr(diamond)

    def test_eq(self, diamond):
        other = diamond.copy()
        assert diamond == other
        other.add_task("e", 1)
        assert diamond != other
        assert diamond != "not a graph"

    def test_unhashable(self, diamond):
        with pytest.raises(TypeError):
            hash(diamond)


class TestStructure:
    def test_topological_order(self, paper_example):
        order = paper_example.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        for u, v in paper_example.edges():
            assert pos[u] < pos[v]

    def test_cycle_detection(self):
        g = TaskGraph()
        for t in "abc":
            g.add_task(t, 1)
        g.add_edge("a", "b", 0)
        g.add_edge("b", "c", 0)
        g.add_edge("c", "a", 0)
        assert not g.is_dag()
        with pytest.raises(CycleError):
            g.topological_order()
        with pytest.raises(GraphError):
            g.validate()

    def test_validate_clean(self, paper_example):
        paper_example.validate()  # must not raise

    def test_ancestors_descendants(self, paper_example):
        assert paper_example.ancestors(5) == {1, 2, 3, 4}
        assert paper_example.descendants(1) == {2, 3, 4, 5}
        assert paper_example.ancestors(1) == set()
        assert paper_example.descendants(5) == set()
        assert paper_example.ancestors(4) == {1, 3}

    def test_transitive_reduction(self):
        g = TaskGraph()
        for t in "abc":
            g.add_task(t, 1)
        g.add_edge("a", "b", 1)
        g.add_edge("b", "c", 1)
        g.add_edge("a", "c", 9)  # redundant
        r = g.transitive_reduction()
        assert not r.has_edge("a", "c")
        assert r.has_edge("a", "b") and r.has_edge("b", "c")
        assert g.has_edge("a", "c")  # original untouched

    def test_transitive_reduction_preserves_weights(self, diamond):
        r = diamond.transitive_reduction()
        assert r == diamond  # nothing redundant in a diamond


class TestDerivedGraphs:
    def test_copy_independent(self, diamond):
        c = diamond.copy()
        c.add_task("z", 1)
        c.remove_edge("a", "b")
        assert "z" not in diamond
        assert diamond.has_edge("a", "b")

    def test_subgraph(self, paper_example):
        sub = paper_example.subgraph({3, 4, 5})
        assert sub.n_tasks == 3
        assert sub.has_edge(3, 4) and sub.has_edge(4, 5)
        assert sub.n_edges == 2

    def test_subgraph_unknown(self, paper_example):
        with pytest.raises(GraphError):
            paper_example.subgraph({1, 99})

    def test_relabeled(self, diamond):
        r = diamond.relabeled({"a": "start", "d": "end"})
        assert "start" in r and "end" in r and "b" in r
        assert r.has_edge("start", "b")
        assert r.edge_weight("b", "end") == 4.0

    def test_relabel_not_injective(self, diamond):
        with pytest.raises(GraphError):
            diamond.relabeled({"a": "x", "b": "x"})


class TestInterop:
    def test_networkx_roundtrip(self, paper_example):
        nxg = paper_example.to_networkx()
        back = TaskGraph.from_networkx(nxg)
        assert back == paper_example

    def test_networkx_attrs(self, diamond):
        nxg = diamond.to_networkx()
        assert nxg.nodes["a"]["weight"] == 10.0
        assert nxg.edges["a", "b"]["weight"] == 4.0

    def test_dict_roundtrip(self, paper_example):
        data = json.loads(json.dumps(paper_example.to_dict()))
        assert TaskGraph.from_dict(data) == paper_example

    def test_dict_roundtrip_tuple_ids(self):
        g = TaskGraph()
        g.add_task((0, 1), 2)
        g.add_task((0, 2), 3)
        g.add_edge((0, 1), (0, 2), 1)
        data = json.loads(json.dumps(g.to_dict()))
        back = TaskGraph.from_dict(data)
        assert back == g

    def test_to_dot(self, diamond):
        dot = diamond.to_dot()
        assert dot.startswith("digraph")
        assert '"a" -> "b"' in dot


class TestDerivedValueCache:
    """The versioned memo table behind topological_order/validate/levels."""

    def test_version_bumps_on_every_mutation(self):
        g = TaskGraph()
        v0 = g.version
        g.add_task("a")
        g.add_task("b")
        assert g.version > v0
        v1 = g.version
        g.add_edge("a", "b", 2.0)
        assert g.version > v1
        v2 = g.version
        g.remove_edge("a", "b")
        assert g.version > v2
        v3 = g.version
        g.remove_task("b")
        assert g.version > v3

    def test_weight_update_bumps_version(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        v = g.version
        g.add_task("a", 5.0)  # re-add updates the weight in place
        assert g.version > v

    def test_topological_order_is_memoized(self, diamond):
        first = diamond.topological_order()
        assert diamond._scratch["topological_order"] is not first  # copies out
        assert diamond.topological_order() == first

    def test_cached_returns_shared_value_until_mutation(self, diamond):
        calls = []
        value1 = diamond.cached("probe", lambda: calls.append(1) or [1, 2])
        value2 = diamond.cached("probe", lambda: calls.append(2) or [3, 4])
        assert value1 is value2 and calls == [1]
        diamond.add_task("zz")
        value3 = diamond.cached("probe", lambda: calls.append(3) or [5, 6])
        assert value3 == [5, 6] and calls == [1, 3]

    def test_add_edge_invalidates_topological_order(self):
        g = TaskGraph()
        for t in ("a", "b", "c"):
            g.add_task(t)
        g.add_edge("a", "b")
        order = g.topological_order()
        assert order.index("a") < order.index("b")
        # "c" currently unconstrained; force it before "a" and re-ask
        g.add_edge("c", "a")
        order = g.topological_order()
        assert order.index("c") < order.index("a") < order.index("b")

    def test_remove_edge_invalidates_cycle_verdict(self):
        g = TaskGraph()
        g.add_task("a")
        g.add_task("b")
        g.add_edge("a", "b")
        g.add_edge("b", "a")  # cycle (the class defers acyclicity checks)
        assert not g.is_dag()
        g.remove_edge("b", "a")
        assert g.is_dag()

    def test_validate_memoized_but_invalidated(self, diamond):
        diamond.validate()
        assert diamond._scratch.get("validated") is True
        diamond.add_task("z")
        assert "validated" not in diamond._scratch
        diamond.validate()

    def test_returned_order_is_caller_owned(self, diamond):
        order = diamond.topological_order()
        order.clear()  # must not corrupt the memoized copy
        assert diamond.topological_order() == diamond._topological_order()
