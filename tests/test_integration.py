"""End-to-end integration: suite -> schedules -> tables/figures.

Runs a reduced version of the paper's experiment and asserts the headline
*qualitative* findings (section 5.1) hold:

* CLANS never produces speedup < 1; the others retard most low-granularity
  graphs and almost none above G = 0.8;
* HU is the worst heuristic in every band (largest NRPT);
* average speedup increases with granularity for every heuristic;
* CLANS is dramatically more efficient at low granularity.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.runner import PAPER_HEURISTIC_ORDER, run_suite
from repro.experiments.tables import ALL_TABLES, table2, table3, table4, table5
from repro.generation.suites import SuiteCell, generate_suite

BANDS = range(5)


@pytest.fixture(scope="module")
def results():
    # anchor 2/3, one weight range, all bands: enough signal, fast enough
    cells = [
        SuiteCell(band, anchor, (20, 200))
        for band in BANDS
        for anchor in (2, 3)
    ]
    suite = generate_suite(graphs_per_cell=4, cells=cells, n_tasks_range=(25, 55))
    return run_suite(list(suite), validate=True)


class TestQualitativeFindings:
    def test_clans_never_retards(self, results):
        t = table2(results)
        assert all(v == 0 for v in t.column("CLANS"))

    def test_others_retard_heavily_at_low_g(self, results):
        t = table2(results)
        n_low = sum(1 for gr in results if gr.band == 0)
        for name in ("DSC", "MCP", "MH", "HU"):
            assert t.value("G < 0.08", name) >= 0.5 * n_low, name

    def test_no_retardation_at_high_g(self, results):
        t = table2(results)
        for name in PAPER_HEURISTIC_ORDER:
            assert t.value("2 < G", name) == 0, name

    def test_hu_worst_nrpt_everywhere(self, results):
        t = table3(results)
        for label, values in t.rows:
            hu = t.value(label, "HU")
            for name in ("CLANS", "DSC", "MCP", "MH"):
                assert hu >= t.value(label, name), (label, name)

    def test_clans_consistent_nrpt(self, results):
        """Figure 1's claim: CLANS stays within ~6.5% of the best."""
        t = table3(results)
        assert max(t.column("CLANS")) <= 0.15

    def test_speedup_increases_with_granularity(self, results):
        t = table4(results)
        for name in PAPER_HEURISTIC_ORDER:
            col = t.column(name)
            # allow small non-monotonic wobble between adjacent bands
            assert col[-1] > col[0], name
            assert col[2] > col[0], name

    def test_clans_doubles_speedup_at_low_g(self, results):
        t = table4(results)
        clans = t.value("G < 0.08", "CLANS")
        for name in ("DSC", "MCP", "MH"):
            assert clans >= 1.3 * t.value("G < 0.08", name), name

    def test_clans_most_efficient_at_low_g(self, results):
        t = table5(results)
        clans = t.value("G < 0.08", "CLANS")
        for name in ("DSC", "MCP", "MH", "HU"):
            assert clans > 2 * t.value("G < 0.08", name), name

    def test_hu_efficiency_near_zero(self, results):
        t = table5(results)
        assert max(t.column("HU")) < 0.12


class TestArtifactsRender:
    def test_all_tables(self, results):
        for tid, fn in ALL_TABLES.items():
            txt = fn(results).to_text()
            assert f"Table {tid}" in txt

    def test_all_figures(self, results):
        for fid, fn in ALL_FIGURES.items():
            fig = fn(results)
            assert fig.series
            assert f"Figure {fid}" in fig.to_text()

    def test_results_cover_expected_classes(self, results):
        assert {gr.band for gr in results} == set(BANDS)
        assert {gr.anchor for gr in results} == {2, 3}
