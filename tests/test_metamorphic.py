"""Metamorphic properties: relations between schedules of transformed graphs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import TaskGraph, get_scheduler, paper_schedulers
from repro.core.analysis import critical_path_length

from conftest import task_graphs

ALL = ["CLANS", "DSC", "MCP", "MH", "HU", "ETF", "DLS", "HLFET", "LC", "EZ"]


def scaled(graph: TaskGraph, factor: float) -> TaskGraph:
    g = TaskGraph()
    for t in graph.tasks():
        g.add_task(t, graph.weight(t) * factor)
    for u, v in graph.edges():
        g.add_edge(u, v, graph.edge_weight(u, v) * factor)
    return g


class TestScaleInvariance:
    """Scaling every weight by c scales every deterministic heuristic's
    makespan by exactly c (priorities and comparisons are scale-invariant;
    c = 2 keeps float arithmetic exact)."""

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=25, deadline=None)
    @pytest.mark.parametrize("name", ALL)
    def test_makespan_scales(self, name, g):
        sched = get_scheduler(name)
        base = sched.schedule(g).makespan
        doubled = sched.schedule(scaled(g, 2.0)).makespan
        assert doubled == pytest.approx(2.0 * base)

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=20, deadline=None)
    def test_speedup_is_scale_free(self, g):
        sched = get_scheduler("CLANS")
        s1 = sched.schedule(g)
        s2 = sched.schedule(scaled(g, 2.0))
        assert s1.speedup(g) == pytest.approx(
            s2.speedup(scaled(g, 2.0))
        )


class TestZeroCommunication:
    """With every message free, unbounded EST-based list scheduling starts
    each task at its ASAP time, so the makespan equals the critical path."""

    def zero_comm(self, g: TaskGraph) -> TaskGraph:
        out = TaskGraph()
        for t in g.tasks():
            out.add_task(t, g.weight(t))
        for u, v in g.edges():
            out.add_edge(u, v, 0.0)
        return out

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=30, deadline=None)
    @pytest.mark.parametrize("name", ["MH", "MCP", "ETF", "DLS", "HLFET", "DSC"])
    def test_est_schedulers_reach_cp(self, name, g):
        zg = self.zero_comm(g)
        s = get_scheduler(name).schedule(zg)
        assert s.makespan == pytest.approx(
            critical_path_length(zg, communication=False)
        )

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=20, deadline=None)
    def test_everyone_at_least_cp(self, g):
        zg = self.zero_comm(g)
        cp = critical_path_length(zg, communication=False)
        for sched in paper_schedulers():
            assert sched.schedule(zg).makespan >= cp - 1e-9


class TestIsolatedTaskAddition:
    """Adding a disconnected task of weight w can raise the makespan to at
    most max(old, w) for any unbounded heuristic that may place it alone —
    and never *reduces* the makespan below the lower bound structure."""

    @given(g=task_graphs(min_tasks=1, max_tasks=9))
    @settings(max_examples=20, deadline=None)
    @pytest.mark.parametrize("name", ["MH", "MCP", "ETF", "CLANS"])
    def test_isolated_task_bound(self, name, g):
        before = get_scheduler(name).schedule(g).makespan
        g2 = g.copy()
        g2.add_task("__isolated__", 1.0)
        after = get_scheduler(name).schedule(g2).makespan
        # the new task is independent: it can't force more than its own
        # weight beyond the previous makespan
        assert after <= before + 1.0 + 1e-9


class TestRelabelInvariance:
    """Renaming tasks must not change any measured quantity that is
    independent of names (CLANS parses structure, not labels)."""

    @given(g=task_graphs(min_tasks=2, max_tasks=10))
    @settings(max_examples=20, deadline=None)
    def test_clans_makespan_stable_under_shift(self, g):
        mapping = {t: ("shifted", t) for t in g.tasks()}
        relabeled = g.relabeled(mapping)
        a = get_scheduler("CLANS").schedule(g).makespan
        b = get_scheduler("CLANS").schedule(relabeled).makespan
        assert a == pytest.approx(b)
