"""The scheduling service: transport-transparency, back-pressure, drain.

The central contract is byte-identity: a schedule obtained through the
daemon is the same bytes as one computed by a direct library call, for
every registered heuristic.  Everything else — shedding, deadlines,
batching, the index cache, graceful drain — must degrade *visibly*
(typed error responses) rather than corrupt or silently drop work.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading

import pytest

from repro.core import wire
from repro.generation.workloads import fork_join, gaussian_elimination
from repro.schedulers.base import SCHEDULER_REGISTRY, get_scheduler
from repro.service import ServerThread, ServiceClient, ServiceError
from repro.service.protocol import schedule_result


@pytest.fixture(scope="module")
def server():
    """One shared daemon for the read-only tests (port 0 = ephemeral)."""
    with ServerThread(port=0, threads=2) as st:
        yield st


@pytest.fixture
def client(server):
    with ServiceClient(server.address) as c:
        yield c


class TestByteIdentity:
    @pytest.mark.parametrize("name", sorted(SCHEDULER_REGISTRY))
    def test_every_heuristic_matches_library(self, client, name):
        graph = fork_join(4)  # 6 tasks: small enough for OPT's exact search
        via_service = client.schedule(graph, name)
        direct = get_scheduler(name).schedule(graph)
        expected = schedule_result(name, graph, direct)
        assert wire.dumps(via_service) == wire.dumps(expected)

    def test_improve_matches_library(self, client):
        from repro.schedulers.improve import LocalSearchImprover

        graph = fork_join(4)
        via_service = client.schedule(graph, "HLFET", improve=True)
        sched = LocalSearchImprover(get_scheduler("HLFET"))
        expected = schedule_result(sched.name, graph, sched.schedule(graph))
        assert wire.dumps(via_service) == wire.dumps(expected)


class TestOps:
    def test_health(self, client):
        h = client.health()
        assert h["status"] == "ok"
        assert h["uptime_s"] >= 0

    def test_classify(self, client, paper_example):
        res = client.classify(paper_example)
        assert res["n_tasks"] == 5
        assert res["n_edges"] == 5
        assert res["serial_time"] == 150.0

    def test_simulate(self, client, paper_example):
        direct = get_scheduler("LC").schedule(paper_example)
        res = client.simulate(paper_example, direct.clusters())
        assert res["makespan"] == direct.makespan

    def test_batch_mixed_results(self, client, paper_example):
        responses = client.batch(
            [
                {"op": "classify", "params": {"graph": paper_example}},
                {"op": "schedule", "params": {"graph": paper_example, "heuristic": "NOPE"}},
                {"op": "schedule", "params": {"graph": paper_example, "heuristic": "HU"}},
            ]
        )
        assert [r["ok"] for r in responses] == [True, False, True]
        assert responses[1]["error"]["code"] == 400
        assert responses[2]["result"]["heuristic"] == "HU"

    def test_batch_rejects_nesting(self, client, paper_example):
        (resp,) = client.batch([{"op": "batch", "params": {"requests": []}}])
        assert not resp["ok"]
        assert resp["error"]["code"] == 400

    def test_stats_counts_requests(self, client, paper_example):
        client.classify(paper_example)
        stats = client.stats()
        assert stats["counters"].get("service.requests", 0) >= 1
        assert stats["queue_capacity"] == 128

    def test_index_cache_hit_on_repeat(self, server, paper_example):
        with ServiceClient(server.address) as c:
            c.schedule(paper_example, "HLFET")
            before = c.stats()["counters"].get("service.index_cache.hits", 0)
            c.schedule(paper_example, "DSC")
            after = c.stats()["counters"].get("service.index_cache.hits", 0)
        assert after > before


class TestErrors:
    def test_unknown_op_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.call("frobnicate", {})
        assert exc.value.code == 400

    def test_missing_graph_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.call("schedule", {"heuristic": "HU"})
        assert exc.value.code == 400

    def test_malformed_graph_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.call("schedule", {"graph": {"tasks": "nonsense"}})
        assert exc.value.code == 400

    def test_bad_json_line_is_400_and_connection_survives(self, server):
        with socket.create_connection(server.address) as sock:
            fh = sock.makefile("rwb")
            fh.write(b"this is not json\n")
            fh.flush()
            resp = json.loads(fh.readline())
            assert resp["ok"] is False
            assert resp["error"]["code"] == 400
            # same connection still serves well-formed frames
            fh.write(b'{"id": 1, "op": "health", "params": {}}\n')
            fh.flush()
            resp = json.loads(fh.readline())
            assert resp["ok"] is True

    def test_unreachable_daemon_is_unavailable(self):
        client = ServiceClient(("127.0.0.1", 1), retries=1, backoff=0.01)
        with pytest.raises(ServiceError) as exc:
            client.health()
        assert exc.value.status == "unavailable"

    def test_client_rejects_oversized_frame_locally(self, server):
        client = ServiceClient(server.address, max_frame_bytes=256)
        with pytest.raises(ServiceError) as exc:
            client.schedule(gaussian_elimination(8))
        assert exc.value.code == 413


class TestBackoffJitter:
    def test_jittered_delay_within_envelope(self):
        import random

        from repro.service.client import backoff_delay

        rng = random.Random(42)
        for attempt in range(1, 8):
            envelope = min(2.0, 0.05 * (2 ** (attempt - 1)))
            for _ in range(50):
                d = backoff_delay(0.05, attempt, rng=rng)
                assert 0.0 <= d <= envelope

    def test_jitter_decorrelates_clients(self):
        import random

        from repro.service.client import backoff_delay

        rng = random.Random(7)
        delays = {backoff_delay(0.05, 3, rng=rng) for _ in range(20)}
        assert len(delays) > 1  # deterministic schedule would collapse to one

    def test_no_jitter_restores_deterministic_schedule(self):
        from repro.service.client import backoff_delay

        assert [backoff_delay(0.05, k, jitter=False) for k in (1, 2, 3)] == [
            0.05,
            0.1,
            0.2,
        ]

    def test_cap_bounds_growth(self):
        from repro.service.client import backoff_delay

        assert backoff_delay(0.05, 30, jitter=False, cap=0.5) == 0.5
        assert backoff_delay(0.05, 30, cap=0.5) <= 0.5

    def test_zero_base_never_sleeps(self):
        from repro.service.client import backoff_delay

        assert backoff_delay(0.0, 5) == 0.0

    def test_backoff_ms_counter_reflects_actual_sleep(self):
        from repro.obs.metrics import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry()) as reg:
            client = ServiceClient(
                ("127.0.0.1", 1), retries=2, backoff=0.01, jitter=True
            )
            with pytest.raises(ServiceError):
                client.health()
            slept_ms = reg.counter("client.backoff_ms")
            # jittered: bounded by the sum of the two envelopes, not equal
            assert 0.0 <= slept_ms <= (0.01 + 0.02) * 1e3
            assert reg.counter("client.retries") == 2


class TestOversizedFrames:
    def test_server_responds_413_then_closes(self):
        with ServerThread(port=0, max_frame_bytes=4096) as st:
            with socket.create_connection(st.address) as sock:
                fh = sock.makefile("rwb")
                fh.write(b'{"op": "health", "padding": "' + b"x" * 8192 + b'"}\n')
                fh.flush()
                resp = json.loads(fh.readline())
                assert resp["ok"] is False
                assert resp["error"]["code"] == 413
                # frame sync is lost after an overrun, so the server closes
                assert fh.readline() == b""


class TestDeadlines:
    def test_queued_past_deadline_is_504(self):
        # one worker: a heavy request (GA, ~200ms) occupies it while a
        # 1 ms-deadline request waits in the queue, guaranteeing the miss
        with ServerThread(port=0, threads=1) as st:
            heavy = gaussian_elimination(12)
            light = fork_join(3)

            async def run():
                from repro.service.client import AsyncServiceClient

                async with AsyncServiceClient(st.address) as ac:
                    slow = asyncio.ensure_future(ac.schedule(heavy, "GA"))
                    await asyncio.sleep(0.05)  # let the heavy one start
                    with pytest.raises(ServiceError) as exc:
                        await ac.schedule(light, deadline_ms=1)
                    assert exc.value.code == 504
                    await slow  # the heavy request itself still completes

            asyncio.run(run())


class TestShedding:
    def test_queue_overflow_sheds_503(self):
        with ServerThread(port=0, threads=1, queue_size=2) as st:
            heavy = gaussian_elimination(12)

            async def run():
                from repro.service.client import AsyncServiceClient

                async with AsyncServiceClient(st.address) as ac:
                    futs = [
                        asyncio.ensure_future(ac.schedule(heavy, "GA"))
                        for _ in range(12)
                    ]
                    done = await asyncio.gather(*futs, return_exceptions=True)
                    statuses = [
                        e.status if isinstance(e, ServiceError) else "ok"
                        for e in done
                    ]
                    assert "shed" in statuses  # queue bound enforced
                    assert "ok" in statuses  # admitted work still completes
                    assert all(s in ("ok", "shed") for s in statuses)

            asyncio.run(run())


class TestBatchingByDigest:
    def test_same_graph_requests_share_one_compile(self):
        # pipeline many same-graph requests; the dispatcher groups them by
        # digest, so the index compiles once for the whole burst
        with ServerThread(port=0, threads=1, batch_max=32) as st:
            graph = fork_join(6, stages=2)

            async def run():
                from repro.service.client import AsyncServiceClient

                async with AsyncServiceClient(st.address) as ac:
                    before = await ac.stats()
                    futs = [
                        asyncio.ensure_future(ac.schedule(graph, "HLFET"))
                        for _ in range(10)
                    ]
                    results = await asyncio.gather(*futs)
                    after = await ac.stats()
                    return results, before, after

            results, before, after = asyncio.run(run())
            assert len({wire.dumps(r) for r in results}) == 1

            def delta(key):
                # the metrics registry is process-global, so compare deltas
                return after["counters"].get(key, 0) - before["counters"].get(key, 0)

            assert delta("service.index_cache.misses") == 1  # one decode+compile
            assert delta("service.index_cache.misses") + delta(
                "service.index_cache.hits"
            ) <= 10

    def test_distinct_graphs_prebatched_in_one_pass(self):
        # pipeline distinct graphs; the dispatcher's prebatch pass must
        # vectorize their analysis (counter fires) and every response must
        # still be byte-identical to a direct library call
        from repro.core.batch import use_batch
        from repro.core.kernels import use_kernels

        with ServerThread(port=0, threads=1, batch_max=32) as st:
            graphs = [fork_join(k, stages=2) for k in range(3, 9)]

            async def run():
                from repro.service.client import AsyncServiceClient

                async with AsyncServiceClient(st.address) as ac:
                    before = await ac.stats()
                    futs = [
                        asyncio.ensure_future(ac.schedule(g, "HLFET"))
                        for g in graphs
                    ]
                    results = await asyncio.gather(*futs)
                    after = await ac.stats()
                    return results, before, after

            with use_kernels(True), use_batch(True):
                results, before, after = asyncio.run(run())

            def delta(key):
                return after["counters"].get(key, 0) - before["counters"].get(key, 0)

            # the first request may dispatch alone, but the rest of the
            # burst queues behind the busy single-thread executor and is
            # prebatched together on the next dispatch round
            assert delta("service.batch.prebatched") >= 2
            for g, got in zip(graphs, results):
                expect = schedule_result(
                    "HLFET", g, get_scheduler("HLFET").schedule(g)
                )
                assert wire.dumps(got) == wire.dumps(expect)


class TestDrain:
    def test_zero_dropped_in_flight(self):
        # fire a burst, then drain mid-flight: every request must get a
        # response — completed work or an explicit 503 "draining", never
        # a silently dropped frame
        st = ServerThread(port=0, threads=1).start()
        graph = gaussian_elimination(12)

        async def run():
            from repro.service.client import AsyncServiceClient

            async with AsyncServiceClient(st.address) as ac:
                futs = [
                    asyncio.ensure_future(ac.schedule(graph, "GA"))
                    for _ in range(8)
                ]
                await asyncio.sleep(0.05)
                threading.Thread(target=st.stop, daemon=True).start()
                done = await asyncio.gather(*futs, return_exceptions=True)
                return done

        done = asyncio.run(run())
        st.stop()
        assert len(done) == 8
        for outcome in done:
            if isinstance(outcome, ServiceError):
                assert outcome.status in ("shed", "draining")
            else:
                assert isinstance(outcome, Exception) is False
                assert outcome["heuristic"] == "GA"

    def test_new_connections_refused_after_drain(self):
        with ServerThread(port=0) as st:
            addr = st.address
            with ServiceClient(addr) as c:
                assert c.health()["status"] == "ok"
            st.stop()
            late = ServiceClient(addr, retries=0, backoff=0.01)
            with pytest.raises(ServiceError):
                late.health()

    def test_manifest_written_on_drain(self, tmp_path):
        manifest_path = tmp_path / "serve_manifest.json"
        with ServerThread(port=0, manifest_path=str(manifest_path)) as st:
            with ServiceClient(st.address) as c:
                c.classify(fork_join(3))
        payload = json.loads(manifest_path.read_text())
        assert payload["config"]["command"] == "serve"
        counters = payload["metrics"]["counters"]
        assert counters.get("service.requests", 0) >= 1


class TestUnixSocket:
    def test_round_trip_over_unix_socket(self, tmp_path, paper_example):
        sock_path = str(tmp_path / "repro.sock")
        with ServerThread(socket_path=sock_path) as st:
            assert st.server.endpoint == f"unix:{sock_path}"
            with ServiceClient(sock_path) as c:
                direct = get_scheduler("DSC").schedule(paper_example)
                res = c.schedule(paper_example, "DSC")
                expected = schedule_result("DSC", paper_example, direct)
                assert wire.dumps(res) == wire.dumps(expected)


# ----------------------------------------------------------------------
# the sharded tier (router + worker processes, consistent hashing)
# ----------------------------------------------------------------------


class TestHashRing:
    """The routing ring's contracts: determinism, balance, and — the reason
    consistent hashing exists — minimal key movement under resize."""

    KEYS = [f"digest-{i:05d}" for i in range(2000)]

    def test_deterministic_across_instances(self):
        from repro.service.ring import HashRing

        a = HashRing(range(4))
        b = HashRing(range(4))
        assert [a.shard_for(k) for k in self.KEYS] == [
            b.shard_for(k) for k in self.KEYS
        ]

    def test_every_shard_owns_keys(self):
        from repro.service.ring import HashRing

        ring = HashRing(range(4))
        owners = {ring.shard_for(k) for k in self.KEYS}
        assert owners == {0, 1, 2, 3}

    def test_roughly_balanced(self):
        from repro.service.ring import HashRing

        ring = HashRing(range(4))
        counts = {s: 0 for s in range(4)}
        for k in self.KEYS:
            counts[ring.shard_for(k)] += 1
        # vnodes keep the split even-ish; cache affinity needs stability,
        # not perfection — but no shard may be starved or hogging.
        assert min(counts.values()) > len(self.KEYS) * 0.10
        assert max(counts.values()) < len(self.KEYS) * 0.45

    def test_adding_a_shard_only_moves_keys_to_it(self):
        from repro.service.ring import HashRing

        small = HashRing(range(4))
        grown = HashRing(range(5))
        moved = 0
        for k in self.KEYS:
            before, after = small.shard_for(k), grown.shard_for(k)
            if before != after:
                moved += 1
                # the defining property: a new shard only *takes* keys —
                # keys never shuffle between the surviving shards
                assert after == 4
        # ~1/5 of the keyspace should move, and certainly not most of it
        assert 0 < moved < len(self.KEYS) * 0.40

    def test_removing_a_shard_only_moves_its_keys(self):
        from repro.service.ring import HashRing

        full = HashRing(range(5))
        shrunk = HashRing([0, 1, 2, 3])  # shard 4 removed
        for k in self.KEYS:
            before, after = full.shard_for(k), shrunk.shard_for(k)
            if before != 4:
                assert after == before  # survivors keep their keys

    def test_fallback_is_a_different_shard(self):
        from repro.service.ring import HashRing

        ring = HashRing(range(4))
        for k in self.KEYS[:200]:
            owner = ring.shard_for(k)
            assert ring.fallback_for(k, owner) != owner
        single = HashRing([0])
        assert single.fallback_for("anything", 0) == 0


@pytest.fixture(scope="module")
def tier():
    """One shared router + 2 worker processes (spawning workers is the
    expensive part, so the read-only sharded tests share a tier)."""
    from repro.service.shard import ShardedTier

    with ShardedTier(workers=2, worker_config={"threads": 1}) as t:
        yield t


class TestShardedTier:
    @pytest.mark.parametrize("name", sorted(SCHEDULER_REGISTRY))
    def test_every_heuristic_byte_identical_through_router(self, tier, name):
        graph = fork_join(4)
        with ServiceClient(tier.address) as c:
            via_tier = c.schedule(graph, name)
        direct = get_scheduler(name).schedule(graph)
        expected = schedule_result(name, graph, direct)
        assert wire.dumps(via_tier) == wire.dumps(expected)

    def test_merged_health_lists_every_shard(self, tier):
        with ServiceClient(tier.address) as c:
            h = c.health()
        assert h["status"] == "ok"
        assert h["workers"] == 2
        assert [s["shard"] for s in h["shards"]] == [0, 1]
        assert all(s["status"] == "ok" for s in h["shards"])
        # workers are real separate processes, not threads
        pids = {s["pid"] for s in h["shards"]}
        assert len(pids) == 2 and h["pid"] not in pids

    def test_digest_affinity_pins_a_graph_to_one_shard(self, tier):
        graph = gaussian_elimination(7)
        with ServiceClient(tier.address) as c:
            before = [
                s.get("counters", {}).get("service.requests", 0.0)
                for s in c.stats()["shards"]
            ]
            for _ in range(6):
                c.schedule(graph, "HLFET")
            after = [
                s.get("counters", {}).get("service.requests", 0.0)
                for s in c.stats()["shards"]
            ]
        deltas = [a - b for a, b in zip(after, before)]
        # all six same-digest requests landed on exactly one shard
        assert sorted(deltas) == [0.0, 6.0]

    def test_merged_stats_sum_per_shard_counters(self, tier):
        with ServiceClient(tier.address) as c:
            c.classify(fork_join(3))
            stats = c.stats()
        per_shard = sum(
            s.get("counters", {}).get("service.requests", 0.0)
            for s in stats["shards"]
        )
        assert stats["counters"]["service.requests"] == per_shard > 0
        assert stats["queue_capacity"] == 2 * 128  # summed across shards
        lat = stats["latency_ms"]
        assert lat is not None and lat["count"] >= per_shard - 1
        assert stats["router"]["workers"] == 2
        assert stats["router"]["counters"].get("router.requests", 0) > 0

    def test_merged_metrics_exposition(self, tier):
        with ServiceClient(tier.address) as c:
            c.classify(fork_join(3))
            m = c.metrics()
        assert "0.0.4" in m["content_type"]
        assert "repro_service_requests_total" in m["text"]
        assert "repro_router_requests_total" in m["text"]
        assert "repro_service_latency_ms_bucket" in m["text"]

    def test_top_renders_per_shard_rows(self, tier):
        from repro.service.top import render

        with ServiceClient(tier.address) as c:
            stats = c.stats()
        frame = render(stats)
        lines = frame.splitlines()
        assert any(line.startswith("rate") for line in lines)  # aggregate block
        shard_header = [line for line in lines if "shard" in line and "p99ms" in line]
        assert len(shard_header) == 1
        # one row per shard, each starting with its id and a state column
        rows = lines[lines.index(shard_header[0]) + 1 :]
        assert len(rows) == 2
        assert rows[0].split()[:2] == ["0", "ok"]
        assert rows[1].split()[:2] == ["1", "ok"]

    def test_batch_via_router(self, tier, paper_example):
        with ServiceClient(tier.address) as c:
            responses = c.batch(
                [
                    {"op": "classify", "params": {"graph": paper_example}},
                    {
                        "op": "schedule",
                        "params": {"graph": paper_example, "heuristic": "HU"},
                    },
                ]
            )
        assert [r["ok"] for r in responses] == [True, True]
        assert responses[1]["result"]["heuristic"] == "HU"

    def test_router_validation_errors_match_daemon(self, tier, server):
        """Error payloads must be identical through either front door (the
        worker, not the router, owns validation)."""
        for params in ({"heuristic": "HU"}, {"graph": "not-a-graph"}):
            with ServiceClient(tier.address) as c:
                with pytest.raises(ServiceError) as via_tier:
                    c.call("schedule", params)
            with ServiceClient(server.address) as c:
                with pytest.raises(ServiceError) as via_daemon:
                    c.call("schedule", params)
            assert str(via_tier.value) == str(via_daemon.value)

    def test_control_requires_router(self, client):
        # `client` talks to the single-process daemon fixture
        with pytest.raises(ServiceError) as exc:
            client.call("control", {"action": "restart"})
        assert exc.value.code == 400
        assert "router" in exc.value.message

    def test_control_rejects_bad_shard(self, tier):
        with ServiceClient(tier.address) as c:
            with pytest.raises(ServiceError) as exc:
                c.call("control", {"action": "restart", "shard": 99})
            assert exc.value.code == 400
            with pytest.raises(ServiceError) as exc:
                c.call("control", {"action": "frobnicate"})
            assert exc.value.code == 400


class TestShardRestart:
    def test_rolling_restart_under_traffic(self):
        """A rolling restart of every shard while requests keep flowing:
        nothing fails — the router retries/reroutes around the drain
        windows and the SDK surfaces that pressure as client counters."""
        from repro.service.client import client_counters
        from repro.service.shard import ShardedTier

        graphs = [fork_join(n) for n in (3, 4, 5, 6)]
        with ShardedTier(workers=2, worker_config={"threads": 1}) as t:
            with ServiceClient(t.address, timeout=60.0) as c:
                expected = {}
                for g in graphs:
                    expected[id(g)] = wire.dumps(c.schedule(g, "HLFET"))
                before = client_counters()
                done = {}

                def restart_all():
                    with ServiceClient(t.address, timeout=120.0) as c2:
                        done["result"] = c2.call("control", {"action": "restart"})

                worker = threading.Thread(target=restart_all)
                worker.start()
                served = 0
                while worker.is_alive():
                    for g in graphs:
                        # must succeed (routed around the restart), and the
                        # payload must be byte-identical to pre-restart
                        assert wire.dumps(c.schedule(g, "HLFET")) == expected[id(g)]
                        served += 1
                worker.join()
                after = client_counters()
                stats = c.stats()
        assert done["result"]["restarted"] == [0, 1]
        assert served > 0
        assert stats["router"]["restarts"] == 2
        # the restart window forced at least one retry or reroute, and the
        # SDK folded it into the client.* pressure counters
        pressure = (
            after.get("shard_retries", 0.0)
            - before.get("shard_retries", 0.0)
            + after.get("reroutes", 0.0)
            - before.get("reroutes", 0.0)
        )
        assert pressure > 0


class TestBindErrors:
    def test_port_in_use_exits_2_single_process(self, server):
        """`repro serve` on an occupied port: exit code 2 and a readable
        message, not an asyncio traceback (the satellite bugfix)."""
        from repro.service.server import ReproServer, run_server

        host, port = server.address
        taken = ReproServer(host=host, port=port)
        assert run_server(taken, handle_signals=False) == 2

    def test_port_in_use_exits_2_router_mode(self, server):
        from repro.service.shard import run_sharded

        host, port = server.address
        rc = run_sharded(
            workers=2,
            host=host,
            port=port,
            worker_config={"threads": 1},
            handle_signals=False,
        )
        assert rc == 2

    def test_socket_path_in_use_exits_2(self, tmp_path):
        from repro.service.server import ReproServer, run_server

        sock_path = str(tmp_path / "taken.sock")
        with ServerThread(socket_path=sock_path):
            taken = ReproServer(socket_path=sock_path)
            assert run_server(taken, handle_signals=False) == 2
