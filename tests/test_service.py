"""The scheduling service: transport-transparency, back-pressure, drain.

The central contract is byte-identity: a schedule obtained through the
daemon is the same bytes as one computed by a direct library call, for
every registered heuristic.  Everything else — shedding, deadlines,
batching, the index cache, graceful drain — must degrade *visibly*
(typed error responses) rather than corrupt or silently drop work.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading

import pytest

from repro.core import wire
from repro.generation.workloads import fork_join, gaussian_elimination
from repro.schedulers.base import SCHEDULER_REGISTRY, get_scheduler
from repro.service import ServerThread, ServiceClient, ServiceError
from repro.service.protocol import schedule_result


@pytest.fixture(scope="module")
def server():
    """One shared daemon for the read-only tests (port 0 = ephemeral)."""
    with ServerThread(port=0, workers=2) as st:
        yield st


@pytest.fixture
def client(server):
    with ServiceClient(server.address) as c:
        yield c


class TestByteIdentity:
    @pytest.mark.parametrize("name", sorted(SCHEDULER_REGISTRY))
    def test_every_heuristic_matches_library(self, client, name):
        graph = fork_join(4)  # 6 tasks: small enough for OPT's exact search
        via_service = client.schedule(graph, name)
        direct = get_scheduler(name).schedule(graph)
        expected = schedule_result(name, graph, direct)
        assert wire.dumps(via_service) == wire.dumps(expected)

    def test_improve_matches_library(self, client):
        from repro.schedulers.improve import LocalSearchImprover

        graph = fork_join(4)
        via_service = client.schedule(graph, "HLFET", improve=True)
        sched = LocalSearchImprover(get_scheduler("HLFET"))
        expected = schedule_result(sched.name, graph, sched.schedule(graph))
        assert wire.dumps(via_service) == wire.dumps(expected)


class TestOps:
    def test_health(self, client):
        h = client.health()
        assert h["status"] == "ok"
        assert h["uptime_s"] >= 0

    def test_classify(self, client, paper_example):
        res = client.classify(paper_example)
        assert res["n_tasks"] == 5
        assert res["n_edges"] == 5
        assert res["serial_time"] == 150.0

    def test_simulate(self, client, paper_example):
        direct = get_scheduler("LC").schedule(paper_example)
        res = client.simulate(paper_example, direct.clusters())
        assert res["makespan"] == direct.makespan

    def test_batch_mixed_results(self, client, paper_example):
        responses = client.batch(
            [
                {"op": "classify", "params": {"graph": paper_example}},
                {"op": "schedule", "params": {"graph": paper_example, "heuristic": "NOPE"}},
                {"op": "schedule", "params": {"graph": paper_example, "heuristic": "HU"}},
            ]
        )
        assert [r["ok"] for r in responses] == [True, False, True]
        assert responses[1]["error"]["code"] == 400
        assert responses[2]["result"]["heuristic"] == "HU"

    def test_batch_rejects_nesting(self, client, paper_example):
        (resp,) = client.batch([{"op": "batch", "params": {"requests": []}}])
        assert not resp["ok"]
        assert resp["error"]["code"] == 400

    def test_stats_counts_requests(self, client, paper_example):
        client.classify(paper_example)
        stats = client.stats()
        assert stats["counters"].get("service.requests", 0) >= 1
        assert stats["queue_capacity"] == 128

    def test_index_cache_hit_on_repeat(self, server, paper_example):
        with ServiceClient(server.address) as c:
            c.schedule(paper_example, "HLFET")
            before = c.stats()["counters"].get("service.index_cache.hits", 0)
            c.schedule(paper_example, "DSC")
            after = c.stats()["counters"].get("service.index_cache.hits", 0)
        assert after > before


class TestErrors:
    def test_unknown_op_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.call("frobnicate", {})
        assert exc.value.code == 400

    def test_missing_graph_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.call("schedule", {"heuristic": "HU"})
        assert exc.value.code == 400

    def test_malformed_graph_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.call("schedule", {"graph": {"tasks": "nonsense"}})
        assert exc.value.code == 400

    def test_bad_json_line_is_400_and_connection_survives(self, server):
        with socket.create_connection(server.address) as sock:
            fh = sock.makefile("rwb")
            fh.write(b"this is not json\n")
            fh.flush()
            resp = json.loads(fh.readline())
            assert resp["ok"] is False
            assert resp["error"]["code"] == 400
            # same connection still serves well-formed frames
            fh.write(b'{"id": 1, "op": "health", "params": {}}\n')
            fh.flush()
            resp = json.loads(fh.readline())
            assert resp["ok"] is True

    def test_unreachable_daemon_is_unavailable(self):
        client = ServiceClient(("127.0.0.1", 1), retries=1, backoff=0.01)
        with pytest.raises(ServiceError) as exc:
            client.health()
        assert exc.value.status == "unavailable"

    def test_client_rejects_oversized_frame_locally(self, server):
        client = ServiceClient(server.address, max_frame_bytes=256)
        with pytest.raises(ServiceError) as exc:
            client.schedule(gaussian_elimination(8))
        assert exc.value.code == 413


class TestOversizedFrames:
    def test_server_responds_413_then_closes(self):
        with ServerThread(port=0, max_frame_bytes=4096) as st:
            with socket.create_connection(st.address) as sock:
                fh = sock.makefile("rwb")
                fh.write(b'{"op": "health", "padding": "' + b"x" * 8192 + b'"}\n')
                fh.flush()
                resp = json.loads(fh.readline())
                assert resp["ok"] is False
                assert resp["error"]["code"] == 413
                # frame sync is lost after an overrun, so the server closes
                assert fh.readline() == b""


class TestDeadlines:
    def test_queued_past_deadline_is_504(self):
        # one worker: a heavy request (GA, ~200ms) occupies it while a
        # 1 ms-deadline request waits in the queue, guaranteeing the miss
        with ServerThread(port=0, workers=1) as st:
            heavy = gaussian_elimination(12)
            light = fork_join(3)

            async def run():
                from repro.service.client import AsyncServiceClient

                async with AsyncServiceClient(st.address) as ac:
                    slow = asyncio.ensure_future(ac.schedule(heavy, "GA"))
                    await asyncio.sleep(0.05)  # let the heavy one start
                    with pytest.raises(ServiceError) as exc:
                        await ac.schedule(light, deadline_ms=1)
                    assert exc.value.code == 504
                    await slow  # the heavy request itself still completes

            asyncio.run(run())


class TestShedding:
    def test_queue_overflow_sheds_503(self):
        with ServerThread(port=0, workers=1, queue_size=2) as st:
            heavy = gaussian_elimination(12)

            async def run():
                from repro.service.client import AsyncServiceClient

                async with AsyncServiceClient(st.address) as ac:
                    futs = [
                        asyncio.ensure_future(ac.schedule(heavy, "GA"))
                        for _ in range(12)
                    ]
                    done = await asyncio.gather(*futs, return_exceptions=True)
                    statuses = [
                        e.status if isinstance(e, ServiceError) else "ok"
                        for e in done
                    ]
                    assert "shed" in statuses  # queue bound enforced
                    assert "ok" in statuses  # admitted work still completes
                    assert all(s in ("ok", "shed") for s in statuses)

            asyncio.run(run())


class TestBatchingByDigest:
    def test_same_graph_requests_share_one_compile(self):
        # pipeline many same-graph requests; the dispatcher groups them by
        # digest, so the index compiles once for the whole burst
        with ServerThread(port=0, workers=1, batch_max=32) as st:
            graph = fork_join(6, stages=2)

            async def run():
                from repro.service.client import AsyncServiceClient

                async with AsyncServiceClient(st.address) as ac:
                    before = await ac.stats()
                    futs = [
                        asyncio.ensure_future(ac.schedule(graph, "HLFET"))
                        for _ in range(10)
                    ]
                    results = await asyncio.gather(*futs)
                    after = await ac.stats()
                    return results, before, after

            results, before, after = asyncio.run(run())
            assert len({wire.dumps(r) for r in results}) == 1

            def delta(key):
                # the metrics registry is process-global, so compare deltas
                return after["counters"].get(key, 0) - before["counters"].get(key, 0)

            assert delta("service.index_cache.misses") == 1  # one decode+compile
            assert delta("service.index_cache.misses") + delta(
                "service.index_cache.hits"
            ) <= 10


class TestDrain:
    def test_zero_dropped_in_flight(self):
        # fire a burst, then drain mid-flight: every request must get a
        # response — completed work or an explicit 503 "draining", never
        # a silently dropped frame
        st = ServerThread(port=0, workers=1).start()
        graph = gaussian_elimination(12)

        async def run():
            from repro.service.client import AsyncServiceClient

            async with AsyncServiceClient(st.address) as ac:
                futs = [
                    asyncio.ensure_future(ac.schedule(graph, "GA"))
                    for _ in range(8)
                ]
                await asyncio.sleep(0.05)
                threading.Thread(target=st.stop, daemon=True).start()
                done = await asyncio.gather(*futs, return_exceptions=True)
                return done

        done = asyncio.run(run())
        st.stop()
        assert len(done) == 8
        for outcome in done:
            if isinstance(outcome, ServiceError):
                assert outcome.status in ("shed", "draining")
            else:
                assert isinstance(outcome, Exception) is False
                assert outcome["heuristic"] == "GA"

    def test_new_connections_refused_after_drain(self):
        with ServerThread(port=0) as st:
            addr = st.address
            with ServiceClient(addr) as c:
                assert c.health()["status"] == "ok"
            st.stop()
            late = ServiceClient(addr, retries=0, backoff=0.01)
            with pytest.raises(ServiceError):
                late.health()

    def test_manifest_written_on_drain(self, tmp_path):
        manifest_path = tmp_path / "serve_manifest.json"
        with ServerThread(port=0, manifest_path=str(manifest_path)) as st:
            with ServiceClient(st.address) as c:
                c.classify(fork_join(3))
        payload = json.loads(manifest_path.read_text())
        assert payload["config"]["command"] == "serve"
        counters = payload["metrics"]["counters"]
        assert counters.get("service.requests", 0) >= 1


class TestUnixSocket:
    def test_round_trip_over_unix_socket(self, tmp_path, paper_example):
        sock_path = str(tmp_path / "repro.sock")
        with ServerThread(socket_path=sock_path) as st:
            assert st.server.endpoint == f"unix:{sock_path}"
            with ServiceClient(sock_path) as c:
                direct = get_scheduler("DSC").schedule(paper_example)
                res = c.schedule(paper_example, "DSC")
                expected = schedule_result("DSC", paper_example, direct)
                assert wire.dumps(res) == wire.dumps(expected)
