"""Exact-trace tests: hand-computed schedules on crafted graphs.

These pin each heuristic's *mechanics* — not just validity — by verifying
start times and placements against hand derivations on graphs small enough
to trace on paper.
"""

from __future__ import annotations

import pytest

from repro import (
    DSCScheduler,
    HuScheduler,
    MCPScheduler,
    MHScheduler,
    TaskGraph,
)
from repro.core.analysis import alap_times


def build(nodes, edges):
    g = TaskGraph()
    for t, w in nodes:
        g.add_task(t, w)
    for u, v, w in edges:
        g.add_edge(u, v, w)
    return g


class TestDSCTrace:
    def test_join_trace(self):
        """a(20) and b(5) feed j(10) with comms 8/8.

        b is free first? No — DSC picks by priority (startbound + blevel):
        a: 0 + (20 + 8 + 10) = 38; b: 0 + (5 + 8 + 10) = 23 -> a first, new
        cluster, start 0.  b next: no scheduled parent clusters -> new
        cluster, start 0.  j: startbound = max(20+8, 5+8) = 28; on a's
        cluster: max(avail 20, arr_a 20, arr_b 13) = 20 <= 28 -> merge;
        start 20, makespan 30.
        """
        g = build(
            [("a", 20), ("b", 5), ("j", 10)],
            [("a", "j", 8), ("b", "j", 8)],
        )
        s = DSCScheduler().schedule(g)
        assert s.start("a") == 0.0
        assert s.start("b") == 0.0
        assert s.processor_of("j") == s.processor_of("a")
        assert s.start("j") == 20.0
        assert s.makespan == 30.0

    def test_ct1_rejects_useless_merge(self):
        """fork a -> {b, c}, cheap comm: after b occupies a's cluster, c's
        merged start (20) exceeds its startbound (11) -> CT1 rejects, c
        goes to a fresh cluster at 11."""
        g = build(
            [("a", 10), ("b", 10), ("c", 10)],
            [("a", "b", 1), ("a", "c", 1)],
        )
        s = DSCScheduler().schedule(g)
        assert s.processor_of("b") == s.processor_of("a")
        assert s.start("b") == 10.0
        assert s.processor_of("c") != s.processor_of("a")
        assert s.start("c") == 11.0

    def test_higher_blevel_branch_merges_first(self):
        """Of two fork branches the one with the larger b-level has higher
        priority and claims the parent's cluster (zero wait)."""
        g = build(
            [("a", 10), ("short", 5), ("long", 50)],
            [("a", "short", 3), ("a", "long", 3)],
        )
        s = DSCScheduler().schedule(g)
        assert s.processor_of("long") == s.processor_of("a")
        assert s.start("long") == 10.0
        assert s.start("short") == 13.0  # fresh cluster, pays the message


class TestMCPTrace:
    def test_alap_values(self):
        """Chain x(10) -> y(20), comm 5: CP = 35; ALAP(x) = 0, ALAP(y) = 15."""
        g = build([("x", 10), ("y", 20)], [("x", "y", 5)])
        alap = alap_times(g)
        assert alap["x"] == 0.0
        assert alap["y"] == 15.0

    def test_placement_trace(self):
        """fork a(10) -> b(30)/c(10), comms 4/4.

        ALAPs: CP = 10+4+30 = 44; a: 0, b: 14, c: 34.  Order a, b, c.
        a -> P0 @0.  b: P0 @10 vs fresh @14 -> P0 @10.  c: P0 @40 vs fresh
        @14 -> fresh @14.  Makespan 40.
        """
        g = build(
            [("a", 10), ("b", 30), ("c", 10)],
            [("a", "b", 4), ("a", "c", 4)],
        )
        s = MCPScheduler().schedule(g)
        assert s.processor_of("b") == s.processor_of("a")
        assert s.start("b") == 10.0
        assert s.processor_of("c") != s.processor_of("a")
        assert s.start("c") == 14.0
        assert s.makespan == 40.0

    def test_insertion_uses_gap_trace(self):
        """P0 ends up with a gap [10, 35] while waiting for a remote
        message; a later unrelated task slides into it."""
        g = build(
            [("a", 10), ("m", 20), ("b", 10), ("z", 5)],
            [("a", "m", 1), ("m", "b", 25), ("a", "z", 40)],
        )
        s = MCPScheduler(insertion=True).schedule(g)
        s.validate(g)
        # z's ALAP is late; it is scheduled last and must not delay b
        b_finish_order = s.finish("b")
        s2 = MCPScheduler(insertion=False).schedule(g)
        assert s.makespan <= s2.makespan + 1e-9
        assert s.finish("b") == b_finish_order


class TestMHTrace:
    def test_fork_trace(self):
        """Same fork as MCP: MH's levels order b (34+... ) before c."""
        g = build(
            [("a", 10), ("b", 30), ("c", 10)],
            [("a", "b", 4), ("a", "c", 4)],
        )
        s = MHScheduler().schedule(g)
        assert s.start("b") == 10.0  # stays with a
        assert s.start("c") == 14.0  # fresh processor, pays comm
        assert s.makespan == 40.0

    def test_wave_priority_order_within_wave(self):
        """Three sources of different levels all start at 0 on their own
        processors (EST ties), in any order — but the event wave then
        releases children grouped, highest level first."""
        g = build(
            [("s1", 10), ("s2", 10), ("k1", 30), ("k2", 5)],
            [("s1", "k1", 2), ("s2", "k2", 2)],
        )
        s = MHScheduler().schedule(g)
        s.validate(g)
        assert s.start("s1") == 0.0 and s.start("s2") == 0.0
        # children stay with their parents (2 < sibling wait)
        assert s.processor_of("k1") == s.processor_of("s1")
        assert s.processor_of("k2") == s.processor_of("s2")


class TestHUTrace:
    def test_chain_scatter_trace(self):
        """x(10) -> y(10), comm 7: HU puts y on a fresh processor (free at
        0 < x's 10) and pays the message: start 17."""
        g = build([("x", 10), ("y", 10)], [("x", "y", 7)])
        s = HuScheduler().schedule(g)
        assert s.processor_of("y") != s.processor_of("x")
        assert s.start("y") == 17.0

    def test_bounded_hu_behaves(self):
        """With the pool capped at 1, HU collapses to serial order."""
        g = build([("x", 10), ("y", 10)], [("x", "y", 7)])
        s = HuScheduler(max_processors=1).schedule(g)
        assert s.n_processors == 1
        assert s.makespan == 20.0


class TestSimulatorOrderingEffects:
    def test_priority_decides_intra_cluster_order(self):
        """Two independent tasks in one cluster: the higher-priority one
        runs first under simulate_clustering."""
        from repro.core.simulator import simulate_clustering

        g = build([("p", 10), ("q", 10)], [])
        first = simulate_clustering(g, {"p": 0, "q": 0}, priority={"p": 2, "q": 1})
        assert first.start("p") == 0.0 and first.start("q") == 10.0
        second = simulate_clustering(g, {"p": 0, "q": 0}, priority={"p": 1, "q": 2})
        assert second.start("q") == 0.0 and second.start("p") == 10.0
