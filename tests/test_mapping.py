"""Tests for bounded-processor mapping (cluster folding)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import ScheduleError, TaskGraph, get_scheduler
from repro.schedulers import BoundedScheduler
from repro.schedulers.mapping import fold_clusters_guided, fold_clusters_lpt

from conftest import task_graphs


class TestFoldLpt:
    def test_respects_processor_count(self, wide_fork):
        s = get_scheduler("HU").schedule(wide_fork)  # spreads widely
        assignment = fold_clusters_lpt(wide_fork, s.clusters(), 2)
        assert set(assignment.values()) <= {0, 1}
        assert set(assignment) == set(wide_fork.tasks())

    def test_clusters_stay_whole(self, wide_fork):
        s = get_scheduler("DSC").schedule(wide_fork)
        clusters = s.clusters()
        assignment = fold_clusters_lpt(wide_fork, clusters, 2)
        for cluster in clusters:
            assert len({assignment[t] for t in cluster}) == 1

    def test_balance(self):
        g = TaskGraph()
        for i in range(4):
            g.add_task(i, 10)
        clusters = [[0], [1], [2], [3]]
        assignment = fold_clusters_lpt(g, clusters, 2)
        loads = {}
        for t, p in assignment.items():
            loads[p] = loads.get(p, 0) + g.weight(t)
        assert loads[0] == loads[1] == 20

    def test_bad_processor_count(self, diamond):
        with pytest.raises(ScheduleError):
            fold_clusters_lpt(diamond, [list(diamond.tasks())], 0)


class TestFoldGuided:
    def test_valid_and_not_worse_than_lpt_often(self, wide_fork):
        from repro.core.simulator import simulate_clustering

        s = get_scheduler("HU").schedule(wide_fork)
        clusters = s.clusters()
        lpt = simulate_clustering(wide_fork, fold_clusters_lpt(wide_fork, clusters, 2))
        guided = simulate_clustering(
            wide_fork, fold_clusters_guided(wide_fork, clusters, 2)
        )
        lpt.validate(wide_fork)
        guided.validate(wide_fork)
        # guided search evaluates the true makespan; it should not lose badly
        assert guided.makespan <= lpt.makespan * 1.25 + 1e-9


class TestBoundedScheduler:
    @pytest.mark.parametrize("inner", ["DSC", "MH", "HU", "CLANS"])
    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_never_exceeds_p(self, paper_example, wide_fork, inner, p):
        for g in (paper_example, wide_fork):
            s = BoundedScheduler(inner, p).schedule(g)
            s.validate(g)
            assert s.n_processors <= p

    def test_p1_is_serial_time(self, paper_example):
        s = BoundedScheduler("DSC", 1).schedule(paper_example)
        assert s.makespan == pytest.approx(paper_example.serial_time())

    def test_unbounded_result_kept_when_small(self, chain5):
        # DSC uses one cluster on a chain; folding to 4 procs is a no-op
        s = BoundedScheduler("DSC", 4).schedule(chain5)
        assert s.n_processors == 1

    def test_name_encodes_p(self):
        assert BoundedScheduler("DSC", 4).name == "DSC@p4"

    def test_accepts_instance(self, diamond):
        inner = get_scheduler("MH")
        s = BoundedScheduler(inner, 2).schedule(diamond)
        s.validate(diamond)

    def test_bad_p(self):
        with pytest.raises(ScheduleError):
            BoundedScheduler("DSC", 0)

    def test_guided_mode(self, wide_fork):
        s = BoundedScheduler("HU", 2, guided=True).schedule(wide_fork)
        s.validate(wide_fork)
        assert s.n_processors <= 2

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=30, deadline=None)
    def test_property_valid_at_p2(self, g):
        s = BoundedScheduler("MCP", 2).schedule(g)
        s.validate(g)
        assert s.n_processors <= 2


class TestMoreProcessorsHelp:
    def test_monotone_trend_on_parallel_workload(self, wide_fork):
        spans = [
            BoundedScheduler("MCP", p).schedule(wide_fork).makespan
            for p in (1, 2, 4)
        ]
        # more processors should never make the *best observed* worse overall
        assert min(spans) == spans[-1] or spans[-1] <= spans[0]
