"""Tests for the random PDG pipeline (SP DAG, anchor, weights)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GenerationError, anchor_out_degree, granularity, granularity_band
from repro.core.metrics import GRANULARITY_BANDS
from repro.generation.parse_tree import SPKind, SPNode, random_parse_tree
from repro.generation.random_dag import (
    adjust_anchor,
    assign_weights,
    generate_pdg,
    sample_target_granularity,
    sp_dag_from_tree,
)


def leaf():
    return SPNode(SPKind.LEAF)


class TestSpDagFromTree:
    def test_linear_chain(self):
        tree = SPNode(SPKind.LINEAR, [leaf(), leaf(), leaf()])
        g = sp_dag_from_tree(tree)
        assert g.n_tasks == 3
        assert g.n_edges == 2
        assert g.sources() == [0] and g.sinks() == [2]

    def test_independent_union(self):
        tree = SPNode(SPKind.INDEPENDENT, [leaf(), leaf()])
        g = sp_dag_from_tree(tree)
        assert g.n_edges == 0
        assert g.n_tasks == 2

    def test_series_of_parallel_is_bipartite_join(self):
        par = SPNode(SPKind.INDEPENDENT, [leaf(), leaf()])
        par2 = SPNode(SPKind.INDEPENDENT, [leaf(), leaf()])
        tree = SPNode(SPKind.LINEAR, [par, par2])
        g = sp_dag_from_tree(tree)
        assert g.n_edges == 4  # complete bipartite 2x2

    def test_always_dag(self, rng):
        for _ in range(20):
            tree = random_parse_tree(25, rng)
            g = sp_dag_from_tree(tree)
            g.validate()
            assert g.n_tasks == 25


class TestAdjustAnchor:
    @pytest.mark.parametrize("anchor", [2, 3, 4, 5])
    def test_reaches_target(self, anchor, rng):
        for _ in range(5):
            g = sp_dag_from_tree(random_parse_tree(40, rng))
            if g.n_edges == 0:
                continue
            adjust_anchor(g, anchor, rng)
            assert anchor_out_degree(g) == anchor
            g.validate()  # still a DAG

    def test_bad_anchor(self, rng):
        g = sp_dag_from_tree(random_parse_tree(10, rng))
        with pytest.raises(GenerationError):
            adjust_anchor(g, 0, rng)

    def test_impossible_anchor_raises(self, rng):
        # 3 nodes cannot host out-degree 5 anywhere
        g = sp_dag_from_tree(
            SPNode(SPKind.LINEAR, [leaf(), leaf(), leaf()])
        )
        with pytest.raises(GenerationError):
            adjust_anchor(g, 5, rng)


class TestAssignWeights:
    def test_exact_granularity(self, rng):
        g = sp_dag_from_tree(random_parse_tree(30, rng))
        adjust_anchor(g, 3, rng)
        assign_weights(g, rng, weight_range=(20, 100), target_granularity=0.5)
        assert granularity(g) == pytest.approx(0.5, rel=1e-9)

    def test_node_weights_in_range(self, rng):
        g = sp_dag_from_tree(random_parse_tree(30, rng))
        adjust_anchor(g, 2, rng)
        assign_weights(g, rng, weight_range=(20, 100), target_granularity=1.0)
        for t in g.tasks():
            assert 20 <= g.weight(t) <= 100

    def test_edge_weights_positive(self, rng):
        g = sp_dag_from_tree(random_parse_tree(30, rng))
        adjust_anchor(g, 2, rng)
        assign_weights(g, rng, weight_range=(20, 100), target_granularity=0.05)
        for u, v in g.edges():
            assert g.edge_weight(u, v) > 0

    def test_bad_ranges(self, rng):
        g = sp_dag_from_tree(random_parse_tree(10, rng))
        with pytest.raises(GenerationError):
            assign_weights(g, rng, weight_range=(0, 10), target_granularity=1)
        with pytest.raises(GenerationError):
            assign_weights(g, rng, weight_range=(10, 5), target_granularity=1)
        with pytest.raises(GenerationError):
            assign_weights(g, rng, weight_range=(10, 20), target_granularity=0)


class TestSampleTarget:
    @pytest.mark.parametrize("band", range(5))
    def test_within_band(self, band, rng):
        lo, hi = GRANULARITY_BANDS[band]
        for _ in range(50):
            t = sample_target_granularity(band, rng)
            assert lo <= t < hi

    def test_bad_band(self, rng):
        with pytest.raises(GenerationError):
            sample_target_granularity(9, rng)


class TestGeneratePdg:
    @pytest.mark.parametrize("band", range(5))
    def test_classification_met(self, band, rng):
        g = generate_pdg(
            rng, n_tasks=30, band=band, anchor=3, weight_range=(20, 100)
        )
        assert g.n_tasks == 30
        assert granularity_band(granularity(g)) == band
        assert anchor_out_degree(g) == 3
        g.validate()

    def test_deterministic(self):
        a = generate_pdg(
            np.random.default_rng(3), n_tasks=25, band=2, anchor=2,
            weight_range=(20, 100),
        )
        b = generate_pdg(
            np.random.default_rng(3), n_tasks=25, band=2, anchor=2,
            weight_range=(20, 100),
        )
        assert a == b

    def test_impossible_request_raises(self):
        with pytest.raises(GenerationError):
            generate_pdg(
                np.random.default_rng(0), n_tasks=3, band=0, anchor=5,
                weight_range=(20, 100), max_attempts=3,
            )
