"""Tests for the statistics module."""

from __future__ import annotations

import pytest

from repro import GraphError, TaskGraph, get_scheduler, serial_schedule
from repro.core.stats import graph_stats, schedule_stats


class TestGraphStats:
    def test_chain(self, chain5):
        st = graph_stats(chain5)
        assert st.n_tasks == 5
        assert st.n_edges == 4
        assert st.n_sources == 1 and st.n_sinks == 1
        assert st.height == 5
        assert st.width == 1
        assert st.inherent_parallelism == pytest.approx(1.0)
        assert st.total_comm == pytest.approx(12.0)
        assert st.comm_to_comp == pytest.approx(12.0 / 50.0)
        assert st.out_degree_distribution == {0: 1, 1: 4}

    def test_diamond(self, diamond):
        st = graph_stats(diamond)
        assert st.height == 3
        assert st.width == 2
        assert st.inherent_parallelism == pytest.approx(40.0 / 30.0)
        assert st.cp_length == pytest.approx(38.0)
        assert st.cp_length_comm_free == pytest.approx(30.0)

    def test_summary_text(self, paper_example):
        txt = graph_stats(paper_example).summary()
        assert "5 tasks" in txt

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            graph_stats(TaskGraph())


class TestScheduleStats:
    def test_serial(self, paper_example):
        s = serial_schedule(paper_example)
        st = schedule_stats(paper_example, s)
        assert st.n_processors == 1
        assert st.speedup == pytest.approx(1.0)
        assert st.mean_busy_fraction == pytest.approx(1.0)
        assert st.load_imbalance == pytest.approx(1.0)
        assert st.crossing_edges == 0
        assert st.crossing_comm == 0.0
        assert st.comm_fraction == 0.0

    def test_clans_example(self, paper_example):
        s = get_scheduler("CLANS").schedule(paper_example)
        st = schedule_stats(paper_example, s)
        assert st.makespan == pytest.approx(130.0)
        assert st.n_processors == 2
        # node 2 sits apart: edges 1->2 and 2->5 cross
        assert st.crossing_edges == 2
        assert st.crossing_comm == pytest.approx(9.0)
        assert 0 < st.comm_fraction < 1

    def test_invalid_schedule_rejected(self, paper_example, diamond):
        s = serial_schedule(diamond)
        with pytest.raises(Exception):
            schedule_stats(paper_example, s)

    def test_busy_bounds(self, wide_fork):
        s = get_scheduler("MH").schedule(wide_fork)
        st = schedule_stats(wide_fork, s)
        assert 0 < st.min_busy_fraction <= st.mean_busy_fraction
        assert st.mean_busy_fraction <= st.max_busy_fraction <= 1.0

    def test_summary_text(self, paper_example):
        s = serial_schedule(paper_example)
        assert "makespan" in schedule_stats(paper_example, s).summary()
