"""Adversarial engine: op invariants, replay identity, search, store, suites.

The subsystem's two load-bearing guarantees are tested here directly:

* **acyclicity by construction** — no sequence of proposed ops can make a
  task graph cyclic, and an op log replayed through :func:`apply_op_log`
  is re-validated op by op (property-tested over seeded corpora and
  hypothesis-driven walks);
* **replay byte-identity** — ``(base spec, op log)`` rebuilds the exact
  graph bytes (and so the exact wire digest), including after a JSON
  round trip of the stored instance record.

Plus the integration contract: a promoted instance enters the normal
Table-1 machinery (``run_suite`` serial/parallel/batched, checkpoints) as
the ``adversarial`` graph class and behaves like any random graph.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversarial import (
    ALL_OPS,
    MAX_WEIGHT,
    MIN_WEIGHT,
    AnnealingPolicy,
    GreedyPolicy,
    InstanceRecord,
    MakespanRatio,
    NSLGap,
    PerturbationEnv,
    apply_op,
    apply_op_log,
    build_base_graph,
    find_instance,
    hunt,
    list_instances,
    load_instance,
    make_objective,
    make_policy,
    promote,
    replay,
    save_instance,
    verify_replay,
    wire_record,
)
from repro.core.batch import use_batch
from repro.core.exceptions import AdversarialError, GraphError
from repro.core.taskgraph import TaskGraph
from repro.core.wire import graph_digest, graph_to_wire
from repro.experiments.kernelbench import _serialized
from repro.experiments.runner import run_suite
from repro.generation.random_dag import generate_pdg
from repro.generation.suites import (
    GRAPH_CLASSES,
    AdversarialGraph,
    SuiteCell,
    adversarial_suite,
    generate_suite,
)
from repro.obs.metrics import MetricsRegistry, use_registry

SEED = 19940815

BASE_SPEC = {
    "kind": "pdg",
    "seed": SEED,
    "n_tasks": 16,
    "band": 2,
    "anchor": 3,
    "weight_range": [20, 100],
}


def _base(seed: int = SEED, n_tasks: int = 16) -> TaskGraph:
    return generate_pdg(
        np.random.default_rng(seed),
        n_tasks=n_tasks,
        band=2,
        anchor=3,
        weight_range=(20, 100),
    )


def _weights_in_bounds(g: TaskGraph) -> bool:
    return all(MIN_WEIGHT <= g.weight(t) <= MAX_WEIGHT for t in g.tasks()) and all(
        MIN_WEIGHT <= g.edge_weight(u, v) <= MAX_WEIGHT for u, v in g.edges()
    )


# ----------------------------------------------------------------------
# perturbation ops: invariants over seeded walks
# ----------------------------------------------------------------------
class TestOps:
    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_walk_preserves_invariants(self, seed):
        g = _base(SEED + seed)
        tasks_before = set(g.tasks())
        env = PerturbationEnv(g, random.Random(seed))
        for _ in range(40):
            op = env.propose()
            if op is None:
                continue
            env.apply(op)
            env.graph.topological_order()  # raises CycleError if broken
            env.graph.validate()
            assert set(env.graph.tasks()) == tasks_before
            assert env.graph.n_edges >= 1
            assert _weights_in_bounds(env.graph)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_walk_is_acyclic_and_replayable(self, seed):
        base = _base(SEED)
        env = PerturbationEnv(base.copy(), random.Random(seed))
        for _ in range(15):
            op = env.propose()
            if op is not None:
                env.apply(op)
        env.graph.topological_order()
        rebuilt = apply_op_log(base.copy(), env.op_log)
        assert graph_to_wire(rebuilt) == graph_to_wire(env.graph)

    def test_each_op_kind_applies_alone(self):
        # Restricting the action set to one op kind must still produce
        # valid walks (the CLI exposes --ops-style subsets via hunt(ops=)).
        for kind in ALL_OPS:
            env = PerturbationEnv(_base(), random.Random(7), ops=(kind,))
            applied = 0
            for _ in range(10):
                op = env.propose()
                if op is None:
                    continue
                assert op[0] == kind
                env.apply(op)
                applied += 1
            env.graph.topological_order()
            assert applied > 0, f"op {kind} never applied"

    def test_apply_op_validates_preconditions(self):
        g = _base()
        with pytest.raises(GraphError):
            apply_op(g, ("edge_reweight", "nope-1", "nope-2", 5.0))
        with pytest.raises(GraphError):
            apply_op(g, ("node_reweight", "nope", 5.0))
        with pytest.raises(GraphError):
            apply_op(g, ("granularity_shift", "nodes", -1.0))
        with pytest.raises(GraphError):
            apply_op(g, ("granularity_shift", "sideways", 2.0))
        with pytest.raises(GraphError):
            apply_op(g, ("frobnicate",))
        u, v = g.edges()[0]
        with pytest.raises(GraphError):  # weight outside the op bounds
            apply_op(g, ("edge_reweight", u, v, 0.0))

    def test_densify_rejects_cycle_closing_edge(self):
        g = TaskGraph()
        for t in ("a", "b", "c"):
            g.add_task(t, 1.0)
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 1.0)
        before = g.to_dict()
        with pytest.raises(GraphError):
            apply_op(g, ("densify", "c", "a", 1.0))  # would close a->b->c->a
        with pytest.raises(GraphError):
            apply_op(g, ("densify", "a", "b", 1.0))  # already exists
        assert g.to_dict() == before

    def test_rewire_failure_leaves_graph_untouched(self):
        g = TaskGraph()
        for t in ("a", "b", "c"):
            g.add_task(t, 1.0)
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 1.0)
        before = g.to_dict()
        # removing a->b then adding c->a would close a cycle through b->c
        with pytest.raises(GraphError):
            apply_op(g, ("rewire", "a", "b", "c", "b", 1.0))
        assert g.to_dict() == before  # edge restored, original order kept

    def test_sparsify_refuses_last_edge(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        g.add_edge("a", "b", 1.0)
        with pytest.raises(GraphError):
            apply_op(g, ("sparsify", "a", "b"))

    def test_env_rejects_trivial_base_and_unknown_ops(self):
        tiny = TaskGraph()
        tiny.add_task("a", 1.0)
        with pytest.raises(GraphError):
            PerturbationEnv(tiny, random.Random(0))
        with pytest.raises(GraphError):
            PerturbationEnv(_base(), random.Random(0), ops=("teleport",))

    def test_neighborhood_does_not_disturb_search_state(self):
        env = PerturbationEnv(_base(), random.Random(3))
        before = graph_to_wire(env.graph)
        cands = env.neighborhood(6)
        assert graph_to_wire(env.graph) == before
        assert env.op_log == []
        for op, cand in cands:
            assert cand is not env.graph
            cand.topological_order()


# ----------------------------------------------------------------------
# replay determinism
# ----------------------------------------------------------------------
class TestReplay:
    def test_same_seed_same_walk(self):
        logs = []
        for _ in range(2):
            env = PerturbationEnv(_base(), random.Random(11))
            for _ in range(25):
                op = env.propose()
                if op is not None:
                    env.apply(op)
            logs.append(list(env.op_log))
        assert logs[0] == logs[1]

    def test_hunt_is_deterministic(self):
        objective = MakespanRatio("DSC", "CLANS")
        runs = [
            hunt(_base(), objective, seed=5, steps=12, neighborhood=3)
            for _ in range(2)
        ]
        assert runs[0].best_score == runs[1].best_score
        assert runs[0].best_op_log == runs[1].best_op_log
        assert graph_to_wire(runs[0].best_graph) == graph_to_wire(
            runs[1].best_graph
        )

    def test_record_json_round_trip_replays(self, tmp_path):
        objective = MakespanRatio("DSC", "CLANS")
        base = build_base_graph(BASE_SPEC)
        result = hunt(base, objective, seed=5, steps=12, neighborhood=3)
        wire, digest = wire_record(result.best_graph)
        record = InstanceRecord(
            digest=digest,
            graph=wire,
            base=BASE_SPEC,
            op_log=result.best_op_log,
            objective=objective.describe(),
            gap=result.best_score,
            base_gap=result.base_score,
        )
        path = save_instance(tmp_path, record)
        loaded = load_instance(path)
        assert loaded.op_log == [tuple(op) for op in record.op_log]
        assert verify_replay(loaded) == digest
        assert graph_to_wire(replay(loaded)) == wire

    def test_tampered_op_log_is_caught(self, tmp_path):
        objective = MakespanRatio("DSC", "CLANS")
        base = build_base_graph(BASE_SPEC)
        result = hunt(base, objective, seed=5, steps=12, neighborhood=3)
        wire, digest = wire_record(result.best_graph)
        record = InstanceRecord(
            digest=digest,
            graph=wire,
            base=BASE_SPEC,
            op_log=result.best_op_log[:-1],  # truncated recipe
            objective=objective.describe(),
            gap=result.best_score,
            base_gap=result.base_score,
        )
        assert len(result.best_op_log) > 0
        with pytest.raises(AdversarialError, match="digest mismatch"):
            verify_replay(record)

    def test_build_base_graph_rejects_unknown_kind(self):
        with pytest.raises(AdversarialError):
            build_base_graph({"kind": "erdos"})


# ----------------------------------------------------------------------
# objectives
# ----------------------------------------------------------------------
class TestObjectives:
    def test_ratio_and_nsl_agree_with_manual_scores(self):
        g = _base()
        ratio = MakespanRatio("DSC", "CLANS")
        nsl = NSLGap("DSC", "CLANS")
        r = ratio.score(g)
        n = nsl.score(g)
        assert r is not None and r > 0
        assert n is not None
        assert ratio.describe() == {"kind": "ratio", "a": "DSC", "b": "CLANS"}

    @pytest.mark.parametrize("batch_on", [False, True], ids=["b0", "b1"])
    def test_score_many_matches_score(self, batch_on):
        objective = MakespanRatio("DSC", "MCP")
        graphs = [_base(SEED + i) for i in range(4)]
        with use_batch(batch_on):
            many = objective.score_many(graphs)
            singles = [objective.score(g) for g in graphs]
        assert many == singles

    def test_cyclic_candidate_scores_none_and_counts(self):
        cyc = TaskGraph()
        cyc.add_task("a", 1)
        cyc.add_task("b", 1)
        cyc.add_edge("a", "b", 1)
        cyc.add_edge("b", "a", 1)
        ok = _base()
        objective = MakespanRatio("DSC", "CLANS")
        registry = MetricsRegistry()
        with use_registry(registry), use_batch(True):
            scores = objective.score_many([cyc, ok])
        assert scores[0] is None and scores[1] is not None
        assert registry.counters()["adv.bad_candidates"] == 1

    def test_make_objective_registry(self):
        assert isinstance(make_objective("ratio", "dsc", "clans"), MakespanRatio)
        assert isinstance(make_objective("nsl-gap", "DSC", "MH"), NSLGap)
        with pytest.raises(ValueError):
            make_objective("entropy", "DSC", "CLANS")


# ----------------------------------------------------------------------
# search policies + hunt
# ----------------------------------------------------------------------
class TestSearch:
    def test_greedy_accepts_only_improvements(self):
        p = GreedyPolicy(patience=2)
        rng = random.Random(0)
        assert p.accept(1.0, 1.1, rng)
        assert not p.accept(1.0, 1.0, rng)
        assert not p.accept(1.0, 0.9, rng)
        p.note(False)
        assert not p.should_restart()
        p.note(False)
        assert p.should_restart()
        assert not p.should_restart()  # stall counter reset by the restart

    def test_annealing_cools_and_accepts_worse_moves_early(self):
        p = AnnealingPolicy(t0=10.0, cooling=0.5, t_min=1e-6)
        rng = random.Random(0)
        assert p.accept(1.0, 2.0, rng)  # improvement always accepted
        hot_accepts = sum(
            AnnealingPolicy(t0=10.0).accept(1.0, 0.99, random.Random(i))
            for i in range(50)
        )
        cold = AnnealingPolicy(t0=1e-6, cooling=0.9)
        cold_accepts = sum(
            cold.accept(1.0, 0.5, random.Random(i)) for i in range(50)
        )
        assert hot_accepts > 40  # ~exp(-0.001) acceptance when hot
        assert cold_accepts == 0  # frozen schedule rejects big drops
        assert p.t < 10.0  # temperature decayed

    def test_make_policy_registry(self):
        assert isinstance(make_policy("greedy"), GreedyPolicy)
        assert isinstance(make_policy("anneal"), AnnealingPolicy)
        with pytest.raises(AdversarialError):
            make_policy("mcts")  # interface-ready, not shipped

    def test_bad_schedules_rejected(self):
        with pytest.raises(AdversarialError):
            GreedyPolicy(patience=0)
        with pytest.raises(AdversarialError):
            AnnealingPolicy(t0=-1.0)

    @pytest.mark.parametrize("policy", ["greedy", "anneal"])
    def test_hunt_never_regresses_best(self, policy):
        objective = MakespanRatio("DSC", "CLANS")
        result = hunt(
            _base(), objective, seed=9, steps=15, neighborhood=3, policy=policy
        )
        assert result.best_score >= result.base_score
        assert result.policy == policy
        rebuilt = apply_op_log(_base(), result.best_op_log)
        assert graph_to_wire(rebuilt) == graph_to_wire(result.best_graph)

    def test_hunt_counters_and_history(self):
        objective = MakespanRatio("DSC", "CLANS")
        registry = MetricsRegistry()
        with use_registry(registry):
            result = hunt(
                _base(),
                objective,
                seed=9,
                steps=10,
                neighborhood=2,
                keep_history=True,
            )
        counters = registry.counters()
        assert counters["adv.steps"] == 10
        assert counters["adv.evaluated"] == result.evaluated > 0
        assert counters.get("adv.accepted", 0) == result.accepted
        assert len(result.history) == 10
        assert result.history == sorted(result.history)  # best only climbs

    def test_hunt_rejects_bad_parameters(self):
        objective = MakespanRatio("DSC", "CLANS")
        with pytest.raises(AdversarialError):
            hunt(_base(), objective, seed=1, steps=0)
        with pytest.raises(AdversarialError):
            hunt(_base(), objective, seed=1, neighborhood=0)
        with pytest.raises(AdversarialError):
            hunt(_base(), objective, seed=1, policy="mcts")


# ----------------------------------------------------------------------
# store + promotion
# ----------------------------------------------------------------------
def _hunted_record(steps: int = 12) -> InstanceRecord:
    objective = MakespanRatio("DSC", "CLANS")
    base = build_base_graph(BASE_SPEC)
    result = hunt(base, objective, seed=5, steps=steps, neighborhood=3)
    wire, digest = wire_record(result.best_graph)
    return InstanceRecord(
        digest=digest,
        graph=wire,
        base=BASE_SPEC,
        op_log=result.best_op_log,
        objective=objective.describe(),
        gap=result.best_score,
        base_gap=result.base_score,
    )


class TestStore:
    def test_find_promote_list(self, tmp_path):
        record = _hunted_record()
        save_instance(tmp_path, record)
        _, found = find_instance(tmp_path, record.digest[:8])
        assert found == record
        with pytest.raises(AdversarialError, match="no instance"):
            find_instance(tmp_path, "ffffffff")

        assert list_instances(tmp_path, promoted_only=True) == []
        promoted = promote(tmp_path, record.digest[:8])
        assert promoted.promoted
        # idempotent, and durable across a reload
        assert promote(tmp_path, record.digest[:8]) == promoted
        assert list_instances(tmp_path, promoted_only=True) == [promoted]

    def test_promote_refuses_broken_recipe(self, tmp_path):
        record = _hunted_record()
        bad = InstanceRecord(
            **{**record.__dict__, "op_log": record.op_log[:-1]}
        )
        path = save_instance(tmp_path, bad)
        with pytest.raises(AdversarialError, match="digest mismatch"):
            promote(tmp_path, bad.digest[:8])
        assert not load_instance(path).promoted

    def test_from_dict_rejects_wrong_format(self):
        with pytest.raises(AdversarialError):
            InstanceRecord.from_dict({"format": "not-an-instance"})
        record = _hunted_record()
        data = record.to_dict()
        data["version"] = 99
        with pytest.raises(AdversarialError):
            InstanceRecord.from_dict(data)

    def test_suite_graphs_digest_checked(self, tmp_path):
        record = _hunted_record()
        save_instance(tmp_path, record)
        promote(tmp_path, record.digest[:8])
        path, loaded = find_instance(tmp_path, record.digest[:8])
        data = loaded.to_dict()
        data["graph"]["tasks"][0][1] = 12345.0  # hand-edited graph
        path.write_text(json.dumps(data, indent=1) + "\n")
        with pytest.raises(AdversarialError, match="does not match its digest"):
            list(adversarial_suite(tmp_path))


# ----------------------------------------------------------------------
# suite integration: the 'adversarial' graph class
# ----------------------------------------------------------------------
class TestSuiteIntegration:
    def test_graph_class_registered(self):
        assert set(GRAPH_CLASSES) >= {"table1", "adversarial"}
        assert GRAPH_CLASSES["adversarial"] is adversarial_suite

    def test_adversarial_graph_id_is_digest_keyed(self):
        g = _base()
        sg = AdversarialGraph(
            cell=SuiteCell(2, 3, (20, 100)),
            index=0,
            graph=g,
            digest="abcdef0123456789" * 4,
        )
        assert sg.graph_id == "adv-abcdef012345"

    def test_promoted_instances_flow_through_run_suite(self, tmp_path):
        record = _hunted_record()
        save_instance(tmp_path, record)
        promote(tmp_path, record.digest[:8])
        suite = list(adversarial_suite(tmp_path))
        assert len(suite) == 1
        assert suite[0].graph_id == f"adv-{record.digest[:12]}"
        assert list(adversarial_suite(tmp_path, promoted_only=False)) == suite

        mixed = list(
            generate_suite(
                graphs_per_cell=1,
                seed=SEED,
                cells=[SuiteCell(1, 2, (20, 100))],
                n_tasks_range=(12, 16),
            )
        ) + suite

        with use_batch(True):
            batched = _serialized(run_suite([s for s in mixed], None, seed=SEED))
        with use_batch(False):
            unbatched = _serialized(run_suite([s for s in mixed], None, seed=SEED))
        parallel = _serialized(run_suite([s for s in mixed], None, seed=SEED, jobs=2))
        assert batched == unbatched == parallel

    def test_checkpoint_resume_is_byte_identical(self, tmp_path):
        record = _hunted_record()
        save_instance(tmp_path, record)
        promote(tmp_path, record.digest[:8])
        suite = list(adversarial_suite(tmp_path))
        journal = tmp_path / "checkpoint.jsonl"

        plain = _serialized(run_suite(list(suite), None, seed=SEED))
        first = _serialized(
            run_suite(list(suite), None, seed=SEED, checkpoint=journal)
        )
        resumed = _serialized(
            run_suite(list(suite), None, seed=SEED, checkpoint=journal)
        )
        assert plain == first == resumed
