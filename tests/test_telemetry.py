"""End-to-end telemetry: trace propagation, quantile histograms, exposition.

Four layers under test:

* :mod:`repro.obs.telemetry` — the W3C-traceparent codec and the
  contextvar propagation model;
* :class:`repro.obs.metrics.FixedHistogram` — bucket-boundary semantics,
  quantile estimation, and the exact order-independent merge that makes
  per-worker aggregation well-defined;
* :mod:`repro.obs.prom` — the Prometheus text exposition and the
  service's ``metrics`` verb;
* the acceptance path: one trace id emitted by the blocking client must
  appear on client, server (admission / queue / op / compile) and
  suite-worker spans — a single distributed trace across a process
  boundary — plus the ``bench track`` perf-ledger exit codes.
"""

from __future__ import annotations

import json
import math
import time

import pytest

from repro.core.kernels import graph_index
from repro.experiments import benchtrack
from repro.experiments.parallel import run_suite_parallel
from repro.generation.suites import SuiteCell, generate_suite
from repro.generation.workloads import fork_join, gaussian_elimination
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS_MS,
    FixedHistogram,
    MetricsRegistry,
    use_registry,
)
from repro.obs.profile import SamplingProfiler, profile_path_for
from repro.obs.prom import to_prometheus
from repro.obs.telemetry import (
    TraceContext,
    current_context,
    inject,
    extract,
    new_context,
    parse_traceparent,
    use_context,
)
from repro.obs.trace import Tracer, use_tracer
from repro.service import ServerThread, ServiceClient
from repro.service.protocol import decode_request, encode_request
from repro.service.top import render


# ----------------------------------------------------------------------
# trace context codec
# ----------------------------------------------------------------------
class TestTraceparent:
    def test_round_trip(self):
        ctx = new_context()
        assert parse_traceparent(ctx.to_traceparent()) == ctx

    def test_format_shape(self):
        ctx = new_context()
        version, trace_id, span_id, flags = ctx.to_traceparent().split("-")
        assert version == "00"
        assert len(trace_id) == 32 and len(span_id) == 16 and flags == "01"

    def test_child_keeps_trace_id_fresh_span_id(self):
        ctx = new_context()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            42,
            "",
            "nonsense",
            "00-xyz-00f067aa0ba902b7-01",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",  # 3 parts
            "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  # version ff
            "00-" + "0" * 32 + "-00f067aa0ba902b7-01",  # all-zero trace id
            "00-4bf92f3577b34da6a3ce929d0e0e4736-" + "0" * 16 + "-01",  # zero span
        ],
    )
    def test_malformed_is_dropped_not_raised(self, bad):
        assert parse_traceparent(bad) is None

    def test_inject_extract_envelope(self):
        ctx = new_context()
        obj = inject({"op": "schedule"}, ctx)
        assert extract(obj) == ctx
        assert inject({"op": "x"}) == {"op": "x"}  # no active ctx: no bytes

    def test_contextvar_scoping(self):
        assert current_context() is None
        ctx = new_context()
        with use_context(ctx):
            assert current_context() == ctx
            with use_context(ctx.child()) as inner:
                assert current_context() == inner
            assert current_context() == ctx
        assert current_context() is None


class TestWireRoundTrip:
    def test_traceparent_survives_encode_decode(self):
        ctx = new_context()
        frame = encode_request(
            "schedule",
            {"graph": {}},
            id=7,
            traceparent=ctx.to_traceparent(),
        )
        request = decode_request(frame)
        assert request.traceparent == ctx.to_traceparent()
        assert parse_traceparent(request.traceparent) == ctx

    def test_absent_traceparent_is_none(self):
        request = decode_request(encode_request("health"))
        assert request.traceparent is None

    def test_malformed_traceparent_dropped_request_still_valid(self):
        line = json.dumps(
            {"id": 1, "op": "health", "params": {}, "traceparent": "garbage"}
        )
        request = decode_request(line)
        assert request.op == "health"
        assert request.traceparent is None


# ----------------------------------------------------------------------
# fixed-bucket histograms
# ----------------------------------------------------------------------
class TestFixedHistogram:
    def test_empty_quantile_is_nan(self):
        h = FixedHistogram((1.0, 2.0))
        assert math.isnan(h.quantile(0.5))
        assert math.isnan(h.quantile(0.0))
        assert math.isnan(h.quantile(1.0))

    def test_single_sample_is_exact(self):
        h = FixedHistogram(DEFAULT_LATENCY_BOUNDS_MS)
        h.observe(3.7)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(3.7)

    def test_le_semantics_at_bucket_edges(self):
        # Values exactly on a bound land in that bound's bucket (le).
        h = FixedHistogram((1.0, 2.0, 4.0))
        h.observe(1.0)
        h.observe(2.0)
        h.observe(4.0)
        assert h.counts == [1, 1, 1, 0]

    def test_quantiles_exact_for_population_on_edges(self):
        h = FixedHistogram((1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(2.0)
        assert h.quantile(0.5) == pytest.approx(2.0)
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_quantile_clamps_to_observed_range(self):
        h = FixedHistogram((100.0,))
        h.observe(3.0)
        h.observe(5.0)
        assert 3.0 <= h.quantile(0.5) <= 5.0
        assert h.quantile(1.0) == pytest.approx(5.0)
        assert h.quantile(0.0) == pytest.approx(3.0)

    def test_overflow_bucket(self):
        h = FixedHistogram((1.0,))
        h.observe(99.0)
        assert h.counts == [0, 1]
        assert h.quantile(0.5) == pytest.approx(99.0)  # clamped to max

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            FixedHistogram(())
        with pytest.raises(ValueError):
            FixedHistogram((1.0, 1.0))
        with pytest.raises(ValueError):
            FixedHistogram((2.0, 1.0))
        with pytest.raises(ValueError):
            FixedHistogram((1.0, math.inf))

    def test_merge_is_order_independent(self):
        samples_a = [0.3, 1.0, 7.5, 120.0]
        samples_b = [2.0, 2.5, 900.0]
        samples_c = [0.1, 55.0]

        def hist(samples):
            h = FixedHistogram(DEFAULT_LATENCY_BOUNDS_MS)
            for v in samples:
                h.observe(v)
            return h

        ab_c = hist(samples_a)
        ab_c.merge(hist(samples_b))
        ab_c.merge(hist(samples_c))
        c_ba = hist(samples_c)
        c_ba.merge(hist(samples_b))
        c_ba.merge(hist(samples_a))
        direct = hist(samples_a + samples_b + samples_c)
        # Bucket counts, extrema and every quantile are exactly
        # order-independent; total/mean only up to float summation order.
        for merged in (ab_c, c_ba):
            assert merged.counts == direct.counts
            assert merged.count == direct.count
            assert merged.min == direct.min and merged.max == direct.max
            assert merged.total == pytest.approx(direct.total)
            for q in (0.5, 0.95, 0.99):
                assert merged.quantile(q) == direct.quantile(q)

    def test_merge_accepts_snapshot_dict(self):
        a = FixedHistogram((1.0, 10.0))
        a.observe(0.5)
        b = FixedHistogram((1.0, 10.0))
        b.observe(5.0)
        a.merge(b.as_dict())
        assert a.count == 2 and a.counts == [1, 1, 0]

    def test_merge_rejects_mismatched_bounds(self):
        a = FixedHistogram((1.0,))
        with pytest.raises(ValueError, match="bounds"):
            a.merge(FixedHistogram((2.0,)))

    def test_registry_merge_folds_worker_histograms_exactly(self):
        parent = MetricsRegistry()
        worker1 = MetricsRegistry()
        worker2 = MetricsRegistry()
        for v in (1.0, 30.0):
            worker1.observe("lat", v, bounds=DEFAULT_LATENCY_BOUNDS_MS)
        worker2.observe("lat", 600.0, bounds=DEFAULT_LATENCY_BOUNDS_MS)
        parent.merge(worker1.snapshot())
        parent.merge(worker2.snapshot())
        direct = MetricsRegistry()
        for v in (1.0, 30.0, 600.0):
            direct.observe("lat", v, bounds=DEFAULT_LATENCY_BOUNDS_MS)
        assert (
            parent.snapshot()["histograms"]["lat"]
            == direct.snapshot()["histograms"]["lat"]
        )


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def _parse_prometheus(text: str) -> dict[str, float]:
    """Minimal 0.0.4 parser: sample name+labels -> value, validating
    comment/TYPE structure along the way."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line:
            raise AssertionError("blank line in exposition")
        if line.startswith("#"):
            assert line.startswith("# TYPE "), line
            continue
        name_and_labels, _, value = line.rpartition(" ")
        assert name_and_labels, line
        samples[name_and_labels] = float(value)
    return samples


class TestPrometheus:
    def test_counter_timer_histogram_render(self):
        reg = MetricsRegistry()
        reg.inc("service.requests", 5)
        reg.add_timing("service.op.schedule", 0.25)
        for v in (0.4, 3.0, 9999.0):
            reg.observe("service.latency_ms", v, bounds=(1.0, 10.0))
        samples = _parse_prometheus(to_prometheus(reg.snapshot()))
        assert samples["repro_service_requests_total"] == 5.0
        assert samples["repro_service_op_schedule_seconds_count"] == 1.0
        assert samples["repro_service_op_schedule_seconds_sum"] == 0.25
        assert samples['repro_service_latency_ms_bucket{le="1"}'] == 1.0
        assert samples['repro_service_latency_ms_bucket{le="10"}'] == 2.0
        assert samples['repro_service_latency_ms_bucket{le="+Inf"}'] == 3.0
        assert samples["repro_service_latency_ms_count"] == 3.0

    def test_cumulative_buckets_are_monotone(self):
        reg = MetricsRegistry()
        for v in (0.5, 2.0, 20.0, 500.0):
            reg.observe("lat", v, bounds=DEFAULT_LATENCY_BOUNDS_MS)
        text = to_prometheus(reg.snapshot())
        cums = [
            float(line.rpartition(" ")[2])
            for line in text.splitlines()
            if "_bucket{" in line
        ]
        assert cums == sorted(cums)
        assert cums[-1] == 4.0

    def test_name_sanitization(self):
        reg = MetricsRegistry()
        reg.inc("weird.metric-name/x")
        text = to_prometheus(reg.snapshot())
        assert "repro_weird_metric_name_x_total 1" in text


# ----------------------------------------------------------------------
# acceptance: one trace id across client, server and workers
# ----------------------------------------------------------------------
class TestDistributedTrace:
    def test_one_trace_id_client_to_server_spans(self):
        tracer = Tracer(enabled=True)
        registry = MetricsRegistry()
        with use_registry(registry), use_tracer(tracer):
            with ServerThread(port=0, threads=2) as srv:
                with ServiceClient(srv.address) as client:
                    client.schedule(gaussian_elimination(5), "MCP")

        spans = {e["name"]: e for e in tracer.spans()}
        # The blocking client minted a root context; every hop of the
        # request joins its trace.
        client_span = spans["client.schedule"]
        trace_id = client_span["args"]["trace_id"]
        assert parse_traceparent(f"00-{trace_id}-{'1' * 16}-01") is not None
        for name in ("service.queue", "service.schedule", "kernels.compile"):
            assert name in spans, f"missing span {name}: {sorted(spans)}"
            assert spans[name]["args"]["trace_id"] == trace_id, name
        admits = [e for e in tracer.events if e["name"] == "service.admit"]
        assert admits and admits[0]["args"]["trace_id"] == trace_id
        # Server-side handling is a *child* span: same trace, new span id.
        assert (
            spans["service.schedule"]["args"]["span_id"]
            != client_span["args"]["span_id"]
        )

    def test_trace_ids_differ_between_requests(self):
        tracer = Tracer(enabled=True)
        registry = MetricsRegistry()
        with use_registry(registry), use_tracer(tracer):
            with ServerThread(port=0, threads=1) as srv:
                with ServiceClient(srv.address) as client:
                    client.classify(fork_join(3))
                    client.classify(fork_join(4))
        ids = {
            e["args"]["trace_id"]
            for e in tracer.spans("client.classify")
        }
        assert len(ids) == 2

    def test_untraced_requests_carry_no_traceparent(self):
        frames = []
        real_encode = ServiceClient.call  # sanity: capture via decode instead
        del real_encode
        tracer = Tracer(enabled=False)
        with use_tracer(tracer):
            frame = encode_request("health")
            assert b"traceparent" not in frame
            # and the client helper mints no context when tracing is off
            from repro.service.client import _request_context

            assert _request_context() is None
            frames.append(frame)

    def test_campaign_trace_id_reaches_suite_worker_spans(self):
        cells = [SuiteCell(0, 2, (20, 100))]
        suite = list(
            generate_suite(graphs_per_cell=4, cells=cells, n_tasks_range=(10, 16))
        )
        tracer = Tracer(enabled=True)
        registry = MetricsRegistry()
        ctx = new_context()
        with use_registry(registry), use_tracer(tracer), use_context(ctx):
            run_suite_parallel(suite, jobs=2, chunk_size=2)
        worker_spans = [
            e for e in tracer.spans() if e["name"].startswith("graph.")
        ]
        assert worker_spans, "no worker graph spans were folded into the parent"
        assert all(e["pid"] != 0 for e in worker_spans)
        assert {e["args"]["trace_id"] for e in worker_spans} == {ctx.trace_id}
        sched_spans = [
            e for e in tracer.spans() if e["name"].startswith("schedule.")
        ]
        assert sched_spans
        assert {e["args"]["trace_id"] for e in sched_spans} == {ctx.trace_id}

    def test_compile_span_joins_active_trace(self):
        tracer = Tracer(enabled=True)
        ctx = new_context()
        with use_tracer(tracer), use_context(ctx):
            graph_index(fork_join(5))
        compile_spans = tracer.spans("kernels.compile")
        assert compile_spans
        assert compile_spans[0]["args"]["trace_id"] == ctx.trace_id


# ----------------------------------------------------------------------
# metrics verb + top dashboard
# ----------------------------------------------------------------------
class TestMetricsVerbAndTop:
    def test_metrics_verb_returns_parsable_prometheus(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            with ServerThread(port=0) as srv:
                with ServiceClient(srv.address) as client:
                    client.classify(fork_join(3))
                    payload = client.metrics()
        assert payload["content_type"].startswith("text/plain; version=0.0.4")
        samples = _parse_prometheus(payload["text"])
        assert samples["repro_service_requests_total"] >= 1.0
        assert any("latency_ms_bucket" in k for k in samples)

    def test_render_is_pure_and_complete(self):
        stats = {
            "uptime_s": 12.0,
            "draining": False,
            "queue_depth": 3,
            "queue_capacity": 128,
            "inflight_groups": 1,
            "index_cache": {"size": 2, "capacity": 64},
            "counters": {
                "service.requests": 120.0,
                "service.errors": 6.0,
                "service.shed": 2.0,
                "service.deadline_misses": 1.0,
                "service.index_cache.hits": 90.0,
                "service.index_cache.misses": 10.0,
                "service.batch.groups": 10.0,
                "service.batch.grouped_requests": 35.0,
            },
            "latency_ms": {"p50": 1.5, "p95": 9.0, "p99": 30.0, "count": 120},
        }
        prev = {"counters": {"service.requests": 100.0, "service.errors": 6.0}}
        frame = render(stats, prev, interval=2.0)
        assert "10.0/s" in frame  # (120-100)/2
        assert "p50     1.50" in frame
        assert "3/128" in frame
        assert "shed 2" in frame and "deadline 1" in frame
        assert "90.0% hit" in frame
        assert "3.50 req/group" in frame

    def test_render_without_prev_shows_na_rates(self):
        frame = render({"counters": {}, "queue_capacity": 8})
        assert "n/a" in frame


# ----------------------------------------------------------------------
# profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_collapsed_stacks_capture_busy_function(self, tmp_path):
        def _spin_with_a_recognizable_name(deadline: float) -> None:
            while time.perf_counter() < deadline:
                sum(range(200))

        profiler = SamplingProfiler(interval_s=0.001)
        with profiler:
            _spin_with_a_recognizable_name(time.perf_counter() + 0.25)
        assert profiler.n_samples > 0
        out = profiler.write(tmp_path / "run.profile.txt")
        text = out.read_text()
        assert text.startswith("# repro sampling profile:")
        assert "_spin_with_a_recognizable_name" in text
        # collapsed format: every non-comment line is "stack count"
        for line in text.splitlines()[1:]:
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0

    def test_profile_path_pairs_with_artifact(self):
        assert str(profile_path_for("out/res.json")).endswith("out/res.profile.txt")


# ----------------------------------------------------------------------
# perf-trajectory ledger
# ----------------------------------------------------------------------
class TestBenchTrack:
    def _seed_tree(self, root, *, speedup: float) -> None:
        out = root / "benchmarks" / "out"
        out.mkdir(parents=True)
        (out / "BENCH_kernels.json").write_text(
            json.dumps(
                {
                    "levels": {"speedup": speedup},
                    "simulator": {"speedup": 3.5},
                    "end_to_end": {"speedup": 2.2},
                }
            )
        )

    def test_record_then_check_passes(self, tmp_path, capsys):
        self._seed_tree(tmp_path, speedup=4.5)
        assert benchtrack.run_track(root=tmp_path, label="seed") == 0
        assert benchtrack.run_track(root=tmp_path, check=True) == 0
        out = capsys.readouterr().out
        assert "no tracked metric regressed" in out

    def test_check_fails_on_synthetic_regression(self, tmp_path, capsys):
        self._seed_tree(tmp_path, speedup=4.5)
        assert benchtrack.run_track(root=tmp_path, label="seed") == 0
        # regress levels speedup far beyond the 35% band
        self._seed_tree_update(tmp_path, speedup=1.0)
        assert benchtrack.run_track(root=tmp_path, check=True) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "kernels:levels/speedup" in out

    def _seed_tree_update(self, root, *, speedup: float) -> None:
        path = root / "benchmarks" / "out" / "BENCH_kernels.json"
        payload = json.loads(path.read_text())
        payload["levels"]["speedup"] = speedup
        path.write_text(json.dumps(payload))

    def test_check_without_history_is_clean(self, tmp_path):
        self._seed_tree(tmp_path, speedup=4.0)
        assert benchtrack.run_track(root=tmp_path, check=True) == 0

    def test_improvement_is_not_a_regression(self, tmp_path):
        self._seed_tree(tmp_path, speedup=4.0)
        assert benchtrack.run_track(root=tmp_path) == 0
        self._seed_tree_update(tmp_path, speedup=9.0)
        assert benchtrack.run_track(root=tmp_path, check=True) == 0

    def test_history_tolerates_truncated_tail(self, tmp_path):
        self._seed_tree(tmp_path, speedup=4.0)
        assert benchtrack.run_track(root=tmp_path) == 0
        history = tmp_path / benchtrack.HISTORY_NAME
        history.write_text(history.read_text() + '{"label": "cut')
        assert benchtrack.run_track(root=tmp_path, check=True) == 0

    def test_committed_ledger_matches_committed_baselines(self):
        # The repo ships baselines and a seeded ledger; they must agree.
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        if not (repo / benchtrack.HISTORY_NAME).is_file():
            pytest.skip("ledger not seeded in this tree")
        current, _ = benchtrack.collect_metrics([repo])
        history = benchtrack.load_history(repo / benchtrack.HISTORY_NAME)
        assert history, "BENCH_history.jsonl exists but holds no entries"
        deltas = benchtrack.compare(current, history[-1]["metrics"])
        assert not any(d.regressed for d in deltas)
