"""Unit and property tests for clan (modular) decomposition."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import DecompositionError, TaskGraph
from repro.clans import ClanKind, decompose, is_clan
from repro.clans.parse_tree import ClanNode

from conftest import task_graphs


def build(n, edges):
    g = TaskGraph()
    for i in range(n):
        g.add_task(i, 1)
    for u, v in edges:
        g.add_edge(u, v, 1)
    return g


class TestBaseCases:
    def test_empty_rejected(self):
        with pytest.raises(DecompositionError):
            decompose(TaskGraph())

    def test_single_is_leaf(self, single):
        tree = decompose(single)
        assert tree.is_leaf
        assert tree.task == "only"
        assert tree.members == frozenset(["only"])

    def test_two_comparable_linear(self):
        tree = decompose(build(2, [(0, 1)]))
        assert tree.kind is ClanKind.LINEAR
        assert [c.task for c in tree.children] == [0, 1]

    def test_two_incomparable_independent(self):
        tree = decompose(build(2, []))
        assert tree.kind is ClanKind.INDEPENDENT
        assert len(tree.children) == 2


class TestPaperExample:
    def test_structure(self, paper_example):
        """Appendix A.5: C1={3,4} linear, C2={2,{3,4}} independent,
        C3={1, C2, 5} linear."""
        tree = decompose(paper_example)
        assert tree.kind is ClanKind.LINEAR
        assert [c.members for c in tree.children] == [
            frozenset([1]),
            frozenset([2, 3, 4]),
            frozenset([5]),
        ]
        c2 = tree.children[1]
        assert c2.kind is ClanKind.INDEPENDENT
        sub = {c.members for c in c2.children}
        assert frozenset([2]) in sub
        assert frozenset([3, 4]) in sub
        c1 = next(c for c in c2.children if c.members == frozenset([3, 4]))
        assert c1.kind is ClanKind.LINEAR

    def test_every_internal_node_is_a_clan(self, paper_example):
        tree = decompose(paper_example)
        for node in tree.walk():
            assert is_clan(paper_example, node.members)


class TestPrimitive:
    def test_n_poset_is_primitive(self):
        # a->c, b->c, b->d : the "N", the smallest primitive poset
        g = build(4, [(0, 2), (1, 2), (1, 3)])
        tree = decompose(g)
        assert tree.kind is ClanKind.PRIMITIVE
        assert all(c.is_leaf for c in tree.children)
        assert len(tree.children) == 4

    def test_primitive_with_composite_child(self):
        # replace node 0 of the N with a 2-chain module {0, 4}
        g = build(5, [(0, 4), (4, 2), (1, 2), (1, 3)])
        tree = decompose(g)
        assert tree.kind is ClanKind.PRIMITIVE
        sizes = sorted(c.size for c in tree.children)
        assert sizes == [1, 1, 1, 2]
        big = next(c for c in tree.children if c.size == 2)
        assert big.members == frozenset([0, 4])
        assert big.kind is ClanKind.LINEAR

    def test_primitive_children_in_topological_order(self):
        g = build(4, [(0, 2), (1, 2), (1, 3)])
        tree = decompose(g)
        # no child may have an edge into an *earlier* sibling
        seen: set[int] = set()
        for child in tree.children:
            for u, v in g.edges():
                if u in child.members and v in seen:
                    pytest.fail("edge points into an earlier sibling")
            seen |= child.members


class TestStructureInvariants:
    def test_linear_children_ordered(self, chain5):
        tree = decompose(chain5)
        assert tree.kind is ClanKind.LINEAR
        assert [c.task for c in tree.children] == [0, 1, 2, 3, 4]

    def test_no_linear_linear_nesting(self, paper_example, chain5, diamond):
        for g in (paper_example, chain5, diamond):
            tree = decompose(g)
            for node in tree.walk():
                for child in node.children:
                    if node.kind is not ClanKind.PRIMITIVE:
                        assert child.kind is not node.kind

    def test_members_partition(self, paper_example):
        tree = decompose(paper_example)
        for node in tree.walk():
            if node.is_leaf:
                continue
            union = frozenset().union(*(c.members for c in node.children))
            assert union == node.members
            total = sum(c.size for c in node.children)
            assert total == node.size

    def test_deterministic(self, paper_example):
        t1 = decompose(paper_example)
        t2 = decompose(paper_example)
        assert t1.to_text() == t2.to_text()


class TestIsClan:
    def test_whole_graph_and_singletons(self, paper_example):
        assert is_clan(paper_example, set(paper_example.tasks()))
        for t in paper_example.tasks():
            assert is_clan(paper_example, {t})

    def test_non_clan(self, paper_example):
        # {1, 2}: node 5 is a descendant of 2 but also of 1 ... check a real
        # violation: {2, 3} — node 4 is a descendant of 3 but not of 2.
        assert not is_clan(paper_example, {2, 3})

    def test_bad_candidate(self, paper_example):
        with pytest.raises(DecompositionError):
            is_clan(paper_example, set())
        with pytest.raises(DecompositionError):
            is_clan(paper_example, {999})


class TestClanNodeHelpers:
    def test_leaves_and_walk(self, paper_example):
        tree = decompose(paper_example)
        leaves = list(tree.leaves())
        assert sorted(l.task for l in leaves) == [1, 2, 3, 4, 5]
        assert len(list(tree.walk())) >= len(leaves)

    def test_depth_and_count(self, paper_example):
        tree = decompose(paper_example)
        assert tree.depth() == 3
        assert tree.count(ClanKind.LEAF) == 5
        assert tree.count(ClanKind.LINEAR) == 2
        assert tree.count(ClanKind.INDEPENDENT) == 1

    def test_to_text_and_repr(self, paper_example):
        tree = decompose(paper_example)
        txt = tree.to_text()
        assert "LINEAR" in txt and "INDEPENDENT" in txt and "leaf" in txt
        assert "linear" in repr(tree)
        leaf = next(iter(tree.leaves()))
        assert "leaf" in repr(leaf)


class TestDecompositionProperties:
    @given(task_graphs(min_tasks=1, max_tasks=14))
    @settings(max_examples=120, deadline=None)
    def test_tree_is_valid_modular_decomposition(self, g):
        tree = decompose(g)
        # leaves == tasks
        assert sorted(map(repr, (l.task for l in tree.leaves()))) == sorted(
            map(repr, g.tasks())
        )
        for node in tree.walk():
            # every node of the parse tree is a clan of the graph
            assert is_clan(g, node.members)
            if node.is_leaf:
                assert node.size == 1
                continue
            assert len(node.children) >= 2
            union = set()
            for c in node.children:
                assert not (union & c.members)
                union |= c.members
            assert union == node.members
            if node.kind is ClanKind.PRIMITIVE:
                assert len(node.children) >= 3

    @given(task_graphs(min_tasks=2, max_tasks=12))
    @settings(max_examples=80, deadline=None)
    def test_maximality_of_children(self, g):
        """Children of the root are *maximal* proper clans: merging two
        children of a primitive root never yields a clan."""
        tree = decompose(g)
        if tree.kind is not ClanKind.PRIMITIVE:
            return
        kids = tree.children
        for i in range(len(kids)):
            for j in range(i + 1, min(i + 3, len(kids))):
                merged = kids[i].members | kids[j].members
                assert not is_clan(g, merged)
