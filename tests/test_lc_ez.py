"""Tests for the extension clustering heuristics LC and EZ."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import EZScheduler, LCScheduler, TaskGraph

from conftest import task_graphs


class TestLC:
    def test_chain_is_one_cluster(self, chain5):
        s = LCScheduler().schedule(chain5)
        assert s.n_processors == 1
        assert s.makespan == chain5.serial_time()

    def test_clusters_are_paths(self, paper_example):
        s = LCScheduler().schedule(paper_example)
        s.validate(paper_example)
        for cluster in s.clusters():
            for u, v in zip(cluster, cluster[1:]):
                # consecutive tasks in an LC cluster lie on one path
                assert v in paper_example.descendants(u)

    def test_diamond_two_clusters(self, diamond):
        # CP = a-b-d (or a-c-d); the remaining node forms its own cluster
        s = LCScheduler().schedule(diamond)
        assert s.n_processors == 2

    def test_independent_tasks_one_each(self):
        g = TaskGraph()
        for i in range(3):
            g.add_task(i, 5)
        s = LCScheduler().schedule(g)
        assert s.n_processors == 3
        assert s.makespan == 5.0

    @given(g=task_graphs(min_tasks=1, max_tasks=12))
    @settings(max_examples=40, deadline=None)
    def test_always_valid(self, g):
        LCScheduler().schedule(g).validate(g)


class TestEZ:
    def test_zeroes_heaviest_edge_first(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 10)
        g.add_edge("a", "b", 1000)
        s = EZScheduler().schedule(g)
        assert s.processor_of("a") == s.processor_of("b")
        assert s.makespan == 20.0

    def test_keeps_parallel_when_merge_hurts(self):
        g = TaskGraph()
        g.add_task("a", 100)
        g.add_task("b", 100)
        s = EZScheduler().schedule(g)
        assert s.n_processors == 2

    def test_never_worse_than_fully_parallel_start(self, paper_example):
        """EZ only accepts merges that do not increase the simulated
        makespan, so it cannot end worse than the all-singletons clustering."""
        from repro.core.simulator import simulate_clustering

        singleton = simulate_clustering(
            paper_example, {t: i for i, t in enumerate(paper_example.tasks())}
        )
        s = EZScheduler().schedule(paper_example)
        assert s.makespan <= singleton.makespan + 1e-9

    def test_monotone_improvement_on_zoo(self, diamond, chain5, wide_fork, two_sources_join):
        from repro.core.simulator import simulate_clustering

        for g in (diamond, chain5, wide_fork, two_sources_join):
            base = simulate_clustering(g, {t: i for i, t in enumerate(g.tasks())})
            s = EZScheduler().schedule(g)
            s.validate(g)
            assert s.makespan <= base.makespan + 1e-9

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=30, deadline=None)
    def test_always_valid(self, g):
        EZScheduler().schedule(g).validate(g)
