"""Seeded equivalence sweep: indexed kernels vs the dict implementations.

The kernels (``repro.core.kernels``) promise *bit-identical* results to the
dict-based reference paths — same floats, same tie-breaks, same dict
ordering.  These tests sweep seeded random PDGs across the paper's testbed
axes (granularity band, anchor, weight range) plus degenerate shapes
(single node, chain, fork-join, zero-cost edges) and assert exact equality
between the two backends at every layer: levels, critical path, the
simulator, the rewritten schedulers, and the clan decomposition.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TaskGraph
from repro.clans.decomposition import decompose
from repro.core.analysis import (
    alap_times,
    b_levels,
    critical_path,
    hu_levels,
    t_levels,
)
from repro.core.exceptions import ScheduleError
from repro.core.kernels import (
    GraphIndex,
    b_levels_arr,
    graph_index,
    kernels_enabled,
    t_levels_arr,
    use_kernels,
)
from repro.core.simulator import simulate_clustering, simulate_ordered
from repro.generation.random_dag import generate_pdg
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.schedulers import get_scheduler

SEED = 19940815
REWRITTEN = ["DSC", "MCP", "MH", "HU", "ETF", "HLFET", "CLANS"]


# ----------------------------------------------------------------------
# graph corpus: seeded testbed sweep + edge-case shapes
# ----------------------------------------------------------------------
def _testbed_graphs() -> list[tuple[str, TaskGraph]]:
    graphs = []
    for band in range(5):
        for anchor in (2, 5):
            for wr in [(1, 10), (3, 200)]:
                rng = np.random.default_rng(SEED + band * 100 + anchor * 10 + wr[1])
                g = generate_pdg(
                    rng, n_tasks=40, band=band, anchor=anchor, weight_range=wr
                )
                graphs.append((f"band{band}-a{anchor}-w{wr[1]}", g))
    return graphs


def _edge_case_graphs() -> list[tuple[str, TaskGraph]]:
    single = TaskGraph()
    single.add_task("only", 7)

    chain = TaskGraph()
    for i in range(6):
        chain.add_task(i, 5 + i)
        if i:
            chain.add_edge(i - 1, i, 2)

    fork_join = TaskGraph()
    fork_join.add_task("src", 4)
    fork_join.add_task("sink", 4)
    for i in range(5):
        fork_join.add_task(i, 10)
        fork_join.add_edge("src", i, 3)
        fork_join.add_edge(i, "sink", 3)

    zero_comm = TaskGraph()
    for t in "abcd":
        zero_comm.add_task(t, 10)
    zero_comm.add_edge("a", "b", 0)
    zero_comm.add_edge("a", "c", 5)
    zero_comm.add_edge("b", "d", 0)
    zero_comm.add_edge("c", "d", 0)

    return [
        ("single", single),
        ("chain", chain),
        ("fork-join", fork_join),
        ("zero-cost-edges", zero_comm),
    ]


CORPUS = _testbed_graphs() + _edge_case_graphs()
IDS = [name for name, _ in CORPUS]
GRAPHS = [g for _, g in CORPUS]


# ----------------------------------------------------------------------
# GraphIndex structure
# ----------------------------------------------------------------------
class TestGraphIndex:
    def test_index_mirrors_graph(self):
        g = GRAPHS[0]
        gi = GraphIndex(g)
        assert gi.n == g.n_tasks
        assert gi.tasks == list(g.tasks())
        assert gi.m == sum(len(g.out_edges(t)) for t in g.tasks())
        for t in g.tasks():
            i = gi.index_of[t]
            assert gi.weights[i] == g.weight(t)
            succ = {gi.tasks[j]: w for j, w in gi.succ_rows[i]}
            assert succ == dict(g.out_edges(t))
            pred = {gi.tasks[j]: w for j, w in gi.pred_rows[i]}
            assert pred == dict(g.in_edges(t))

    def test_index_cached_by_mutation_version(self):
        g = GRAPHS[0].copy()
        gi1 = graph_index(g)
        assert graph_index(g) is gi1
        g.add_task("fresh", 1.0)
        gi2 = graph_index(g)
        assert gi2 is not gi1
        assert gi2.n == gi1.n + 1

    def test_use_kernels_toggle_nests_and_restores(self):
        initial = kernels_enabled()  # REPRO_KERNELS may override the default
        with use_kernels(True):
            assert kernels_enabled()
            with use_kernels(False):
                assert not kernels_enabled()
                with use_kernels(True):
                    assert kernels_enabled()
                assert not kernels_enabled()
            assert kernels_enabled()
        assert kernels_enabled() == initial


# ----------------------------------------------------------------------
# levels / critical path
# ----------------------------------------------------------------------
class TestLevelEquivalence:
    @pytest.mark.parametrize("g", GRAPHS, ids=IDS)
    @pytest.mark.parametrize("comm", [True, False])
    def test_levels_exactly_equal(self, g, comm):
        # memoized per graph, so compute each backend on its own copy
        with use_kernels(False):
            ref = g.copy()
            tl_d = t_levels(ref, communication=comm)
            bl_d = b_levels(ref, communication=comm)
            alap_d = alap_times(ref, communication=comm)
        with use_kernels(True):
            ker = g.copy()
            tl_k = t_levels(ker, communication=comm)
            bl_k = b_levels(ker, communication=comm)
            alap_k = alap_times(ker, communication=comm)
        # == on dicts ignores order; the kernels promise bit-equal floats
        # AND identical insertion order (callers iterate these dicts).
        assert tl_d == tl_k and list(tl_d) == list(tl_k)
        assert bl_d == bl_k and list(bl_d) == list(bl_k)
        assert alap_d == alap_k and list(alap_d) == list(alap_k)

    @pytest.mark.parametrize("g", GRAPHS, ids=IDS)
    def test_hu_levels_and_critical_path(self, g):
        with use_kernels(False):
            ref = g.copy()
            hu_d = hu_levels(ref)
            cp_d = critical_path(ref, communication=True)
            cpn_d = critical_path(ref, communication=False)
        with use_kernels(True):
            ker = g.copy()
            hu_k = hu_levels(ker)
            cp_k = critical_path(ker, communication=True)
            cpn_k = critical_path(ker, communication=False)
        assert hu_d == hu_k and list(hu_d) == list(hu_k)
        assert cp_d == cp_k
        assert cpn_d == cpn_k

    def test_arr_matches_dict_values(self):
        g = GRAPHS[0]
        gi = graph_index(g)
        tl = t_levels_arr(g, communication=True)
        bl = b_levels_arr(g, communication=True)
        with use_kernels(False):
            tl_d = t_levels(g.copy(), communication=True)
            bl_d = b_levels(g.copy(), communication=True)
        for t in g.tasks():
            i = gi.index_of[t]
            assert tl[i] == tl_d[t]
            assert bl[i] == bl_d[t]


# ----------------------------------------------------------------------
# simulator
# ----------------------------------------------------------------------
def _chain_split_clusters(g: TaskGraph, k: int = 4) -> list[list]:
    order = list(g.topological_order())
    return [order[i::k] for i in range(k) if order[i::k]]


class TestSimulatorEquivalence:
    @pytest.mark.parametrize("g", GRAPHS, ids=IDS)
    def test_simulate_ordered_identical(self, g):
        clusters = _chain_split_clusters(g)
        with use_kernels(False):
            ref = simulate_ordered(g.copy(), clusters)
        with use_kernels(True):
            ker = simulate_ordered(g.copy(), clusters)
        assert ref.to_dict() == ker.to_dict()

    @pytest.mark.parametrize("g", GRAPHS, ids=IDS)
    def test_simulate_clustering_identical(self, g):
        assignment = {t: i % 3 for i, t in enumerate(g.tasks())}
        with use_kernels(False):
            ref = simulate_clustering(g.copy(), assignment)
        with use_kernels(True):
            ker = simulate_clustering(g.copy(), assignment)
        assert ref.to_dict() == ker.to_dict()

    @pytest.mark.parametrize("flag", [True, False])
    def test_validation_hoisted_behind_flag(self, flag):
        g = GRAPHS[0]
        tasks = list(g.tasks())
        duplicated = [tasks, [tasks[0]]]
        with use_kernels(flag):
            with pytest.raises(ScheduleError, match="more than one cluster"):
                simulate_ordered(g, duplicated)
            with pytest.raises(ScheduleError, match="not clustered"):
                simulate_ordered(g, [tasks[:-1]])

    @pytest.mark.parametrize("flag", [True, False])
    def test_deadlocking_order_raises_in_both_modes(self, flag):
        g = TaskGraph()
        for t in "ab":
            g.add_task(t, 1)
        g.add_edge("a", "b", 1)
        with use_kernels(flag):
            with pytest.raises(ScheduleError, match="deadlock"):
                simulate_ordered(g, [["b", "a"]])


# ----------------------------------------------------------------------
# schedulers
# ----------------------------------------------------------------------
class TestSchedulerEquivalence:
    @pytest.mark.parametrize("name", REWRITTEN)
    @pytest.mark.parametrize("g", GRAPHS, ids=IDS)
    def test_schedules_placement_identical(self, name, g):
        with use_kernels(False):
            ref = get_scheduler(name).schedule(g).to_dict()
        with use_kernels(True):
            ker = get_scheduler(name).schedule(g).to_dict()
        assert ref == ker


# ----------------------------------------------------------------------
# clan decomposition (bitset backend vs numpy backend)
# ----------------------------------------------------------------------
def _tree_shape(node):
    if node.is_leaf:
        return ("leaf", node.task)
    return (node.kind.name, [_tree_shape(c) for c in node.children])


class TestDecompositionEquivalence:
    @pytest.mark.parametrize("g", GRAPHS, ids=IDS)
    def test_trees_identical(self, g):
        with use_kernels(False):
            ref = _tree_shape(decompose(g))
        with use_kernels(True):
            ker = _tree_shape(decompose(g))
        assert ref == ker


# ----------------------------------------------------------------------
# observability wiring
# ----------------------------------------------------------------------
class TestKernelObservability:
    def test_compile_timer_and_cache_counters(self):
        g = GRAPHS[0].copy()
        sandbox = MetricsRegistry()
        with use_registry(sandbox):
            graph_index(g)
            graph_index(g)
            graph_index(g)
        counters = sandbox.counters()
        assert counters.get("kernels.cache.misses") == 1
        assert counters.get("kernels.cache.hits") == 2
        stats = sandbox.timer_stats("kernels.compile")
        assert stats.count == 1


# ----------------------------------------------------------------------
# concurrent access (the daemon compiles indexes from executor threads)
# ----------------------------------------------------------------------
class TestConcurrentIndexAccess:
    def test_one_compile_per_graph_version_under_contention(self):
        import threading

        from repro.core.kernels import discard_index

        g = GRAPHS[0].copy()
        sandbox = MetricsRegistry()
        results: list[GraphIndex] = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()  # maximize overlap on the memoization miss path
            results.append(graph_index(g))

        with use_registry(sandbox):
            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        counters = sandbox.counters()
        assert counters.get("kernels.cache.misses") == 1
        assert counters.get("kernels.cache.hits") == 7
        assert sandbox.timer_stats("kernels.compile").count == 1
        # no torn reads: every thread saw the one compiled index
        assert len(results) == 8
        assert all(idx is results[0] for idx in results)
        discard_index(g)

    def test_mutation_then_concurrent_reads_stay_consistent(self):
        import threading

        g = GRAPHS[0].copy()
        first = graph_index(g)
        g.add_task("extra", 1.0)  # bumps the version, invalidating the memo
        seen: list[GraphIndex] = []
        barrier = threading.Barrier(6)

        def worker():
            barrier.wait()
            idx = graph_index(g)
            assert idx.n == g.n_tasks  # never the stale pre-mutation index
            seen.append(idx)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == 6
        assert all(idx is seen[0] for idx in seen)
        assert seen[0] is not first

    def test_discard_index_forces_recompile(self):
        from repro.core.kernels import discard_index

        g = GRAPHS[0].copy()
        sandbox = MetricsRegistry()
        with use_registry(sandbox):
            a = graph_index(g)
            discard_index(g)
            b = graph_index(g)
        assert a is not b
        assert sandbox.counters().get("kernels.cache.misses") == 2
