"""Tests for the visualization exporters."""

from __future__ import annotations

import json

from repro import Schedule, get_scheduler
from repro.clans import decompose
from repro.viz import clan_tree_to_dot, schedule_to_svg, schedule_to_trace


class TestSvg:
    def test_well_formed(self, paper_example):
        s = get_scheduler("CLANS").schedule(paper_example)
        svg = schedule_to_svg(s)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<rect") >= paper_example.n_tasks
        assert "P0" in svg and "P1" in svg

    def test_empty(self):
        svg = schedule_to_svg(Schedule())
        assert svg.startswith("<svg")

    def test_task_labels_escaped(self):
        s = Schedule()
        s.place("<evil>", 0, 0.0, 100.0)
        svg = schedule_to_svg(s)
        assert "<evil>" not in svg
        assert "&lt;evil&gt;" in svg


class TestTrace:
    def test_trace_events(self, paper_example):
        s = get_scheduler("DSC").schedule(paper_example)
        data = json.loads(schedule_to_trace(s))
        events = data["traceEvents"]
        assert len(events) == paper_example.n_tasks
        for ev in events:
            assert ev["ph"] == "X"
            assert ev["dur"] >= 0
        tids = {ev["tid"] for ev in events}
        assert tids == set(s.processors)

    def test_durations_scaled(self, single):
        s = get_scheduler("SERIAL").schedule(single)
        data = json.loads(schedule_to_trace(s))
        assert data["traceEvents"][0]["dur"] == 7000.0


class TestClanDot:
    def test_contains_all_kinds(self, paper_example):
        dot = clan_tree_to_dot(decompose(paper_example))
        assert dot.startswith("digraph")
        assert "LINEAR" in dot
        assert "INDEPENDENT" in dot
        assert dot.count("->") == 7  # children: 3 (root) + 2 (C2) + 2 (C1)

    def test_leaf_labels(self, single):
        dot = clan_tree_to_dot(decompose(single))
        assert "'only'" in dot or "only" in dot
