"""Tests for table/figure regeneration from synthetic results."""

from __future__ import annotations

import pytest

from repro.experiments.figures import ALL_FIGURES, figure1, figure2
from repro.experiments.measures import GraphResult, HeuristicResult
from repro.experiments.reporting import ResultTable, ascii_chart
from repro.experiments.tables import (
    ALL_TABLES,
    table1,
    table2,
    table3,
    table4,
    table6,
    table10,
)

NAMES = ("CLANS", "DSC", "MCP", "MH", "HU")


def synth_results():
    """Two graphs in each of two bands/anchors/ranges with fixed times."""
    out = []
    base = {"CLANS": 100.0, "DSC": 110.0, "MCP": 120.0, "MH": 130.0, "HU": 400.0}
    for i, (band, anchor, wr) in enumerate(
        [(0, 2, (20, 100)), (0, 2, (20, 100)), (4, 5, (20, 400)), (4, 5, (20, 400))]
    ):
        # band-0 graphs: serial 200, so HU (400) retards; band-4 graphs:
        # serial 800, nothing retards.
        out.append(
            GraphResult(
                graph_id=f"g{i}",
                band=band,
                anchor=anchor,
                weight_range=wr,
                granularity=0.05 if band == 0 else 3.0,
                serial_time=200.0 if band == 0 else 800.0,
                results={
                    n: HeuristicResult(parallel_time=t, n_processors=2)
                    for n, t in base.items()
                },
            )
        )
    return out


class TestResultTable:
    def test_add_and_lookup(self):
        t = ResultTable("T", "Row", ["A", "B"])
        t.add_row("r1", [1.0, 2.0])
        assert t.value("r1", "B") == 2.0
        assert t.column("A") == [1.0]

    def test_row_length_checked(self):
        t = ResultTable("T", "Row", ["A", "B"])
        with pytest.raises(ValueError):
            t.add_row("r1", [1.0])

    def test_missing_row(self):
        t = ResultTable("T", "Row", ["A"])
        with pytest.raises(KeyError):
            t.value("nope", "A")

    def test_text_contains_everything(self):
        t = ResultTable("My Title", "Class", ["A"])
        t.add_row("row-x", [3.25])
        txt = t.to_text()
        assert "My Title" in txt
        assert "row-x" in txt
        assert "3.25" in txt

    def test_csv(self):
        t = ResultTable("T", "Class", ["A", "B"])
        t.add_row("r", [1.5, 2.0])
        csv = t.to_csv()
        assert csv.splitlines()[0] == "Class,A,B"
        assert "r,1.5,2.0" in csv


class TestTables:
    def test_table2_counts_retardations(self):
        t = table2(synth_results())
        # HU at 400 > serial 200 retards both band-0 graphs
        assert t.value("G < 0.08", "HU") == 2.0
        assert t.value("G < 0.08", "CLANS") == 0.0

    def test_table3_nrpt(self):
        t = table3(synth_results())
        assert t.value("G < 0.08", "CLANS") == pytest.approx(0.0)
        assert t.value("G < 0.08", "HU") == pytest.approx(3.0)

    def test_table4_speedup(self):
        t = table4(synth_results())
        assert t.value("2 < G", "CLANS") == pytest.approx(8.0)  # 800 / 100
        assert t.value("G < 0.08", "CLANS") == pytest.approx(2.0)

    def test_table6_weight_ranges(self):
        t = table6(synth_results())
        assert t.value("20 - 100", "HU") == 2.0
        assert t.value("20 - 400", "HU") == 0.0  # band-4 rows don't retard

    def test_table10_anchor_rows(self):
        t = table10(synth_results())
        assert t.value("A = 2", "HU") == 2.0
        assert t.value("A = 5", "HU") == 0.0

    def test_table1_counts(self):
        t = table1(synth_results())
        assert t.value("G < 0.08", "ANCHOR 2") == 2.0
        assert t.value("2 < G", "ANCHOR 5") == 2.0
        assert t.value("0.8 < G < 2", "ANCHOR 2") == 0.0

    def test_column_order_is_paper_order(self):
        t = table2(synth_results())
        assert list(t.col_labels) == list(NAMES)

    def test_all_tables_render(self):
        results = synth_results()
        for tid, fn in ALL_TABLES.items():
            txt = fn(results).to_text()
            assert f"Table {tid}" in txt

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            table2([])


class TestFigures:
    def test_figure_series_match_tables(self):
        results = synth_results()
        fig = figure1(results)
        t = table3(results)
        for name in NAMES:
            assert fig.series[name] == t.column(name)

    def test_figure_text_and_csv(self):
        fig = figure2(synth_results())
        txt = fig.to_text()
        assert "Figure 2" in txt
        csv = fig.to_csv()
        assert csv.splitlines()[0].startswith("granularity,")

    def test_all_figures_render(self):
        results = synth_results()
        for fid, fn in ALL_FIGURES.items():
            assert f"Figure {fid}" in fn(results).to_text()


class TestAsciiChart:
    def test_symbols_present(self):
        txt = ascii_chart("T", ["x1", "x2"], {"AA": [0.0, 1.0], "BB": [1.0, 0.0]})
        assert "A=AA" in txt and "B=BB" in txt
        assert "x1" in txt

    def test_flat_series(self):
        txt = ascii_chart("T", ["x"], {"A": [5.0]})
        assert "T" in txt

    def test_empty(self):
        assert ascii_chart("T", [], {}) == "T"


class TestProcessorsTable:
    def test_values(self):
        from repro.experiments.tables import table_processors

        t = table_processors(synth_results())
        # every synthetic result uses 2 processors
        assert t.value("G < 0.08", "CLANS") == pytest.approx(2.0)
        assert t.value("2 < G", "HU") == pytest.approx(2.0)
