"""Unit tests for the shared ProcessorPool."""

from __future__ import annotations

import pytest

from repro import TaskGraph
from repro.schedulers._pool import ProcessorPool


@pytest.fixture
def graph():
    g = TaskGraph()
    g.add_task("a", 10)
    g.add_task("b", 20)
    g.add_task("c", 5)
    g.add_edge("a", "b", 7)
    g.add_edge("a", "c", 3)
    return g


class TestBookkeeping:
    def test_initially_empty(self, graph):
        pool = ProcessorPool(graph)
        assert pool.n_processors == 0
        assert pool.avail(0) == 0.0
        assert pool.can_grow

    def test_place_grows_pool(self, graph):
        pool = ProcessorPool(graph)
        pool.place("a", 0, 0.0)
        assert pool.n_processors == 1
        assert pool.avail(0) == 10.0
        assert pool.proc_of["a"] == 0

    def test_non_contiguous_rejected(self, graph):
        pool = ProcessorPool(graph)
        with pytest.raises(ValueError):
            pool.place("a", 3, 0.0)

    def test_bad_cap(self, graph):
        with pytest.raises(ValueError):
            ProcessorPool(graph, max_processors=0)


class TestReadyTimes:
    def test_same_processor_no_comm(self, graph):
        pool = ProcessorPool(graph)
        pool.place("a", 0, 0.0)
        assert pool.ready_time("b", 0) == 10.0

    def test_cross_processor_pays(self, graph):
        pool = ProcessorPool(graph)
        pool.place("a", 0, 0.0)
        assert pool.ready_time("b", 1) == 17.0
        assert pool.ready_time("c", 1) == 13.0

    def test_est_append_includes_avail(self, graph):
        pool = ProcessorPool(graph)
        pool.place("a", 0, 0.0)
        pool.place("b", 0, 10.0)
        # c on proc 0: data ready at 10, proc busy until 30
        assert pool.est_append("c", 0) == 30.0


class TestInsertion:
    def test_slides_into_gap(self):
        g = TaskGraph()
        g.add_task("x", 10)
        g.add_task("y", 10)
        g.add_task("z", 5)
        pool = ProcessorPool(g)
        pool.place("x", 0, 0.0)
        pool.place("y", 0, 20.0)  # gap [10, 20]
        assert pool.est_insertion("z", 0) == 10.0
        assert pool.est_append("z", 0) == 30.0

    def test_gap_too_small(self):
        g = TaskGraph()
        g.add_task("x", 10)
        g.add_task("y", 10)
        g.add_task("z", 15)
        pool = ProcessorPool(g)
        pool.place("x", 0, 0.0)
        pool.place("y", 0, 20.0)
        assert pool.est_insertion("z", 0) == 30.0


class TestBestProcessor:
    def test_prefers_data_locality(self, graph):
        pool = ProcessorPool(graph)
        pool.place("a", 0, 0.0)
        proc, start = pool.best_processor("b")
        assert proc == 0 and start == 10.0

    def test_fresh_wins_when_local_busy(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("blocker", 100)
        g.add_task("b", 10)
        g.add_edge("a", "b", 2)
        pool = ProcessorPool(g)
        pool.place("a", 0, 0.0)
        pool.place("blocker", 0, 10.0)
        proc, start = pool.best_processor("b")
        assert proc == 1 and start == 12.0

    def test_ties_prefer_existing(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 10)
        pool = ProcessorPool(g)
        pool.place("a", 0, 0.0)
        pool.place("b", 1, 0.0)
        g.add_task("c", 1)
        proc, start = pool.best_processor("c")
        # all options start at 10 (P0), 10 (P1), 0 (fresh): fresh wins here
        assert start == 0.0 and proc == 2


class TestBoundedPool:
    def test_cap_stops_growth(self, graph):
        pool = ProcessorPool(graph, max_processors=1)
        pool.place("a", 0, 0.0)
        assert not pool.can_grow
        proc, start = pool.best_processor("b")
        assert proc == 0
        proc, _ = pool.earliest_available_processor()
        assert proc == 0

    def test_cap_of_two(self, graph):
        pool = ProcessorPool(graph, max_processors=2)
        pool.place("a", 0, 0.0)
        assert pool.can_grow
        pool.place("b", 1, 17.0)
        assert not pool.can_grow


class TestEarliestAvailable:
    def test_fresh_processor_at_zero(self, graph):
        pool = ProcessorPool(graph)
        pool.place("a", 0, 0.0)
        proc, avail = pool.earliest_available_processor()
        assert proc == 1 and avail == 0.0

    def test_reuses_idle_existing(self, graph):
        pool = ProcessorPool(graph, max_processors=2)
        pool.place("a", 0, 0.0)
        pool.place("b", 1, 17.0)
        proc, avail = pool.earliest_available_processor()
        assert proc == 0 and avail == 10.0
