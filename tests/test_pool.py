"""Unit tests for the shared ProcessorPool."""

from __future__ import annotations

import pytest

from repro import TaskGraph
from repro.schedulers._pool import ProcessorPool


@pytest.fixture
def graph():
    g = TaskGraph()
    g.add_task("a", 10)
    g.add_task("b", 20)
    g.add_task("c", 5)
    g.add_edge("a", "b", 7)
    g.add_edge("a", "c", 3)
    return g


class TestBookkeeping:
    def test_initially_empty(self, graph):
        pool = ProcessorPool(graph)
        assert pool.n_processors == 0
        assert pool.avail(0) == 0.0
        assert pool.can_grow

    def test_place_grows_pool(self, graph):
        pool = ProcessorPool(graph)
        pool.place("a", 0, 0.0)
        assert pool.n_processors == 1
        assert pool.avail(0) == 10.0
        assert pool.proc_of["a"] == 0

    def test_non_contiguous_rejected(self, graph):
        pool = ProcessorPool(graph)
        with pytest.raises(ValueError):
            pool.place("a", 3, 0.0)

    def test_bad_cap(self, graph):
        with pytest.raises(ValueError):
            ProcessorPool(graph, max_processors=0)


class TestReadyTimes:
    def test_same_processor_no_comm(self, graph):
        pool = ProcessorPool(graph)
        pool.place("a", 0, 0.0)
        assert pool.ready_time("b", 0) == 10.0

    def test_cross_processor_pays(self, graph):
        pool = ProcessorPool(graph)
        pool.place("a", 0, 0.0)
        assert pool.ready_time("b", 1) == 17.0
        assert pool.ready_time("c", 1) == 13.0

    def test_est_append_includes_avail(self, graph):
        pool = ProcessorPool(graph)
        pool.place("a", 0, 0.0)
        pool.place("b", 0, 10.0)
        # c on proc 0: data ready at 10, proc busy until 30
        assert pool.est_append("c", 0) == 30.0


class TestInsertion:
    def test_slides_into_gap(self):
        g = TaskGraph()
        g.add_task("x", 10)
        g.add_task("y", 10)
        g.add_task("z", 5)
        pool = ProcessorPool(g)
        pool.place("x", 0, 0.0)
        pool.place("y", 0, 20.0)  # gap [10, 20]
        assert pool.est_insertion("z", 0) == 10.0
        assert pool.est_append("z", 0) == 30.0

    def test_gap_too_small(self):
        g = TaskGraph()
        g.add_task("x", 10)
        g.add_task("y", 10)
        g.add_task("z", 15)
        pool = ProcessorPool(g)
        pool.place("x", 0, 0.0)
        pool.place("y", 0, 20.0)
        assert pool.est_insertion("z", 0) == 30.0


class TestBestProcessor:
    def test_prefers_data_locality(self, graph):
        pool = ProcessorPool(graph)
        pool.place("a", 0, 0.0)
        proc, start = pool.best_processor("b")
        assert proc == 0 and start == 10.0

    def test_fresh_wins_when_local_busy(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("blocker", 100)
        g.add_task("b", 10)
        g.add_edge("a", "b", 2)
        pool = ProcessorPool(g)
        pool.place("a", 0, 0.0)
        pool.place("blocker", 0, 10.0)
        proc, start = pool.best_processor("b")
        assert proc == 1 and start == 12.0

    def test_ties_prefer_existing(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 10)
        pool = ProcessorPool(g)
        pool.place("a", 0, 0.0)
        pool.place("b", 1, 0.0)
        g.add_task("c", 1)
        proc, start = pool.best_processor("c")
        # all options start at 10 (P0), 10 (P1), 0 (fresh): fresh wins here
        assert start == 0.0 and proc == 2


class TestBoundedPool:
    def test_cap_stops_growth(self, graph):
        pool = ProcessorPool(graph, max_processors=1)
        pool.place("a", 0, 0.0)
        assert not pool.can_grow
        proc, start = pool.best_processor("b")
        assert proc == 0
        proc, _ = pool.earliest_available_processor()
        assert proc == 0

    def test_cap_of_two(self, graph):
        pool = ProcessorPool(graph, max_processors=2)
        pool.place("a", 0, 0.0)
        assert pool.can_grow
        pool.place("b", 1, 17.0)
        assert not pool.can_grow


class TestEarliestAvailable:
    def test_fresh_processor_at_zero(self, graph):
        pool = ProcessorPool(graph)
        pool.place("a", 0, 0.0)
        proc, avail = pool.earliest_available_processor()
        assert proc == 1 and avail == 0.0

    def test_reuses_idle_existing(self, graph):
        pool = ProcessorPool(graph, max_processors=2)
        pool.place("a", 0, 0.0)
        pool.place("b", 1, 17.0)
        proc, avail = pool.earliest_available_processor()
        assert proc == 0 and avail == 10.0


def _brute_force_best(pool, task, *, insertion):
    """The pre-optimization O(P*indeg) reference rule for best_processor."""
    est = pool.est_insertion if insertion else pool.est_append
    if pool.can_grow:
        best_proc = pool.n_processors
        best_start = est(task, best_proc)
    else:
        best_proc = 0
        best_start = est(task, 0)
    for proc in range(pool.n_processors):
        start = est(task, proc)
        if start < best_start - 1e-12 or (
            abs(start - best_start) <= 1e-12 and proc < best_proc
        ):
            best_proc, best_start = proc, start
    return best_proc, best_start


class TestBestProcessorAgainstReference:
    """Property test: the O(P + indeg) fast path must agree everywhere with
    the brute-force per-processor re-scan it replaced."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("insertion", [False, True])
    @pytest.mark.parametrize("max_processors", [None, 3])
    def test_random_graphs(self, seed, insertion, max_processors):
        import numpy as np

        from repro.generation.random_dag import generate_pdg

        rng = np.random.default_rng(seed)
        g = generate_pdg(
            rng,
            n_tasks=int(rng.integers(10, 40)),
            band=int(rng.integers(0, 5)),
            anchor=int(rng.integers(2, 6)),
            weight_range=(20, 200),
        )
        pool = ProcessorPool(g, max_processors=max_processors)
        for task in g.topological_order():
            fast = pool.best_processor(task, insertion=insertion)
            brute = _brute_force_best(pool, task, insertion=insertion)
            assert fast == brute, f"divergence at {task!r}: {fast} != {brute}"
            pool.place(task, *fast)
        pool.schedule.validate(g)

    def test_zero_weight_and_zero_comm_edges(self):
        g = TaskGraph()
        g.add_task("a", 0.0)
        g.add_task("b", 5.0)
        g.add_task("c", 0.0)
        g.add_task("d", 2.0)
        g.add_edge("a", "b", 0.0)
        g.add_edge("a", "c", 3.0)
        g.add_edge("b", "d", 0.0)
        g.add_edge("c", "d", 4.0)
        for insertion in (False, True):
            pool = ProcessorPool(g)
            for task in g.topological_order():
                fast = pool.best_processor(task, insertion=insertion)
                assert fast == _brute_force_best(pool, task, insertion=insertion)
                pool.place(task, *fast)

    def test_ties_prefer_low_existing_processor(self, graph):
        pool = ProcessorPool(graph)
        pool.place("a", 0, 0.0)
        # b and c both ready at 17 on fresh processors (finish 10 + comm 7/3
        # vs waiting on p0): check agreement and determinism of the tie rule
        for task in ("b", "c"):
            fast = pool.best_processor(task)
            assert fast == _brute_force_best(pool, task, insertion=False)
            pool.place(task, *fast)
