"""Cross-model property tests: relations between the four execution models.

The library times schedules under four related models — free-overlap
uniform (the paper's), topology hop-scaled, one-port contention, and
heterogeneous speeds.  These properties pin how they must relate:

* a fully connected topology reproduces the uniform model exactly;
* one-port timing dominates (is never faster than) free-overlap timing;
* homogeneous unit speeds reproduce the uniform durations;
* bounding can only lengthen the best unbounded schedule.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import get_scheduler
from repro.core.simulator import simulate_clustering
from repro.hetero import HEFTScheduler, HeterogeneousMachine, validate_on_machine
from repro.schedulers import BoundedScheduler
from repro.topology import (
    FullyConnected,
    Ring,
    simulate_on_topology,
    simulate_one_port,
    validate_on_topology,
)

from conftest import task_graphs


def _assignment(g, data, n_procs):
    return {
        t: data.draw(st.integers(0, n_procs - 1), label=f"proc[{t}]")
        for t in g.tasks()
    }


class TestTopologyVsUniform:
    @given(g=task_graphs(min_tasks=1, max_tasks=10), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_clique_equals_uniform(self, g, data):
        assignment = _assignment(g, data, 3)
        uniform = simulate_clustering(g, assignment)
        clique = simulate_on_topology(g, assignment, FullyConnected(3))
        assert clique.makespan == pytest.approx(uniform.makespan)

    @given(g=task_graphs(min_tasks=1, max_tasks=10), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_ring_never_faster_than_clique(self, g, data):
        assignment = _assignment(g, data, 4)
        clique = simulate_on_topology(g, assignment, FullyConnected(4))
        ring = simulate_on_topology(g, assignment, Ring(4))
        validate_on_topology(ring, g, Ring(4))
        assert ring.makespan >= clique.makespan - 1e-9


class TestOnePortVsFree:
    @given(g=task_graphs(min_tasks=1, max_tasks=10), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_contention_dominates(self, g, data):
        assignment = _assignment(g, data, 3)
        free = simulate_clustering(g, assignment)
        port = simulate_one_port(g, assignment)
        assert port.makespan >= free.makespan - 1e-9
        # and the one-port schedule remains valid under the free model
        port.schedule.validate(g)

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=25, deadline=None)
    def test_single_processor_immune_to_ports(self, g):
        assignment = {t: 0 for t in g.tasks()}
        free = simulate_clustering(g, assignment)
        port = simulate_one_port(g, assignment)
        assert port.makespan == pytest.approx(free.makespan)
        assert port.transfers == ()


class TestHeteroVsUniform:
    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=30, deadline=None)
    def test_unit_speeds_have_uniform_durations(self, g):
        m = HeterogeneousMachine.homogeneous(3)
        s = HEFTScheduler(m).schedule(g)
        validate_on_machine(s, g, m)
        s.validate(g)  # unit speeds: also valid under the paper's model

    @given(
        g=task_graphs(min_tasks=1, max_tasks=9),
        factor=st.sampled_from([2.0, 4.0]),
    )
    @settings(max_examples=25, deadline=None)
    def test_uniformly_faster_machine_scales_makespan(self, g, factor):
        slow = HEFTScheduler(HeterogeneousMachine.homogeneous(3)).schedule(g)
        fast = HEFTScheduler(
            HeterogeneousMachine.homogeneous(3, speed=factor)
        ).schedule(g)
        # computation shrinks by `factor` but messages do not, so the fast
        # machine is at least (total/factor + nothing) and at most the slow
        assert fast.makespan <= slow.makespan + 1e-9
        comm_free = all(
            g.edge_weight(u, v) == 0 for u, v in g.edges()
        )
        if comm_free:
            assert fast.makespan == pytest.approx(slow.makespan / factor)


class TestBoundedVsUnbounded:
    @given(g=task_graphs(min_tasks=1, max_tasks=10), p=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_bounding_never_beats_unbounded(self, g, p):
        unbounded = get_scheduler("MCP").schedule(g)
        bounded = BoundedScheduler("MCP", p).schedule(g)
        if unbounded.n_processors <= p:
            # no folding needed: the unbounded schedule is returned verbatim
            assert bounded.makespan == pytest.approx(unbounded.makespan)
        else:
            assert bounded.n_processors <= p
        # note: a folded schedule CAN occasionally beat the unbounded one
        # (the fold re-orders clusters by b-level), so no ordering between
        # the two makespans is asserted in the folding case.
