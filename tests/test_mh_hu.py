"""Tests for the list schedulers MH and HU (appendix A.3 / A.4)."""

from __future__ import annotations

import pytest

from repro import HuScheduler, MHScheduler, TaskGraph


class TestMH:
    def test_chain_single_processor(self, chain5):
        s = MHScheduler().schedule(chain5)
        assert s.n_processors == 1

    def test_picks_earliest_start_processor(self):
        """Successor with heavy comm stays with its producer."""
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 10)
        g.add_edge("a", "b", 100)
        s = MHScheduler().schedule(g)
        assert s.processor_of("a") == s.processor_of("b")
        assert s.makespan == 20.0

    def test_spreads_when_cheap(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 100)
        g.add_task("c", 100)
        g.add_edge("a", "b", 1)
        g.add_edge("a", "c", 1)
        s = MHScheduler().schedule(g)
        assert s.processor_of("b") != s.processor_of("c")

    def test_priority_is_comm_level(self, paper_example):
        """Higher-level branches get scheduled (and thus start) first among
        simultaneously free tasks: node 3 (level 127+) beats node 2 (74)."""
        s = MHScheduler().schedule(paper_example)
        assert s.start(3) <= s.start(2)

    def test_wave_release(self, diamond):
        s = MHScheduler().schedule(diamond)
        s.validate(diamond)
        # b before c or same time (levels equal, order deterministic)
        assert s.start("b") <= s.start("c")


class TestHU:
    def test_spreads_maximally(self, wide_fork):
        """Earliest-available-processor choice gives ~1 task per processor."""
        s = HuScheduler().schedule(wide_fork)
        assert s.n_processors >= 6

    def test_chain_spreads_and_pays(self, chain5):
        """Even a pure chain gets scattered — each task lands on a fresh
        processor and pays every message (the paper's HU pathology)."""
        s = HuScheduler().schedule(chain5)
        assert s.n_processors == 5
        assert s.makespan == chain5.serial_time() + 4 * 3  # all comms paid

    def test_retards_at_low_granularity(self, two_sources_join):
        s = HuScheduler().schedule(two_sources_join)
        assert s.speedup(two_sources_join) < 1.0

    def test_hu_ignores_comm_in_priority(self):
        """HU orders by computation-only level: a long cheap chain beats a
        short branch with a huge edge weight."""
        g = TaskGraph()
        g.add_task("src", 1)
        # branch A: two nodes, no comm -> hu level 21
        g.add_task("a1", 10)
        g.add_task("a2", 10)
        # branch B: one node, giant comm -> hu level 11 (comm ignored)
        g.add_task("b1", 10)
        g.add_edge("src", "a1", 1)
        g.add_edge("a1", "a2", 1)
        g.add_edge("src", "b1", 10_000)
        s = HuScheduler().schedule(g)
        assert s.start("a1") <= s.start("b1")

    def test_reuses_idle_processor_at_time_zero(self):
        """Two independent sources: the second source prefers an existing
        idle processor only if one is free at the same instant — here P0 is
        busy, so a fresh processor is used."""
        g = TaskGraph()
        g.add_task("x", 10)
        g.add_task("y", 10)
        s = HuScheduler().schedule(g)
        assert s.n_processors == 2
        assert s.start("x") == s.start("y") == 0.0


class TestMHvsHU:
    def test_mh_beats_hu_on_heavy_comm(self, paper_example, two_sources_join, chain5):
        """The processor-choice rule is the entire difference: MH must never
        lose to HU on graphs where communication matters."""
        for g in (paper_example, two_sources_join, chain5):
            mh = MHScheduler().schedule(g)
            hu = HuScheduler().schedule(g)
            assert mh.makespan <= hu.makespan + 1e-9
