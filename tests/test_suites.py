"""Tests for the Table-1 suite generator."""

from __future__ import annotations

import pytest

from repro import anchor_out_degree, granularity_band, granularity, node_weight_range
from repro.generation.suites import (
    PAPER_ANCHORS,
    PAPER_GRAPHS_PER_CELL,
    PAPER_WEIGHT_RANGES,
    SuiteCell,
    band_label,
    generate_suite,
    suite_cells,
    weight_range_label,
)


class TestCells:
    def test_sixty_cells(self):
        cells = suite_cells()
        assert len(cells) == 60
        assert len(set(cells)) == 60

    def test_full_suite_is_2100(self):
        assert 60 * PAPER_GRAPHS_PER_CELL == 2100

    def test_cell_fields(self):
        c = suite_cells()[0]
        assert c.band == 0
        assert c.anchor in PAPER_ANCHORS
        assert c.weight_range in PAPER_WEIGHT_RANGES

    def test_bad_band_rejected(self):
        with pytest.raises(ValueError):
            SuiteCell(band=7, anchor=2, weight_range=(20, 100))

    def test_labels(self):
        assert band_label(0) == "G < 0.08"
        assert weight_range_label((20, 100)) == "20 - 100"
        assert "anchor 2" in SuiteCell(0, 2, (20, 100)).label


class TestGeneration:
    def test_graphs_match_their_cell(self):
        cells = [SuiteCell(1, 3, (20, 200)), SuiteCell(4, 2, (20, 100))]
        for sg in generate_suite(graphs_per_cell=2, cells=cells,
                                 n_tasks_range=(20, 30)):
            assert granularity_band(granularity(sg.graph)) == sg.cell.band
            assert anchor_out_degree(sg.graph) == sg.cell.anchor
            lo, hi = node_weight_range(sg.graph)
            assert sg.cell.weight_range[0] <= lo
            assert hi <= sg.cell.weight_range[1]
            sg.graph.validate()

    def test_sizes_in_range(self):
        cells = [SuiteCell(2, 2, (20, 100))]
        for sg in generate_suite(graphs_per_cell=3, cells=cells,
                                 n_tasks_range=(18, 22)):
            assert 18 <= sg.graph.n_tasks <= 22

    def test_reproducible(self):
        cells = [SuiteCell(2, 3, (20, 100))]
        a = [sg.graph for sg in generate_suite(graphs_per_cell=2, cells=cells,
                                               n_tasks_range=(15, 20))]
        b = [sg.graph for sg in generate_suite(graphs_per_cell=2, cells=cells,
                                               n_tasks_range=(15, 20))]
        assert a == b

    def test_cells_independent_of_selection(self):
        """A cell's graphs are identical whether generated alone or with
        other cells (per-cell child seeds)."""
        target = SuiteCell(3, 4, (20, 200))
        other = SuiteCell(0, 2, (20, 100))
        alone = [
            sg.graph
            for sg in generate_suite(graphs_per_cell=1, cells=[target],
                                     n_tasks_range=(15, 20))
        ]
        together = [
            sg.graph
            for sg in generate_suite(graphs_per_cell=1, cells=[other, target],
                                     n_tasks_range=(15, 20))
            if sg.cell == target
        ]
        assert alone == together

    def test_different_seed_different_graphs(self):
        cells = [SuiteCell(2, 3, (20, 100))]
        a = next(iter(generate_suite(graphs_per_cell=1, cells=cells, seed=1,
                                     n_tasks_range=(15, 20)))).graph
        b = next(iter(generate_suite(graphs_per_cell=1, cells=cells, seed=2,
                                     n_tasks_range=(15, 20)))).graph
        assert a != b

    def test_graph_id_encodes_cell(self):
        sg = next(iter(generate_suite(
            graphs_per_cell=1, cells=[SuiteCell(1, 5, (20, 400))],
            n_tasks_range=(15, 20),
        )))
        assert sg.graph_id == "b1-a5-w20_400-#0"

    def test_bad_args(self):
        with pytest.raises(ValueError):
            list(generate_suite(graphs_per_cell=0))
        with pytest.raises(ValueError):
            list(generate_suite(graphs_per_cell=1, n_tasks_range=(1, 1)))
