"""The canonical wire codec: one JSON form for every graph/schedule exchange."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import wire
from repro.core.schedule import Schedule
from repro.schedulers.base import get_scheduler

from conftest import task_graphs


class TestCanonicalDumps:
    def test_compact_no_spaces(self):
        assert wire.dumps({"a": [1, 2], "b": 0.5}) == '{"a":[1,2],"b":0.5}'

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            wire.dumps({"x": float("nan")})

    def test_insertion_order_preserved(self):
        # key order is meaningful (digests depend on it); no silent sorting
        assert wire.dumps({"b": 1, "a": 2}) == '{"b":1,"a":2}'

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_round_trip_exact(self, x):
        assert wire.loads(wire.dumps(x)) == x


class TestGraphRoundTrip:
    @given(task_graphs())
    def test_graph_survives_wire(self, g):
        back = wire.graph_from_wire(wire.graph_to_wire(g))
        assert back.to_dict() == g.to_dict()

    def test_digest_stable_across_encodes(self, paper_example):
        w1 = wire.graph_to_wire(paper_example)
        w2 = wire.graph_to_wire(paper_example)
        assert wire.graph_digest(w1) == wire.graph_digest(w2)

    def test_digest_differs_on_weight_change(self, paper_example):
        d1 = wire.graph_digest(wire.graph_to_wire(paper_example))
        paper_example.add_task(99, 1.0)
        d2 = wire.graph_digest(wire.graph_to_wire(paper_example))
        assert d1 != d2

    def test_digest_survives_json_round_trip(self, paper_example):
        # decode(encode(wire)) must hash identically: the client sends the
        # wire dict through JSON and the server digests what it receives
        w = wire.graph_to_wire(paper_example)
        again = json.loads(json.dumps(w))
        assert wire.graph_digest(w) == wire.graph_digest(again)


class TestScheduleRoundTrip:
    def test_finish_times_restored_verbatim(self):
        # a (start, finish) pair where the old rebuild-from-duration path
        # drifts by one ulp: start + (finish - start) != finish
        start, finish = 4.454535961765417e-155, 2.353203114389385e-154
        assert start + (finish - start) != finish
        back = Schedule.from_dict({"placements": [["t", 0, start, finish]]})
        assert back["t"].finish == finish
        again = wire.schedule_from_wire(wire.schedule_to_wire(back))
        assert again["t"].finish == finish

    @given(task_graphs(min_tasks=2, max_tasks=10))
    def test_schedule_survives_wire(self, g):
        s = get_scheduler("HLFET").schedule(g)
        back = wire.schedule_from_wire(wire.schedule_to_wire(s))
        assert wire.dumps(wire.schedule_to_wire(back)) == wire.dumps(
            wire.schedule_to_wire(s)
        )
        assert back.makespan == s.makespan

    def test_persistence_uses_wire_forms(self, tmp_path, paper_example):
        # save/load of suites goes through the same codec as the service
        from repro.experiments.persistence import load_suite, save_suite
        from repro.generation.suites import SuiteCell, SuiteGraph

        cell = SuiteCell(band=0, anchor=2, weight_range=(1, 10))
        path = tmp_path / "suite.json"
        save_suite([SuiteGraph(cell=cell, index=0, graph=paper_example)], path)
        (loaded,) = load_suite(path)
        assert loaded.graph.to_dict() == paper_example.to_dict()
