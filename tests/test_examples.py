"""The examples must keep running (executed as subprocesses)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "CLANS" in out
        assert "130" in out  # the paper's worked-example parallel time

    def test_compiler_pipeline(self):
        out = run_example("compiler_pipeline.py")
        assert "wide-area cluster" in out
        assert "chosen" in out

    def test_granularity_study_small(self):
        out = run_example("granularity_study.py", "1")
        assert "Table 2" in out
        assert "Figure 1" in out

    def test_clan_explorer(self):
        out = run_example("clan_explorer.py")
        assert "fork-join" in out
        assert "parse tree" in out

    def test_bounded_machines(self):
        out = run_example("bounded_machines.py")
        assert "lower bound" in out

    def test_heterogeneous_cluster(self):
        out = run_example("heterogeneous_cluster.py")
        assert "HEFT" in out

    def test_every_example_file_is_tested(self):
        tested = {
            "quickstart.py",
            "compiler_pipeline.py",
            "granularity_study.py",
            "clan_explorer.py",
            "bounded_machines.py",
            "heterogeneous_cluster.py",
        }
        on_disk = {p.name for p in EXAMPLES.glob("*.py")}
        assert on_disk == tested
