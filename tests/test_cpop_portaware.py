"""Tests for CPOP and the contention-aware list scheduler."""

from __future__ import annotations

from collections import defaultdict

import pytest
from hypothesis import given, settings

from repro import GraphError, TaskGraph
from repro.hetero import (
    CPOPScheduler,
    HEFTScheduler,
    HeterogeneousMachine,
    validate_on_machine,
)
from repro.hetero.cpop import downward_ranks
from repro.topology import PortAwareScheduler, simulate_one_port

from conftest import task_graphs


class TestDownwardRanks:
    def test_sources_zero(self, paper_example):
        m = HeterogeneousMachine.homogeneous(2)
        down = downward_ranks(paper_example, m)
        assert down[1] == 0.0

    def test_matches_tlevel_on_homogeneous(self, paper_example):
        from repro.core.analysis import t_levels

        m = HeterogeneousMachine.homogeneous(4)
        down = downward_ranks(paper_example, m)
        tl = t_levels(paper_example, communication=True)
        for t in paper_example.tasks():
            assert down[t] == pytest.approx(tl[t])


class TestCPOP:
    def test_valid_on_zoo(self, paper_example, diamond, chain5, wide_fork):
        for m in (HeterogeneousMachine.homogeneous(3), HeterogeneousMachine([1, 2])):
            for g in (paper_example, diamond, chain5, wide_fork):
                s = CPOPScheduler(m).schedule(g)
                validate_on_machine(s, g, m)

    def test_critical_path_pinned_to_one_processor(self, chain5):
        """A chain *is* the critical path: all of it lands on the CP
        processor — the fastest one."""
        m = HeterogeneousMachine([1, 3, 2])
        s = CPOPScheduler(m).schedule(chain5)
        procs = {s.processor_of(t) for t in chain5.tasks()}
        assert procs == {1}  # the speed-3 processor

    def test_competitive_with_heft_on_pinning_friendly_graphs(self):
        """One long chain plus light side work: pinning the chain to the
        fast processor is exactly right."""
        g = TaskGraph()
        prev = None
        for i in range(6):
            g.add_task(("c", i), 30)
            if prev is not None:
                g.add_edge(prev, ("c", i), 2)
            prev = ("c", i)
        for i in range(4):
            g.add_task(("side", i), 5)
            g.add_edge(("c", 0), ("side", i), 2)
        m = HeterogeneousMachine([0.5, 0.5, 2])
        cpop = CPOPScheduler(m).schedule(g)
        heft = HEFTScheduler(m).schedule(g)
        validate_on_machine(cpop, g, m)
        assert cpop.makespan <= heft.makespan * 1.1 + 1e-9

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            CPOPScheduler(HeterogeneousMachine([1])).schedule(TaskGraph())

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=30, deadline=None)
    def test_property_valid(self, g):
        m = HeterogeneousMachine([1, 2, 0.5])
        s = CPOPScheduler(m).schedule(g)
        validate_on_machine(s, g, m)


class TestPortAware:
    def test_valid_under_free_model_too(self, paper_example, diamond, wide_fork):
        """One-port feasibility implies free-model feasibility."""
        for g in (paper_example, diamond, wide_fork):
            s = PortAwareScheduler().schedule(g)
            s.validate(g)

    def test_transfer_log_is_port_feasible(self, wide_fork):
        sched = PortAwareScheduler()
        s = sched.schedule(wide_fork)
        proc_of = {p.task: p.processor for p in s}
        send_windows = defaultdict(list)
        recv_windows = defaultdict(list)
        for src, dst, start, finish in sched.last_transfers:
            assert start >= s.finish(src) - 1e-9
            assert finish <= s.start(dst) + 1e-9
            send_windows[proc_of[src]].append((start, finish))
            recv_windows[proc_of[dst]].append((start, finish))
        for windows in [*send_windows.values(), *recv_windows.values()]:
            windows.sort()
            for (s1, f1), (s2, f2) in zip(windows, windows[1:]):
                assert s2 >= f1 - 1e-9  # no overlap on any port

    def test_beats_blind_mh_under_contention(self):
        """On a wide fan-out with significant messages, planning around the
        ports must beat re-timing a contention-blind schedule."""
        g = TaskGraph()
        g.add_task("src", 5)
        for i in range(8):
            g.add_task(i, 20)
            g.add_edge("src", i, 10)
        from repro import MHScheduler

        blind = MHScheduler().schedule(g)
        blind_retimed = simulate_one_port(
            g, {p.task: p.processor for p in blind}
        )
        aware = PortAwareScheduler().schedule(g)
        assert aware.makespan <= blind_retimed.makespan + 1e-9

    def test_max_processors(self, wide_fork):
        s = PortAwareScheduler(max_processors=2).schedule(wide_fork)
        assert s.n_processors <= 2

    def test_bad_max(self):
        with pytest.raises(GraphError):
            PortAwareScheduler(max_processors=0)

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            PortAwareScheduler().schedule(TaskGraph())

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=30, deadline=None)
    def test_property_valid_and_port_feasible(self, g):
        sched = PortAwareScheduler()
        s = sched.schedule(g)
        s.validate(g)
        proc_of = {p.task: p.processor for p in s}
        per_port = defaultdict(list)
        for src, dst, start, finish in sched.last_transfers:
            per_port[("s", proc_of[src])].append((start, finish))
            per_port[("r", proc_of[dst])].append((start, finish))
        for windows in per_port.values():
            windows.sort()
            for (s1, f1), (s2, f2) in zip(windows, windows[1:]):
                assert s2 >= f1 - 1e-9
