"""Tests for the paired statistical comparison of heuristics."""

from __future__ import annotations

import pytest

from repro.experiments.measures import GraphResult, HeuristicResult
from repro.experiments.significance import (
    PairedComparison,
    compare_heuristics,
    comparison_matrix,
)


def make_results(pairs):
    """pairs: list of (time_A, time_B) per graph."""
    out = []
    for i, (ta, tb) in enumerate(pairs):
        out.append(
            GraphResult(
                graph_id=f"g{i}",
                band=0,
                anchor=2,
                weight_range=(20, 100),
                granularity=0.5,
                serial_time=1000.0,
                results={
                    "A": HeuristicResult(parallel_time=ta, n_processors=2),
                    "B": HeuristicResult(parallel_time=tb, n_processors=2),
                },
            )
        )
    return out


class TestCompareHeuristics:
    def test_counts(self):
        results = make_results([(10, 20), (30, 20), (15, 15), (5, 50)])
        cmp = compare_heuristics(results, "A", "B")
        assert cmp.wins == 2
        assert cmp.losses == 1
        assert cmp.ties == 1
        assert cmp.n_graphs == 4

    def test_clear_dominance_significant(self):
        results = make_results([(10.0 + i, 20.0 + i) for i in range(20)])
        cmp = compare_heuristics(results, "A", "B")
        assert cmp.wins == 20
        assert cmp.p_value < 0.01
        assert cmp.a_dominates

    def test_all_ties(self):
        results = make_results([(10, 10)] * 5)
        cmp = compare_heuristics(results, "A", "B")
        assert cmp.ties == 5
        assert cmp.p_value == 1.0
        assert not cmp.a_dominates

    def test_ratios(self):
        results = make_results([(10, 20), (30, 20)])
        cmp = compare_heuristics(results, "A", "B")
        assert cmp.mean_ratio == pytest.approx((0.5 + 1.5) / 2)
        assert cmp.median_ratio == pytest.approx(1.0)

    def test_symmetry(self):
        results = make_results([(10, 20), (30, 20), (15, 15)])
        ab = compare_heuristics(results, "A", "B")
        ba = compare_heuristics(results, "B", "A")
        assert ab.wins == ba.losses
        assert ab.p_value == pytest.approx(ba.p_value)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_heuristics([], "A", "B")

    def test_summary(self):
        results = make_results([(10, 20)])
        assert "A vs B" in compare_heuristics(results, "A", "B").summary()


class TestComparisonMatrix:
    def test_matrix_shape_and_values(self):
        results = make_results([(10, 20), (10, 20), (30, 20), (15, 15)])
        table = comparison_matrix(results, ["A", "B"])
        assert table.value("A", "B") == pytest.approx(0.5)
        assert table.value("B", "A") == pytest.approx(0.25)
        assert table.value("A", "A") == 0.0

    def test_on_real_run(self, paper_example):
        from repro.experiments.runner import evaluate_graph
        from repro.core.metrics import granularity
        from repro.schedulers import paper_schedulers

        gr = GraphResult(
            graph_id="ex",
            band=2,
            anchor=2,
            weight_range=(10, 50),
            granularity=granularity(paper_example),
            serial_time=paper_example.serial_time(),
            results=evaluate_graph(paper_example, paper_schedulers()),
        )
        table = comparison_matrix([gr])
        # everyone except HU ties at 130; each beats HU on this graph
        assert table.value("CLANS", "HU") == 1.0
        assert table.value("HU", "CLANS") == 0.0
        assert table.value("CLANS", "DSC") == 0.0
