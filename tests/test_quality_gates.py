"""Repository-wide quality gates.

Meta-tests ensuring the library keeps its documentation and API-hygiene
promises: every public module, class and function is documented; every
registered scheduler is constructible with defaults; the registry and
``__all__`` lists stay consistent.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.taskgraph",
    "repro.core.analysis",
    "repro.core.metrics",
    "repro.core.schedule",
    "repro.core.simulator",
    "repro.core.stats",
    "repro.core.lowerbounds",
    "repro.core.exceptions",
    "repro.clans",
    "repro.clans.relations",
    "repro.clans.decomposition",
    "repro.clans.parse_tree",
    "repro.clans.properties",
    "repro.schedulers",
    "repro.generation",
    "repro.experiments",
    "repro.topology",
    "repro.hetero",
    "repro.viz",
    "repro.cli",
]


def _walk_public_modules():
    seen = []
    for name in PUBLIC_MODULES:
        seen.append(importlib.import_module(name))
    pkg = repro
    for info in pkgutil.walk_packages(pkg.__path__, prefix="repro."):
        if info.name.rsplit(".", 1)[-1].startswith("_"):
            continue
        seen.append(importlib.import_module(info.name))
    return {m.__name__: m for m in seen}.values()


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            m.__name__ for m in _walk_public_modules() if not (m.__doc__ or "").strip()
        ]
        assert not undocumented

    def test_every_public_callable_documented(self):
        missing: list[str] = []
        for module in _walk_public_modules():
            names = getattr(module, "__all__", None)
            if names is None:
                continue
            for name in names:
                obj = getattr(module, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (obj.__doc__ or "").strip():
                        missing.append(f"{module.__name__}.{name}")
        assert not missing

    def test_public_classes_document_public_methods(self):
        from repro import Schedule, TaskGraph

        for cls in (TaskGraph, Schedule):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert (member.__doc__ or "").strip(), f"{cls.__name__}.{name}"


class TestRegistryHygiene:
    def test_all_registered_constructible_with_defaults(self):
        from repro.schedulers import SCHEDULER_REGISTRY

        for name, cls in SCHEDULER_REGISTRY.items():
            instance = cls()
            assert instance.name == name

    def test_names_unique_case_insensitively(self):
        from repro.schedulers import SCHEDULER_REGISTRY

        lowered = [n.lower() for n in SCHEDULER_REGISTRY]
        assert len(set(lowered)) == len(lowered)

    def test_all_exports_resolve(self):
        for module in _walk_public_modules():
            names = getattr(module, "__all__", None)
            if names is None:
                continue
            for name in names:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_paper_heuristics_stay_paper_pure(self):
        """The five paper heuristics must not require constructor args —
        the tables are regenerated with defaults."""
        from repro.schedulers import paper_schedulers

        names = [s.name for s in paper_schedulers()]
        assert names == ["CLANS", "DSC", "MCP", "MH", "HU"]


class TestCliListSubcommand:
    def test_lists_every_registered_scheduler(self, capsys):
        from repro.cli import main
        from repro.schedulers import SCHEDULER_REGISTRY

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SCHEDULER_REGISTRY:
            assert name in out
