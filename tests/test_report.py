"""Tests for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.experiments.report import full_report, render_report
from repro.experiments.runner import run_suite
from repro.generation.suites import SuiteCell, generate_suite


@pytest.fixture(scope="module")
def small_results():
    cells = [SuiteCell(0, 2, (20, 100)), SuiteCell(4, 3, (20, 200))]
    suite = generate_suite(graphs_per_cell=2, cells=cells, n_tasks_range=(12, 18))
    return run_suite(list(suite))


class TestRenderReport:
    def test_contains_all_tables_and_figures(self, small_results):
        text = render_report(small_results)
        for tid in range(1, 12):
            assert f"## Table {tid}" in text
        for fid in range(1, 7):
            assert f"## Figure {fid}" in text

    def test_title_and_counts(self, small_results):
        text = render_report(small_results, title="My Report")
        assert text.startswith("# My Report")
        assert f"**{len(small_results)}**" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_report([])


class TestFullReport:
    def test_end_to_end(self):
        text = full_report(graphs_per_cell=1, n_tasks_range=(10, 14))
        assert "## Table 2" in text
        assert "CLANS" in text
        assert "60 graphs" in text
