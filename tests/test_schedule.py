"""Unit tests for the schedule model and its validation (paper section 2)."""

from __future__ import annotations

import pytest

from repro import Schedule, ScheduledTask, ScheduleError, TaskGraph


@pytest.fixture
def ab_graph():
    g = TaskGraph()
    g.add_task("a", 10)
    g.add_task("b", 20)
    g.add_edge("a", "b", 5)
    return g


class TestScheduledTask:
    def test_fields(self):
        st = ScheduledTask("a", 0, 1.0, 3.0)
        assert st.finish == 3.0

    def test_negative_processor(self):
        with pytest.raises(ScheduleError):
            ScheduledTask("a", -1, 0.0, 1.0)

    def test_negative_start(self):
        with pytest.raises(ScheduleError):
            ScheduledTask("a", 0, -1.0, 1.0)

    def test_finish_before_start(self):
        with pytest.raises(ScheduleError):
            ScheduledTask("a", 0, 5.0, 1.0)


class TestScheduleBasics:
    def test_place_and_query(self, ab_graph):
        s = Schedule()
        s.place("a", 0, 0.0, 10.0)
        s.place("b", 1, 15.0, 20.0)
        assert s.processor_of("a") == 0
        assert s.start("b") == 15.0
        assert s.finish("b") == 35.0
        assert s.makespan == 35.0
        assert s.n_processors == 2
        assert len(s) == 2
        assert "a" in s

    def test_duplication_forbidden(self):
        s = Schedule()
        s.place("a", 0, 0.0, 1.0)
        with pytest.raises(ScheduleError):
            s.place("a", 1, 5.0, 1.0)

    def test_missing_task_lookup(self):
        with pytest.raises(ScheduleError):
            Schedule()["nope"]

    def test_empty_makespan(self):
        assert Schedule().makespan == 0.0

    def test_tasks_on_sorted(self):
        s = Schedule()
        s.place("b", 0, 10.0, 5.0)
        s.place("a", 0, 0.0, 5.0)
        assert [p.task for p in s.tasks_on(0)] == ["a", "b"]

    def test_clusters(self):
        s = Schedule()
        s.place("a", 0, 0.0, 5.0)
        s.place("b", 2, 0.0, 5.0)
        s.place("c", 0, 5.0, 5.0)
        assert s.clusters() == [["a", "c"], ["b"]]


class TestValidation:
    def test_valid_two_proc(self, ab_graph):
        s = Schedule()
        s.place("a", 0, 0.0, 10.0)
        s.place("b", 1, 15.0, 20.0)  # 10 finish + 5 comm
        s.validate(ab_graph)
        assert s.is_valid(ab_graph)

    def test_valid_same_proc_no_comm(self, ab_graph):
        s = Schedule()
        s.place("a", 0, 0.0, 10.0)
        s.place("b", 0, 10.0, 20.0)
        s.validate(ab_graph)

    def test_comm_violation(self, ab_graph):
        s = Schedule()
        s.place("a", 0, 0.0, 10.0)
        s.place("b", 1, 12.0, 20.0)  # message lands at 15
        with pytest.raises(ScheduleError, match="arrives"):
            s.validate(ab_graph)

    def test_precedence_violation_same_proc(self, ab_graph):
        s = Schedule()
        s.place("b", 0, 0.0, 20.0)
        s.place("a", 0, 20.0, 10.0)
        with pytest.raises(ScheduleError):
            s.validate(ab_graph)

    def test_overlap_detected(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 10)
        s = Schedule()
        s.place("a", 0, 0.0, 10.0)
        s.place("b", 0, 5.0, 10.0)
        with pytest.raises(ScheduleError, match="overlap"):
            s.validate(g)

    def test_missing_task(self, ab_graph):
        s = Schedule()
        s.place("a", 0, 0.0, 10.0)
        with pytest.raises(ScheduleError, match="mismatch"):
            s.validate(ab_graph)

    def test_extra_task(self, ab_graph):
        s = Schedule()
        s.place("a", 0, 0.0, 10.0)
        s.place("b", 0, 10.0, 20.0)
        s.place("ghost", 1, 0.0, 1.0)
        with pytest.raises(ScheduleError, match="mismatch"):
            s.validate(ab_graph)

    def test_wrong_duration(self, ab_graph):
        s = Schedule()
        s.place("a", 0, 0.0, 11.0)
        s.place("b", 0, 11.0, 20.0)
        with pytest.raises(ScheduleError, match="weight"):
            s.validate(ab_graph)

    def test_is_valid_false(self, ab_graph):
        assert not Schedule().is_valid(ab_graph)


class TestMeasures:
    def test_speedup_efficiency(self, ab_graph):
        s = Schedule()
        s.place("a", 0, 0.0, 10.0)
        s.place("b", 0, 10.0, 20.0)
        assert s.speedup(ab_graph) == pytest.approx(1.0)
        assert s.efficiency(ab_graph) == pytest.approx(1.0)

    def test_speedup_parallel(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 10)
        s = Schedule()
        s.place("a", 0, 0.0, 10.0)
        s.place("b", 1, 0.0, 10.0)
        assert s.speedup(g) == pytest.approx(2.0)
        assert s.efficiency(g) == pytest.approx(1.0)

    def test_busy_fraction(self):
        g = TaskGraph()
        g.add_task("a", 10)
        s = Schedule()
        s.place("a", 0, 10.0, 10.0)
        assert s.busy_fraction() == pytest.approx(0.5)

    def test_busy_fraction_empty(self):
        assert Schedule().busy_fraction() == 0.0


class TestGantt:
    def test_contains_processors(self):
        s = Schedule()
        s.place("a", 0, 0.0, 10.0)
        s.place("b", 1, 0.0, 10.0)
        txt = s.to_gantt()
        assert "P0" in txt and "P1" in txt

    def test_empty(self):
        assert "empty" in Schedule().to_gantt()

    def test_repr(self):
        s = Schedule()
        s.place("a", 0, 0.0, 2.0)
        assert "makespan=2" in repr(s)


class TestSerialization:
    def test_round_trip(self):
        s = Schedule()
        s.place("a", 0, 0.0, 10.0)
        s.place(("t", 1), 1, 5.0, 3.0)
        import json

        back = Schedule.from_dict(json.loads(json.dumps(s.to_dict())))
        assert back.makespan == s.makespan
        assert back.processor_of(("t", 1)) == 1
        assert back.start("a") == 0.0

    def test_round_trip_preserves_validity(self, ab_graph):
        s = Schedule()
        s.place("a", 0, 0.0, 10.0)
        s.place("b", 1, 15.0, 20.0)
        back = Schedule.from_dict(s.to_dict())
        back.validate(ab_graph)
