"""Batched SoA analysis: equivalence, priming, fallback, byte identity.

The batch layer's whole contract is "invisible except for speed": every
number it primes must be *bitwise* equal to what the per-graph kernels
(and therefore the dict reference paths) would compute lazily, under
every combination of ``REPRO_BATCH`` x ``REPRO_KERNELS``, and a suite
run with batching on must serialize byte-identically to one with it
off.  CI's ``batch-smoke`` job runs this file twice — once with
``REPRO_BATCH=1`` and once with ``=0`` — so the assertions here are
written against explicit ``use_batch``/``use_kernels`` toggles, never
against the ambient environment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TaskGraph
from repro.core import batch as batch_mod
from repro.core.analysis import alap_times, b_levels, hu_levels, t_levels
from repro.core.batch import (
    GraphBatch,
    batch_analyze,
    batch_enabled,
    numpy_available,
    use_batch,
)
from repro.core.exceptions import CycleError, GraphError
from repro.core.kernels import GraphIndex, graph_index, use_kernels
from repro.core.metrics import (
    anchor_out_degree,
    granularity,
    granularity_band,
    node_weight_range,
)
from repro.generation.random_dag import generate_pdg
from repro.obs.metrics import MetricsRegistry, use_registry

SEED = 19940815


# ----------------------------------------------------------------------
# graph corpus: seeded testbed sweep across classes and sizes + edge cases
# ----------------------------------------------------------------------
def _testbed_graphs() -> list[tuple[str, TaskGraph]]:
    graphs = []
    for band in range(5):
        for anchor in (2, 5):
            for n, wr in [(8, (1, 10)), (40, (3, 200)), (90, (20, 50))]:
                rng = np.random.default_rng(SEED + band * 1000 + anchor * 10 + n)
                g = generate_pdg(
                    rng, n_tasks=n, band=band, anchor=anchor, weight_range=wr
                )
                graphs.append((f"band{band}-a{anchor}-n{n}", g))
    return graphs


def _edge_case_graphs() -> list[tuple[str, TaskGraph]]:
    empty = TaskGraph()

    single = TaskGraph()
    single.add_task("only", 7)

    no_edges = TaskGraph()
    for i in range(4):
        no_edges.add_task(i, 2.5 * (i + 1))

    chain = TaskGraph()
    for i in range(6):
        chain.add_task(i, 5 + i)
        if i:
            chain.add_edge(i - 1, i, 2)

    zero_comm = TaskGraph()
    for t in "abcd":
        zero_comm.add_task(t, 10)
    zero_comm.add_edge("a", "b", 0)
    zero_comm.add_edge("a", "c", 5)
    zero_comm.add_edge("b", "d", 0)
    zero_comm.add_edge("c", "d", 0)

    return [
        ("empty", empty),
        ("single", single),
        ("no-edges", no_edges),
        ("chain", chain),
        ("zero-cost-edges", zero_comm),
    ]


CORPUS = _testbed_graphs() + _edge_case_graphs()
IDS = [name for name, _ in CORPUS]
GRAPHS = [g for _, g in CORPUS]


def _reference_levels(g: TaskGraph) -> dict:
    """Dict-path analysis on a fresh copy (the ground truth both the
    kernels and the batch must match bit for bit)."""
    with use_kernels(False):
        ref = g.copy()
        return {
            "t": t_levels(ref, communication=True),
            "t0": t_levels(ref, communication=False),
            "b": b_levels(ref, communication=True),
            "hu": hu_levels(ref),
            "alap": alap_times(ref, communication=True),
        }


# ----------------------------------------------------------------------
# toggles and guards
# ----------------------------------------------------------------------
class TestToggles:
    def test_numpy_available_here(self):
        assert numpy_available()

    def test_use_batch_nests_and_restores(self):
        initial = batch_mod._enabled
        with use_batch(True):
            with use_kernels(True):
                assert batch_enabled()
            with use_batch(False):
                assert not batch_enabled()
                with use_batch(True):
                    with use_kernels(True):
                        assert batch_enabled()
                assert not batch_enabled()
        assert batch_mod._enabled == initial

    def test_batch_requires_kernels(self):
        # The batch packs compiled indexes: REPRO_KERNELS=0 disables it too.
        with use_batch(True), use_kernels(False):
            assert not batch_enabled()
            assert batch_analyze([GRAPHS[0].copy()]) == 0

    def test_degrades_without_numpy(self, monkeypatch):
        monkeypatch.setattr(batch_mod, "_np", None)
        assert not numpy_available()
        with use_batch(True), use_kernels(True):
            assert not batch_enabled()
            assert batch_analyze([GRAPHS[0].copy()]) == 0
        with pytest.raises(RuntimeError):
            GraphBatch([])


# ----------------------------------------------------------------------
# pooled level sweeps: bitwise equal to the dict reference paths
# ----------------------------------------------------------------------
class TestBatchLevelEquivalence:
    @pytest.fixture(scope="class")
    def pooled(self):
        indexes = [GraphIndex(g) for g in GRAPHS]
        return GraphBatch(indexes), indexes

    def test_pool_shape(self, pooled):
        batch, indexes = pooled
        assert batch.n_graphs == len(GRAPHS)
        assert batch.n_nodes == sum(gi.n for gi in indexes)
        assert batch.n_edges == sum(gi.m for gi in indexes)

    @pytest.mark.parametrize(
        "accessor, key",
        [
            (lambda b: b.t_levels(True), "t"),
            (lambda b: b.t_levels(False), "t0"),
            (lambda b: b.b_levels(True), "b"),
            (lambda b: b.b_levels(False), "hu"),
            (lambda b: b.alap(True), "alap"),
        ],
        ids=["t", "t-nocomm", "b", "hu", "alap"],
    )
    def test_levels_bitwise_equal(self, pooled, accessor, key):
        batch, indexes = pooled
        per_graph = batch.per_graph(accessor(batch))
        for k, (name, g) in enumerate(CORPUS):
            ref = _reference_levels(g)[key]
            got = dict(zip(indexes[k].tasks, per_graph[k]))
            assert got == ref, name  # exact: == on floats, not approx

    def test_critical_path_lengths(self, pooled):
        batch, _ = pooled
        cp = batch.critical_path_lengths(True)
        for k, (name, g) in enumerate(CORPUS):
            ref = _reference_levels(g)["b"]
            expect = max(ref.values(), default=0.0)
            assert cp[k] == expect, name

    @pytest.mark.parametrize("g", GRAPHS, ids=IDS)
    def test_single_graph_batch_matches_pooled(self, pooled, g):
        batch, indexes = pooled
        k = GRAPHS.index(g)
        solo = GraphBatch([indexes[k]])
        assert solo.per_graph(solo.t_levels(True))[0] == batch.per_graph(
            batch.t_levels(True)
        )[k]
        assert solo.per_graph(solo.b_levels(True))[0] == batch.per_graph(
            batch.b_levels(True)
        )[k]
        assert solo.per_graph(solo.alap(True))[0] == batch.per_graph(
            batch.alap(True)
        )[k]

    def test_empty_batch(self):
        batch = GraphBatch([])
        assert batch.n_graphs == batch.n_nodes == batch.n_edges == 0
        assert batch.per_graph(batch.t_levels(True)) == []
        assert batch.per_graph(batch.b_levels(True)) == []
        assert batch.granularities() == []
        assert batch.serial_times() == []
        assert batch.weight_ranges() == []
        assert batch_analyze([]) == 0


# ----------------------------------------------------------------------
# classification metrics (paper section 3)
# ----------------------------------------------------------------------
class TestClassificationEquivalence:
    @pytest.fixture(scope="class")
    def pooled(self):
        return GraphBatch([GraphIndex(g) for g in GRAPHS])

    def test_granularities(self, pooled):
        got = pooled.granularities()
        for k, (name, g) in enumerate(CORPUS):
            try:
                expect = granularity(g.copy())  # fresh copy: unmemoized
            except GraphError:
                expect = None
            assert got[k] == expect, name

    def test_granularity_bands(self, pooled):
        grans = pooled.granularities()
        bands = pooled.granularity_bands()
        for gr, band in zip(grans, bands):
            assert band == (granularity_band(gr) if gr is not None else None)

    @pytest.mark.parametrize("include_sinks", [False, True])
    def test_anchors(self, pooled, include_sinks):
        got = pooled.anchors(include_sinks=include_sinks)
        for k, (name, g) in enumerate(CORPUS):
            try:
                expect = anchor_out_degree(g, include_sinks=include_sinks)
            except GraphError:
                expect = None
            assert got[k] == expect, name

    def test_weight_ranges(self, pooled):
        got = pooled.weight_ranges()
        for k, (name, g) in enumerate(CORPUS):
            try:
                expect = node_weight_range(g)
            except GraphError:
                expect = None
            assert got[k] == expect, name

    def test_serial_times(self, pooled):
        got = pooled.serial_times()
        for k, (name, g) in enumerate(CORPUS):
            assert got[k] == g.copy().serial_time(), name  # bitwise ==


# ----------------------------------------------------------------------
# batch_analyze: memo priming, skip logic, counters
# ----------------------------------------------------------------------
class TestBatchAnalyze:
    def test_primes_the_kernel_memo_keys(self):
        g = GRAPHS[2].copy()
        with use_batch(True), use_kernels(True):
            assert batch_analyze([g]) == 1
        for key in batch_mod._LEVEL_KEYS + (batch_mod._KEY_SERIAL,):
            assert g.has_cached(key)

    def test_primed_values_equal_lazy_values(self):
        g = GRAPHS[3]
        primed = g.copy()
        with use_batch(True), use_kernels(True):
            batch_analyze([primed])
            ref = _reference_levels(g)
            assert t_levels(primed, communication=True) == ref["t"]
            assert b_levels(primed, communication=True) == ref["b"]
            assert hu_levels(primed) == ref["hu"]
            assert alap_times(primed, communication=True) == ref["alap"]

    def test_dedup_and_already_primed_counters(self):
        g = GRAPHS[4].copy()
        registry = MetricsRegistry()
        with use_registry(registry), use_batch(True), use_kernels(True):
            assert batch_analyze([g, g, g]) == 1  # deduped by identity
            assert batch_analyze([g]) == 0  # memos already primed
        counters = registry.counters()
        assert counters["batch.batches"] == 1
        assert counters["batch.graphs"] == 1
        assert counters["batch.already_primed"] == 1
        assert counters["batch.nodes"] == g.n_tasks

    def test_compile_reuses_cached_index(self):
        # Satellite: batch compile must go through the graph_index LRU, so
        # a graph whose index is already compiled is a cache hit, not a
        # recompile.
        g = GRAPHS[5].copy()
        registry = MetricsRegistry()
        with use_registry(registry), use_batch(True), use_kernels(True):
            gi = graph_index(g)  # pre-compile
            batch_analyze([g])
            assert graph_index(g) is gi  # still the same compiled object
        counters = registry.counters()
        assert counters.get("kernels.cache.misses", 0) == 1  # the pre-compile
        assert counters.get("kernels.cache.hits", 0) >= 1

    def test_cyclic_graph_skipped_not_raised(self):
        cyc = TaskGraph()
        cyc.add_task("a", 1)
        cyc.add_task("b", 1)
        cyc.add_edge("a", "b", 1)
        cyc.add_edge("b", "a", 1)
        ok = GRAPHS[1].copy()
        with use_batch(True), use_kernels(True):
            assert batch_analyze([cyc, ok]) == 1  # cyclic graph skipped
            with pytest.raises(CycleError):
                t_levels(cyc)  # the on-demand path still reports it

    def test_cyclic_skip_is_surfaced_in_report_and_counter(self):
        # The skip must not be silent: the report names the skipped input
        # positions and the registry counts them, while the return value
        # still compares as the analyzed count (it is an int subclass).
        def _cycle() -> TaskGraph:
            cyc = TaskGraph()
            cyc.add_task("a", 1)
            cyc.add_task("b", 1)
            cyc.add_edge("a", "b", 1)
            cyc.add_edge("b", "a", 1)
            return cyc

        ok1, ok2 = GRAPHS[1].copy(), GRAPHS[2].copy()
        registry = MetricsRegistry()
        with use_registry(registry), use_batch(True), use_kernels(True):
            report = batch_analyze([_cycle(), ok1, _cycle(), ok2])
        assert isinstance(report, batch_mod.BatchReport)
        assert report == 2
        assert report.skipped == (0, 2)
        assert registry.counters()["batch.skipped_cyclic"] == 2

    def test_all_cyclic_report(self):
        def _cycle() -> TaskGraph:
            cyc = TaskGraph()
            cyc.add_task("a", 1)
            cyc.add_task("b", 1)
            cyc.add_edge("a", "b", 1)
            cyc.add_edge("b", "a", 1)
            return cyc

        with use_batch(True), use_kernels(True):
            report = batch_analyze([_cycle(), _cycle()])
        assert report == 0
        assert report.skipped == (0, 1)

    def test_report_when_disabled_or_empty(self):
        g = GRAPHS[3].copy()
        with use_batch(False):
            report = batch_analyze([g])
        assert report == 0 and report.skipped == ()
        with use_batch(True), use_kernels(True):
            report = batch_analyze([])
        assert report == 0 and report.skipped == ()

    def test_disabled_is_a_noop(self):
        g = GRAPHS[6].copy()
        with use_batch(False):
            assert batch_analyze([g]) == 0
        for key in batch_mod._LEVEL_KEYS:
            assert not g.has_cached(key)

    def test_mutation_invalidates_primed_memos(self):
        g = GRAPHS[7].copy()
        with use_batch(True), use_kernels(True):
            batch_analyze([g])
            assert g.has_cached(batch_mod._KEY_T)
            g.add_task("fresh", 1.0)
            assert not g.has_cached(batch_mod._KEY_T)
            # re-analyzing after mutation primes the new version
            assert batch_analyze([g]) == 1
            ref = _reference_levels(g)
            assert t_levels(g, communication=True) == ref["t"]


# ----------------------------------------------------------------------
# the REPRO_BATCH x REPRO_KERNELS matrix: four ways, one answer
# ----------------------------------------------------------------------
class TestFallbackMatrix:
    @pytest.mark.parametrize("kernels_on", [False, True], ids=["k0", "k1"])
    @pytest.mark.parametrize("batch_on", [False, True], ids=["b0", "b1"])
    def test_all_four_combinations_bit_identical(self, batch_on, kernels_on):
        results = []
        for name, g in CORPUS[:8] + _edge_case_graphs():
            work = g.copy()
            with use_batch(batch_on), use_kernels(kernels_on):
                batch_analyze([work])  # no-op unless both layers are on
                entry = {
                    "t": t_levels(work, communication=True),
                    "b": b_levels(work, communication=True),
                    "hu": hu_levels(work),
                    "alap": alap_times(work, communication=True),
                    "serial": work.serial_time(),
                }
                try:
                    entry["gran"] = granularity(work)
                except GraphError:
                    entry["gran"] = None
            results.append((name, entry))
        for name, entry in results:
            _, g = next(c for c in CORPUS if c[0] == name)
            ref = _reference_levels(g)
            assert entry["t"] == ref["t"], name
            assert entry["b"] == ref["b"], name
            assert entry["hu"] == ref["hu"], name
            assert entry["alap"] == ref["alap"], name


# ----------------------------------------------------------------------
# suite-runner byte identity, serial and --jobs 2
# ----------------------------------------------------------------------
class TestSuiteByteIdentity:
    @pytest.fixture(scope="class")
    def suite_and_scheds(self):
        from repro.generation.suites import generate_suite
        from repro.schedulers import get_scheduler

        suite = list(
            generate_suite(graphs_per_cell=1, seed=SEED, n_tasks_range=(10, 25))
        )
        scheds = [get_scheduler(n) for n in ("DSC", "MCP", "HU")]
        return suite, scheds

    @staticmethod
    def _fresh(suite):
        from repro.generation.suites import SuiteGraph

        return [
            SuiteGraph(cell=sg.cell, index=sg.index, graph=sg.graph.copy())
            for sg in suite
        ]

    def _run(self, suite, scheds, *, batch_on, jobs=1):
        from repro.experiments.kernelbench import _serialized
        from repro.experiments.runner import run_suite

        with use_batch(batch_on), use_kernels(True):
            results = run_suite(self._fresh(suite), scheds, seed=SEED, jobs=jobs)
        return _serialized(results)

    def test_serial_on_off_byte_identical(self, suite_and_scheds):
        suite, scheds = suite_and_scheds
        off = self._run(suite, scheds, batch_on=False)
        on = self._run(suite, scheds, batch_on=True)
        assert on == off

    def test_jobs2_byte_identical_to_serial_unbatched(self, suite_and_scheds):
        # Worker processes decide batching from their own environment, so
        # this holds whichever REPRO_BATCH the CI matrix leg exports.
        suite, scheds = suite_and_scheds
        ref = self._run(suite, scheds, batch_on=False)
        par = self._run(suite, scheds, batch_on=True, jobs=2)
        assert par == ref
