"""Statistical sanity checks on the random generators.

The suite's statistical integrity is what makes the paper's comparison
meaningful: node weights uniform in the configured range, granularity
targets spread across each band, graph sizes uniform in the requested
interval, and realized classifications exactly as labelled.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import anchor_out_degree, granularity
from repro.core.metrics import GRANULARITY_BANDS
from repro.generation.random_dag import generate_pdg, sample_target_granularity
from repro.generation.suites import SuiteCell, generate_suite


class TestWeightDistribution:
    def test_node_weights_span_the_range(self, rng):
        weights = []
        for _ in range(6):
            g = generate_pdg(
                rng, n_tasks=40, band=2, anchor=3, weight_range=(20, 100)
            )
            weights += [g.weight(t) for t in g.tasks()]
        weights = np.asarray(weights)
        assert weights.min() >= 20 and weights.max() <= 100
        # uniform(20, 100) has mean 60; allow generous sampling noise
        assert 50 < weights.mean() < 70
        # both halves of the range are populated
        assert (weights < 60).sum() > 0.25 * len(weights)
        assert (weights > 60).sum() > 0.25 * len(weights)

    def test_weights_are_integers(self, rng):
        g = generate_pdg(rng, n_tasks=30, band=1, anchor=2, weight_range=(20, 100))
        for t in g.tasks():
            assert g.weight(t) == int(g.weight(t))


class TestGranularityTargets:
    @pytest.mark.parametrize("band", range(5))
    def test_targets_spread_within_band(self, band, rng):
        lo, hi = GRANULARITY_BANDS[band]
        targets = [sample_target_granularity(band, rng) for _ in range(300)]
        assert all(lo <= t < hi for t in targets)
        spread = max(targets) / min(targets)
        assert spread > 1.5  # not collapsed onto one value

    def test_realized_matches_label_across_bands(self, rng):
        for band in range(5):
            g = generate_pdg(
                rng, n_tasks=35, band=band, anchor=2, weight_range=(20, 200)
            )
            lo, hi = GRANULARITY_BANDS[band]
            assert lo <= granularity(g) < hi


class TestSuiteComposition:
    def test_sizes_uniformish(self):
        cells = [SuiteCell(2, 2, (20, 100))]
        sizes = [
            sg.graph.n_tasks
            for sg in generate_suite(
                graphs_per_cell=30, cells=cells, n_tasks_range=(20, 40)
            )
        ]
        assert min(sizes) >= 20 and max(sizes) <= 40
        assert len(set(sizes)) > 8  # many distinct sizes drawn

    def test_every_cell_correctly_classified(self):
        cells = [
            SuiteCell(0, 2, (20, 100)),
            SuiteCell(2, 4, (20, 200)),
            SuiteCell(4, 5, (20, 400)),
        ]
        for sg in generate_suite(graphs_per_cell=3, cells=cells,
                                 n_tasks_range=(20, 35)):
            lo, hi = GRANULARITY_BANDS[sg.cell.band]
            assert lo <= granularity(sg.graph) < hi
            assert anchor_out_degree(sg.graph) == sg.cell.anchor

    def test_graphs_differ_within_cell(self):
        cells = [SuiteCell(3, 3, (20, 100))]
        graphs = [
            sg.graph
            for sg in generate_suite(graphs_per_cell=5, cells=cells,
                                     n_tasks_range=(20, 30))
        ]
        # no two identical graphs in a cell
        for i in range(len(graphs)):
            for j in range(i + 1, len(graphs)):
                assert graphs[i] != graphs[j]


class TestEdgeWeightStructure:
    def test_max_out_edge_tracks_node_weight(self, rng):
        """Per construction each non-sink's heaviest out-edge is about
        w_i / g_i with g_i scattered around the target."""
        target = 0.5
        g = generate_pdg(rng, n_tasks=40, band=2, anchor=3, weight_range=(20, 100))
        ratios = []
        for t in g.tasks():
            out = g.out_edges(t)
            if out:
                ratios.append(g.weight(t) / max(out.values()))
        mean_ratio = sum(ratios) / len(ratios)
        lo, hi = GRANULARITY_BANDS[2]
        assert lo <= mean_ratio < hi  # the paper-formula granularity itself

    def test_secondary_edges_lighter_than_max(self, rng):
        g = generate_pdg(rng, n_tasks=40, band=3, anchor=4, weight_range=(20, 100))
        for t in g.tasks():
            out = list(g.out_edges(t).values())
            if len(out) >= 2:
                mx = max(out)
                assert all(e <= mx + 1e-9 for e in out)
                assert all(e >= 0.3 * mx - 1e-9 for e in out)
