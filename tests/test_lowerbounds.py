"""Tests for makespan lower bounds."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import GraphError, TaskGraph, paper_schedulers
from repro.core.lowerbounds import best_bound, cp_bound, density_bound, work_bound
from repro.schedulers import BoundedScheduler

from conftest import task_graphs


class TestCpBound:
    def test_chain(self, chain5):
        assert cp_bound(chain5) == 50.0  # communication-free

    def test_diamond(self, diamond):
        assert cp_bound(diamond) == 30.0

    def test_empty(self):
        assert cp_bound(TaskGraph()) == 0.0


class TestWorkBound:
    def test_unbounded_is_max_task(self, paper_example):
        assert work_bound(paper_example) == 50.0

    def test_bounded(self, paper_example):
        assert work_bound(paper_example, 2) == 75.0
        assert work_bound(paper_example, 5) == 30.0

    def test_bad_p(self, paper_example):
        with pytest.raises(GraphError):
            work_bound(paper_example, 0)


class TestDensityBound:
    def test_at_least_cp(self, paper_example, diamond, wide_fork):
        for g in (paper_example, diamond, wide_fork):
            for p in (1, 2, 3):
                assert density_bound(g, p) >= cp_bound(g) - 1e-9

    def test_wide_antichain_on_few_procs(self):
        """Six 10-unit independent tasks on 2 processors need >= 30."""
        g = TaskGraph()
        for i in range(6):
            g.add_task(i, 10)
        assert density_bound(g, 2) == pytest.approx(30.0)
        assert density_bound(g, 6) == pytest.approx(10.0)

    def test_chain_density_is_cp(self, chain5):
        assert density_bound(chain5, 2) == pytest.approx(cp_bound(chain5))

    def test_bad_p(self, diamond):
        with pytest.raises(GraphError):
            density_bound(diamond, 0)

    def test_empty(self):
        assert density_bound(TaskGraph(), 2) == 0.0


class TestBestBound:
    def test_takes_max(self):
        g = TaskGraph()
        for i in range(6):
            g.add_task(i, 10)
        # cp = 10, work/2 = 30, density = 30
        assert best_bound(g, 2) == pytest.approx(30.0)

    def test_unbounded(self, paper_example):
        assert best_bound(paper_example) == pytest.approx(
            max(cp_bound(paper_example), 50.0)
        )


class TestBoundsAreSound:
    """The whole point: no schedule anywhere may beat the bounds."""

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=40, deadline=None)
    def test_unbounded_schedules_dominate_bounds(self, g):
        lb = best_bound(g)
        for sched in paper_schedulers():
            assert sched.schedule(g).makespan >= lb - 1e-9

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=30, deadline=None)
    def test_bounded_schedules_dominate_bounds(self, g):
        for p in (1, 2):
            lb = best_bound(g, p)
            s = BoundedScheduler("MCP", p).schedule(g)
            assert s.makespan >= lb - 1e-9
