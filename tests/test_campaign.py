"""Tests for the distributed campaign tier (repro.campaign).

Covers the PR's acceptance scenarios: deterministic digest-keyed
sharding; an in-process coordinator + multi-worker run whose merged
result is byte-identical to a serial ``run_suite``; a worker SIGKILLed
mid-unit whose lease expires and whose unit is re-executed exactly once
more; duplicate-delivery dedup; poison-unit quarantine with first-class
``kind="poison"`` failure records; and coordinator kill/resume from the
journal — including a torn trailing journal line.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.campaign import (
    CampaignCoordinator,
    CampaignJournal,
    CampaignServer,
    CampaignSpec,
    WorkUnit,
    campaign_suite,
    run_worker,
    unit_graphs,
)
from repro.experiments.persistence import save_results
from repro.experiments.runner import run_suite
from repro.service.client import ServiceClient, ServiceError

# A tiny two-cell campaign: 2 cells x 4 graphs = 8 graphs, unit_size=2
# -> 4 units.  Small graphs keep the whole file fast.
SPEC = CampaignSpec(
    graphs_per_cell=4,
    seed=1107,
    n_tasks_range=(8, 14),
    cells=((1, 2, (20, 100)), (3, 4, (20, 400))),
    unit_size=2,
)


def _serial_bytes(tmp_path, spec=SPEC):
    path = tmp_path / "serial.json"
    save_results(
        run_suite(campaign_suite(spec), None, seed=spec.seed, on_error="record"),
        path,
    )
    return path.read_bytes()


def _merged_bytes(tmp_path, coordinator):
    path = tmp_path / "merged.json"
    save_results(coordinator.merge(), path)
    return path.read_bytes()


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------
class TestSharding:
    def test_units_cover_suite_in_order(self):
        units = SPEC.units()
        assert [u.unit_id for u in units] == [f"u{i:05d}" for i in range(4)]
        ids = [gid for u in units for gid in u.graph_ids()]
        assert ids == [sg.graph_id for sg in campaign_suite(SPEC)]

    def test_unit_digests_bind_spec(self):
        other = CampaignSpec(
            graphs_per_cell=4,
            seed=SPEC.seed + 1,
            n_tasks_range=SPEC.n_tasks_range,
            cells=SPEC.cells,
            unit_size=2,
        )
        ours = {u.digest for u in SPEC.units()}
        theirs = {u.digest for u in other.units()}
        assert not ours & theirs

    def test_unit_graphs_match_serial_slice(self):
        serial = campaign_suite(SPEC)
        for unit in SPEC.units():
            regenerated = unit_graphs(SPEC, unit)
            expected = [sg for sg in serial if sg.graph_id in set(unit.graph_ids())]
            assert [sg.graph_id for sg in regenerated] == [
                sg.graph_id for sg in expected
            ]
            for a, b in zip(regenerated, expected):
                assert a.graph.to_dict() == b.graph.to_dict()

    def test_spec_round_trip_preserves_digest(self):
        assert CampaignSpec.from_dict(SPEC.to_dict()).digest() == SPEC.digest()

    def test_unit_round_trip(self):
        unit = SPEC.units()[2]
        assert WorkUnit.from_dict(unit.to_dict()) == unit


# ----------------------------------------------------------------------
# in-process end-to-end
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_three_workers_merge_byte_identical(self, tmp_path):
        coord = CampaignCoordinator.create(SPEC, tmp_path / "c.jsonl", lease_ttl=10.0)
        server = CampaignServer(coord, ("127.0.0.1", 0))
        server.start()
        try:
            threads = [
                threading.Thread(
                    target=run_worker,
                    kwargs=dict(
                        address=server.bound_address,
                        worker_id=f"w{i}",
                        patience=15.0,
                    ),
                )
                for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
        finally:
            server.stop()
        assert coord.done
        assert _merged_bytes(tmp_path, coord) == _serial_bytes(tmp_path)
        # every unit computed exactly once: no reschedules were needed
        assert all(n == 1 for n in coord.attempts.values())

    def test_status_and_health_verbs(self, tmp_path):
        coord = CampaignCoordinator.create(SPEC, tmp_path / "c.jsonl")
        server = CampaignServer(coord, ("127.0.0.1", 0))
        server.start()
        try:
            with ServiceClient(server.bound_address) as client:
                health = client.call("health")
                assert health["role"] == "campaign" and not health["done"]
                status = client.call("campaign.status")
                assert status["n_units"] == 4 and status["completed"] == 0
                stats = client.call("stats")
                assert stats["campaign"]["n_units"] == 4
                with pytest.raises(ServiceError) as exc_info:
                    client.call("schedule", {"heuristic": "HU"})
                assert exc_info.value.code == 400
        finally:
            server.stop()


# ----------------------------------------------------------------------
# lease semantics
# ----------------------------------------------------------------------
class TestLeases:
    def test_sigkill_mid_unit_reschedules_only_lost_unit(self, tmp_path):
        """A worker killed -9 while holding a lease loses exactly that
        unit; it is re-granted after expiry and the merge still matches
        the serial run byte for byte."""
        coord = CampaignCoordinator.create(SPEC, tmp_path / "c.jsonl", lease_ttl=1.0)
        server = CampaignServer(coord, ("127.0.0.1", 0))
        server.start()
        try:
            host, port = server.bound_address
            env = dict(
                os.environ,
                PYTHONPATH=os.pathsep.join(sys.path),
                REPRO_CAMPAIGN_UNIT_DELAY="30",
            )
            victim = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "campaign", "worker",
                    "--host", host, "--port", str(port), "--worker-id", "victim",
                ],
                env=env,
            )
            deadline = time.monotonic() + 20.0
            while not coord.leases and time.monotonic() < deadline:
                time.sleep(0.05)
            assert coord.leases, "victim never leased a unit"
            lost_unit = next(iter(coord.leases))
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10.0)

            # survivor finishes everything once the dead lease expires
            run_worker(
                address=server.bound_address, worker_id="survivor", patience=30.0
            )
        finally:
            server.stop()
        assert coord.done
        assert coord.attempts[lost_unit] == 2  # granted to victim, then survivor
        others = {u: n for u, n in coord.attempts.items() if u != lost_unit}
        assert set(others.values()) == {1}
        assert _merged_bytes(tmp_path, coord) == _serial_bytes(tmp_path)

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        coord = CampaignCoordinator.create(SPEC, tmp_path / "c.jsonl", lease_ttl=0.3)
        grant = coord.lease("w0")
        uid = grant["unit"]["index"]
        unit_id = f"u{uid:05d}"
        for _ in range(4):
            time.sleep(0.15)
            assert coord.heartbeat("w0", unit_id)["ok"]
            coord.expire_leases()
        assert unit_id in coord.leases  # still held after 2x ttl of wall time
        time.sleep(0.4)  # stop heartbeating: now it expires
        coord.expire_leases()
        assert unit_id not in coord.leases

    def test_duplicate_delivery_deduplicated(self, tmp_path):
        coord = CampaignCoordinator.create(SPEC, tmp_path / "c.jsonl", lease_ttl=10.0)
        grant = coord.lease("w0")
        unit = WorkUnit.from_dict(grant["unit"])
        result = run_suite(
            unit_graphs(SPEC, unit), None, seed=SPEC.seed, on_error="record"
        )
        from repro.experiments.persistence import result_to_dict

        payload = dict(
            worker="w0",
            unit_id=unit.unit_id,
            digest=unit.digest,
            results=[result_to_dict(r) for r in result],
            failures=[],
        )
        first = coord.submit(**payload)
        assert first["accepted"] and not first["duplicate"]
        second = coord.submit(**dict(payload, worker="w1"))
        assert not second["accepted"] and second["duplicate"]
        # journal holds exactly one unit record
        lines = (tmp_path / "c.jsonl").read_text().splitlines()
        assert sum(1 for l in lines if json.loads(l)["type"] == "unit") == 1

    def test_submit_digest_mismatch_rejected(self, tmp_path):
        from repro.service.protocol import ProtocolError

        coord = CampaignCoordinator.create(SPEC, tmp_path / "c.jsonl")
        unit = coord.units[0]
        with pytest.raises(ProtocolError, match="digest mismatch"):
            coord.submit("w0", unit.unit_id, "0" * 64, [], [])

    def test_submit_wrong_graphs_rejected(self, tmp_path):
        """A delivery whose graph-id set does not exactly match the
        unit's graphs is a protocol error, even when the cardinality
        happens to line up (duplicated result masking a missing one)."""
        from repro.experiments.persistence import result_to_dict
        from repro.service.protocol import ProtocolError

        coord = CampaignCoordinator.create(SPEC, tmp_path / "c.jsonl")
        grant = coord.lease("w0")
        unit = WorkUnit.from_dict(grant["unit"])
        result = run_suite(
            unit_graphs(SPEC, unit), None, seed=SPEC.seed, on_error="record"
        )
        payload = [result_to_dict(r) for r in result]
        # same length as the unit, but one graph duplicated / one missing
        bogus = [payload[0]] * len(payload)
        with pytest.raises(ProtocolError, match="do not match"):
            coord.submit("w0", unit.unit_id, unit.digest, bogus, [])
        # results from a different unit: right count, wrong graph ids
        other = WorkUnit.from_dict(coord.lease("w0")["unit"])
        with pytest.raises(ProtocolError, match="do not match"):
            coord.submit("w0", other.unit_id, other.digest, payload, [])
        assert not coord.completed  # nothing corrupt was merged
        valid = coord.submit("w0", unit.unit_id, unit.digest, payload, [])
        assert valid["accepted"]

    def test_poison_unit_quarantined(self, tmp_path):
        """A unit whose lease keeps expiring burns its attempt budget and
        is quarantined with per-graph poison failure records."""
        spec = CampaignSpec(
            graphs_per_cell=2,
            seed=SPEC.seed,
            n_tasks_range=SPEC.n_tasks_range,
            cells=(SPEC.cells[0],),
            unit_size=2,
            max_attempts=2,
        )
        clock = [0.0]
        coord = CampaignCoordinator(
            spec,
            CampaignJournal(tmp_path / "c.jsonl"),
            lease_ttl=1.0,
            clock=lambda: clock[0],
        )
        coord.journal.write_header(spec)
        for attempt in (1, 2):
            grant = coord.lease("crashy")
            assert grant["status"] == "granted" and grant["attempt"] == attempt
            clock[0] += 2.0  # lease expires, no delivery
        # an innocent bystander's lease request triggers retirement; the
        # quarantine must still be attributed to the worker whose lease
        # last burned, not the bystander
        final = coord.lease("bystander")
        assert final["status"] == "done"
        assert coord.quarantined == {"u00000"}
        quarantine_records = [
            json.loads(l)
            for l in (tmp_path / "c.jsonl").read_text().splitlines()
            if json.loads(l)["type"] == "quarantine"
        ]
        assert [q["worker"] for q in quarantine_records] == ["crashy"]
        merged = coord.merge()
        assert len(merged) == 0
        assert len(merged.failures) == 2  # one poison record per graph
        assert {fr.kind for fr in merged.failures} == {"poison"}
        assert all(fr.attempts == 2 for fr in merged.failures)
        assert {fr.graph_id for fr in merged.failures} == set(
            coord.units[0].graph_ids()
        )

    def test_quarantine_attempts_survive_coordinator_restart(self, tmp_path):
        spec = CampaignSpec(
            graphs_per_cell=2,
            seed=SPEC.seed,
            n_tasks_range=SPEC.n_tasks_range,
            cells=(SPEC.cells[0],),
            unit_size=2,
            max_attempts=2,
        )
        clock = [0.0]
        coord = CampaignCoordinator.create(spec, tmp_path / "c.jsonl", lease_ttl=1.0)
        coord._clock = lambda: clock[0]
        assert coord.lease("w0")["status"] == "granted"
        # coordinator "crashes" here; the grant is journaled
        coord2 = CampaignCoordinator(
            spec,
            CampaignJournal(tmp_path / "c.jsonl"),
            lease_ttl=1.0,
            state=CampaignJournal(tmp_path / "c.jsonl").load(),
            clock=lambda: clock[0],
        )
        assert coord2.attempts == {"u00000": 1}
        assert coord2.lease("w1")["attempt"] == 2
        clock[0] += 2.0
        assert coord2.lease("w1")["status"] == "done"  # quarantined, not re-granted
        assert coord2.quarantined == {"u00000"}


# ----------------------------------------------------------------------
# coordinator crash / resume
# ----------------------------------------------------------------------
class TestResume:
    def test_resume_from_journal_byte_identical(self, tmp_path):
        journal = tmp_path / "c.jsonl"
        coord = CampaignCoordinator.create(SPEC, journal, lease_ttl=5.0)
        server = CampaignServer(coord, ("127.0.0.1", 0))
        server.start()
        try:
            done = run_worker(
                address=server.bound_address,
                worker_id="w0",
                patience=15.0,
                max_units=2,
            )
        finally:
            server.stop()
        assert done == 2 and not coord.done

        resumed = CampaignCoordinator.resume(journal, lease_ttl=5.0)
        assert len(resumed.completed) == 2
        server2 = CampaignServer(resumed, ("127.0.0.1", 0))
        server2.start()
        try:
            run_worker(
                address=server2.bound_address, worker_id="w1", patience=15.0
            )
        finally:
            server2.stop()
        assert resumed.done
        # completed units were never re-granted
        assert all(n == 1 for n in resumed.attempts.values())
        assert _merged_bytes(tmp_path, resumed) == _serial_bytes(tmp_path)

    def test_resume_tolerates_torn_trailing_line(self, tmp_path):
        journal = tmp_path / "c.jsonl"
        coord = CampaignCoordinator.create(SPEC, journal, lease_ttl=5.0)
        server = CampaignServer(coord, ("127.0.0.1", 0))
        server.start()
        try:
            run_worker(
                address=server.bound_address,
                worker_id="w0",
                patience=15.0,
                max_units=1,
            )
        finally:
            server.stop()
        # simulate a crash mid-append: truncate the last record in half
        raw = journal.read_bytes()
        journal.write_bytes(raw[: len(raw) - len(raw.splitlines(True)[-1]) // 2])

        resumed = CampaignCoordinator.resume(journal, lease_ttl=5.0)
        # the torn unit record is discarded; its unit is simply redone
        assert len(resumed.completed) == 0
        server2 = CampaignServer(resumed, ("127.0.0.1", 0))
        server2.start()
        try:
            run_worker(
                address=server2.bound_address, worker_id="w1", patience=15.0
            )
        finally:
            server2.stop()
        assert resumed.done
        assert _merged_bytes(tmp_path, resumed) == _serial_bytes(tmp_path)

    def test_straggler_delivery_after_quarantine_survives_resume(self, tmp_path):
        """A late delivery un-quarantines a unit in the live coordinator;
        journal replay must agree.  (Regression: replay used to keep the
        unit in *both* completed and quarantined, so a resumed campaign
        double-counted it in done() and could declare victory with other
        units never computed — silently dropped from the merge.)"""
        from repro.experiments.persistence import result_to_dict

        spec = CampaignSpec(
            graphs_per_cell=4,
            seed=SPEC.seed,
            n_tasks_range=SPEC.n_tasks_range,
            cells=(SPEC.cells[0],),
            unit_size=2,
            max_attempts=1,
        )  # two units
        journal = tmp_path / "c.jsonl"
        clock = [0.0]
        coord = CampaignCoordinator.create(spec, journal, lease_ttl=1.0)
        coord._clock = lambda: clock[0]
        unit = WorkUnit.from_dict(coord.lease("slow")["unit"])
        clock[0] += 2.0  # slow's lease expires with no delivery
        # the next lease call retires u00000 (attempt budget burned) and
        # grants u00001
        unit2 = WorkUnit.from_dict(coord.lease("w1")["unit"])
        assert coord.quarantined == {unit.unit_id}
        # the straggler finally delivers the quarantined unit
        result = run_suite(
            unit_graphs(spec, unit), None, seed=spec.seed, on_error="record"
        )
        accepted = coord.submit(
            "slow",
            unit.unit_id,
            unit.digest,
            [result_to_dict(r) for r in result],
            [],
        )
        assert accepted["accepted"] and unit.unit_id not in coord.quarantined
        assert not coord.done  # u00001 still pending

        # coordinator restart: replay must match the live state machine
        resumed = CampaignCoordinator.resume(journal, lease_ttl=5.0)
        assert unit.unit_id in resumed.completed
        assert unit.unit_id not in resumed.quarantined
        assert not resumed.done  # the bug double-counted u00000 here
        result2 = run_suite(
            unit_graphs(spec, unit2), None, seed=spec.seed, on_error="record"
        )
        resumed.submit(
            "w2",
            unit2.unit_id,
            unit2.digest,
            [result_to_dict(r) for r in result2],
            [],
        )
        assert resumed.done
        # the merge is complete and byte-identical — no unit silently
        # missing, no poison records for a unit that was delivered
        assert _merged_bytes(tmp_path, resumed) == _serial_bytes(tmp_path, spec)

    def test_resume_requires_header(self, tmp_path):
        path = tmp_path / "not-a-campaign.jsonl"
        path.write_text('{"type": "grant", "v": 1, "unit_id": "u00000", '
                        '"worker": "w", "attempt": 1}\n')
        with pytest.raises(ValueError, match="no campaign header"):
            CampaignCoordinator.resume(path)

    def test_create_refuses_existing_journal(self, tmp_path):
        path = tmp_path / "c.jsonl"
        CampaignCoordinator.create(SPEC, path)
        with pytest.raises(ValueError, match="already exists"):
            CampaignCoordinator.create(SPEC, path)

    def test_journal_rejects_foreign_spec(self, tmp_path):
        path = tmp_path / "c.jsonl"
        coord = CampaignCoordinator.create(SPEC, path, lease_ttl=5.0)
        other = CampaignSpec(
            graphs_per_cell=1,
            seed=2,
            n_tasks_range=(8, 10),
            cells=(SPEC.cells[0],),
            unit_size=1,
        )
        # journal a completion for a unit the other spec doesn't have
        grant = coord.lease("w0")
        unit = WorkUnit.from_dict(grant["unit"])
        result = run_suite(
            unit_graphs(SPEC, unit), None, seed=SPEC.seed, on_error="record"
        )
        from repro.experiments.persistence import result_to_dict

        coord.submit(
            "w0",
            unit.unit_id,
            unit.digest,
            [result_to_dict(r) for r in result],
            [],
        )
        state = CampaignJournal(path).load()
        # completing u00000 is fine for `other` structurally, but a spec
        # with fewer units than the journal references must be refused
        tiny = CampaignJournal(path).load()
        tiny.completed = {"u00099": next(iter(state.completed.values()))}
        with pytest.raises(ValueError, match="different campaign"):
            CampaignCoordinator(other, CampaignJournal(path), state=tiny)


# ----------------------------------------------------------------------
# wire-protocol boundaries
# ----------------------------------------------------------------------
class TestProtocolBoundaries:
    def test_campaign_ops_rejected_by_scheduling_daemon(self):
        from repro.service import ServerThread

        with ServerThread(port=0) as st:
            with ServiceClient(st.address) as client:
                with pytest.raises(ServiceError) as exc_info:
                    client.call("campaign.lease", {"worker": "w0"})
        assert exc_info.value.code == 400
        assert "campaign coordinator" in exc_info.value.message

    def test_unknown_campaign_verbs_still_rejected(self):
        from repro.service.protocol import ProtocolError, decode_request

        with pytest.raises(ProtocolError):
            decode_request('{"op": "campaign.bogus", "params": {}}')
