"""Tests for the experiment runner."""

from __future__ import annotations

import pytest

from repro import get_scheduler
from repro.experiments.runner import PAPER_HEURISTIC_ORDER, evaluate_graph, run_suite
from repro.generation.suites import SuiteCell, generate_suite


@pytest.fixture(scope="module")
def small_suite():
    cells = [SuiteCell(0, 2, (20, 100)), SuiteCell(4, 3, (20, 100))]
    return list(generate_suite(graphs_per_cell=2, cells=cells, n_tasks_range=(15, 25)))


class TestEvaluateGraph:
    def test_all_heuristics_present(self, paper_example):
        out = evaluate_graph(paper_example, [get_scheduler(n) for n in PAPER_HEURISTIC_ORDER])
        assert set(out) == set(PAPER_HEURISTIC_ORDER)
        for r in out.values():
            assert r.parallel_time > 0
            assert r.n_processors >= 1

    def test_validation_flag(self, paper_example):
        # just exercises the validate path; all real schedules must pass
        evaluate_graph(paper_example, [get_scheduler("DSC")], validate=True)

    def test_known_values(self, paper_example):
        out = evaluate_graph(paper_example, [get_scheduler("CLANS")])
        assert out["CLANS"].parallel_time == pytest.approx(130.0)
        assert out["CLANS"].n_processors == 2


class TestRunSuite:
    def test_produces_one_result_per_graph(self, small_suite):
        results = run_suite(small_suite)
        assert len(results) == len(small_suite)
        for gr in results:
            assert set(gr.results) == set(PAPER_HEURISTIC_ORDER)

    def test_classification_carried(self, small_suite):
        results = run_suite(small_suite)
        bands = {gr.band for gr in results}
        assert bands == {0, 4}
        for gr in results:
            assert gr.serial_time > 0
            assert gr.granularity > 0

    def test_progress_callback(self, small_suite):
        seen = []
        run_suite(small_suite, progress=lambda i, gr: seen.append(i))
        assert seen == list(range(1, len(small_suite) + 1))

    def test_custom_scheduler_list(self, small_suite):
        results = run_suite(small_suite, [get_scheduler("SERIAL")])
        for gr in results:
            assert set(gr.results) == {"SERIAL"}
            assert gr.results["SERIAL"].parallel_time == pytest.approx(gr.serial_time)
