"""Cross-cutting scheduler tests: every heuristic, shared contracts."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import (
    GraphError,
    TaskGraph,
    get_scheduler,
    paper_schedulers,
)
from repro.core.analysis import critical_path_length
from repro.schedulers import SCHEDULER_REGISTRY

from conftest import task_graphs

ALL_NAMES = ["CLANS", "DSC", "MCP", "MH", "HU", "ETF", "SERIAL"]


@pytest.fixture(params=ALL_NAMES)
def scheduler(request):
    return get_scheduler(request.param)


class TestRegistry:
    def test_paper_schedulers_order(self):
        names = [s.name for s in paper_schedulers()]
        assert names == ["CLANS", "DSC", "MCP", "MH", "HU"]

    def test_lookup_case_insensitive(self):
        assert get_scheduler("clans").name == "CLANS"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="known"):
            get_scheduler("NOPE")

    def test_registry_contents(self):
        for name in ALL_NAMES + ["OPT"]:
            assert name in SCHEDULER_REGISTRY

    def test_repr(self):
        assert "DSCScheduler" in repr(get_scheduler("DSC"))


class TestSharedContract:
    def test_empty_graph_rejected(self, scheduler):
        with pytest.raises(GraphError):
            scheduler.schedule(TaskGraph())

    def test_single_task(self, scheduler, single):
        s = scheduler.schedule(single)
        s.validate(single)
        assert s.makespan == 7.0
        assert s.n_processors == 1

    @pytest.mark.parametrize(
        "fixture", ["paper_example", "diamond", "chain5", "two_sources_join", "wide_fork"]
    )
    def test_valid_on_zoo(self, scheduler, fixture, request):
        g = request.getfixturevalue(fixture)
        s = scheduler.schedule(g)
        s.validate(g)

    def test_deterministic(self, scheduler, paper_example):
        a = scheduler.schedule(paper_example)
        b = scheduler.schedule(paper_example)
        assert a.makespan == b.makespan
        for t in paper_example.tasks():
            assert a[t] == b[t]

    def test_zero_weight_tasks_ok(self, scheduler):
        g = TaskGraph()
        g.add_task("a", 0)
        g.add_task("b", 5)
        g.add_edge("a", "b", 2)
        s = scheduler.schedule(g)
        s.validate(g)

    def test_disconnected_components(self, scheduler):
        g = TaskGraph()
        for i in range(4):
            g.add_task(i, 10)
        g.add_edge(0, 1, 3)
        g.add_edge(2, 3, 3)
        s = scheduler.schedule(g)
        s.validate(g)

    def test_input_graph_not_mutated(self, scheduler, paper_example):
        before = paper_example.copy()
        scheduler.schedule(paper_example)
        assert paper_example == before


class TestPropertyAllSchedulers:
    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=50, deadline=None)
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_always_valid(self, name, g):
        s = get_scheduler(name).schedule(g)
        s.validate(g)

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=40, deadline=None)
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_makespan_at_least_comm_free_cp(self, name, g):
        """No schedule can beat the communication-free critical path."""
        s = get_scheduler(name).schedule(g)
        assert s.makespan >= critical_path_length(g, communication=False) - 1e-9

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=40, deadline=None)
    def test_clans_never_retards(self, g):
        s = get_scheduler("CLANS").schedule(g)
        assert s.makespan <= g.serial_time() + 1e-9
