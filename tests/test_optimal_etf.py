"""Tests for the brute-force optimal oracle and ETF baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import ETFScheduler, GraphError, OptimalScheduler, TaskGraph, paper_schedulers

from conftest import task_graphs


class TestOptimal:
    def test_refuses_large_graphs(self, rng):
        g = TaskGraph()
        for i in range(11):
            g.add_task(i, 1)
        with pytest.raises(GraphError, match="exponential"):
            OptimalScheduler().schedule(g)

    def test_single(self, single):
        s = OptimalScheduler().schedule(single)
        assert s.makespan == 7.0

    def test_exact_on_diamond(self, diamond):
        # best found: a,b on P0; c on P1 at 14 (done 24); d follows c on
        # P1 at 24 (b's message lands exactly then) -> makespan 34.
        s = OptimalScheduler().schedule(diamond)
        s.validate(diamond)
        assert s.makespan == pytest.approx(34.0)

    def test_independent_tasks_fully_parallel(self):
        g = TaskGraph()
        for i in range(4):
            g.add_task(i, 10)
        s = OptimalScheduler().schedule(g)
        assert s.makespan == 10.0
        assert s.n_processors == 4

    def test_heavy_comm_serializes(self, two_sources_join):
        s = OptimalScheduler().schedule(two_sources_join)
        assert s.makespan == two_sources_join.serial_time()

    @given(g=task_graphs(min_tasks=1, max_tasks=6))
    @settings(max_examples=40, deadline=None)
    def test_never_beaten_by_heuristics(self, g):
        """The oracle lower-bounds every heuristic (within non-delay class)."""
        opt = OptimalScheduler().schedule(g)
        opt.validate(g)
        for sched in paper_schedulers():
            h = sched.schedule(g)
            assert opt.makespan <= h.makespan + 1e-9

    @given(g=task_graphs(min_tasks=1, max_tasks=6))
    @settings(max_examples=30, deadline=None)
    def test_never_worse_than_serial(self, g):
        opt = OptimalScheduler().schedule(g)
        assert opt.makespan <= g.serial_time() + 1e-9


class TestETF:
    def test_valid_on_zoo(self, paper_example, diamond, chain5, wide_fork):
        for g in (paper_example, diamond, chain5, wide_fork):
            s = ETFScheduler().schedule(g)
            s.validate(g)

    def test_earliest_pair_wins(self):
        """ETF picks the globally earliest-starting ready task."""
        g = TaskGraph()
        g.add_task("late", 10)  # ready at 0 but let's give it a pred
        g.add_task("early", 5)
        s = ETFScheduler().schedule(g)
        assert s.start("late") == 0.0
        assert s.start("early") == 0.0

    def test_keeps_heavy_comm_local(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 10)
        g.add_edge("a", "b", 1000)
        s = ETFScheduler().schedule(g)
        assert s.processor_of("a") == s.processor_of("b")

    def test_competitive_with_mh(self, wide_fork):
        from repro import MHScheduler

        etf = ETFScheduler().schedule(wide_fork)
        mh = MHScheduler().schedule(wide_fork)
        # dynamic priorities should not be drastically worse here
        assert etf.makespan <= mh.makespan * 1.5 + 1e-9
