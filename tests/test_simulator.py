"""Unit tests for the shared execution-timing simulator."""

from __future__ import annotations

import pytest

from repro import ScheduleError, TaskGraph, serial_schedule, simulate_clustering, simulate_ordered


class TestSimulateOrdered:
    def test_single_cluster_is_serial(self, chain5):
        s = simulate_ordered(chain5, [list(range(5))])
        assert s.makespan == chain5.serial_time()
        s.validate(chain5)

    def test_cross_cluster_pays_comm(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 20)
        g.add_edge("a", "b", 5)
        s = simulate_ordered(g, [["a"], ["b"]])
        assert s.start("b") == 15.0
        assert s.makespan == 35.0

    def test_same_cluster_no_comm(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 20)
        g.add_edge("a", "b", 5)
        s = simulate_ordered(g, [["a", "b"]])
        assert s.start("b") == 10.0

    def test_waits_for_processor(self, diamond):
        # b and c share a's cluster: c must queue behind b
        s = simulate_ordered(diamond, [["a", "b", "c", "d"]])
        assert s.start("c") == 20.0
        s.validate(diamond)

    def test_multicast_overlaps(self, diamond):
        # b and c on separate clusters both get a's data at 10 + 4
        s = simulate_ordered(diamond, [["a", "b", "d"], ["c"]])
        assert s.start("b") == 10.0
        assert s.start("c") == 14.0
        # d waits for c's message: 24 + 4 = 28
        assert s.start("d") == 28.0
        s.validate(diamond)

    def test_duplicate_task_rejected(self, diamond):
        with pytest.raises(ScheduleError, match="more than one"):
            simulate_ordered(diamond, [["a", "b"], ["b", "c", "d"]])

    def test_missing_task_rejected(self, diamond):
        with pytest.raises(ScheduleError, match="not clustered"):
            simulate_ordered(diamond, [["a", "b", "c"]])

    def test_unknown_task_rejected(self, diamond):
        with pytest.raises(ScheduleError, match="unknown"):
            simulate_ordered(diamond, [["a", "b", "c", "d", "zzz"]])

    def test_deadlock_detected(self):
        g = TaskGraph()
        for t in "abcd":
            g.add_task(t, 1)
        g.add_edge("a", "b", 0)
        g.add_edge("c", "d", 0)
        # cluster orders b-before-c and d-before-a close a cycle
        with pytest.raises(ScheduleError, match="deadlock"):
            simulate_ordered(g, [["b", "c"], ["d", "a"]])

    def test_empty_cluster_allowed(self, single):
        s = simulate_ordered(single, [["only"], []])
        assert s.makespan == 7.0


class TestSimulateClustering:
    def test_assignment_respected(self, diamond):
        s = simulate_clustering(diamond, {"a": 0, "b": 0, "c": 1, "d": 0})
        assert s.processor_of("c") != s.processor_of("a")
        s.validate(diamond)

    def test_processor_ids_normalized(self, diamond):
        s = simulate_clustering(diamond, {"a": 7, "b": 7, "c": 99, "d": 7})
        assert set(s.processors) == {0, 1}

    def test_never_deadlocks(self, paper_example):
        # any assignment must simulate fine (orders derive from one topo order)
        s = simulate_clustering(
            paper_example, {1: 0, 2: 1, 3: 0, 4: 1, 5: 0}
        )
        s.validate(paper_example)

    def test_incomplete_assignment_rejected(self, diamond):
        with pytest.raises(ScheduleError):
            simulate_clustering(diamond, {"a": 0})

    def test_priority_orders_cluster(self, diamond):
        # with priority forcing c first, c precedes b on the shared processor
        prio = {"a": 10, "b": 1, "c": 5, "d": 0}
        s = simulate_clustering(diamond, {t: 0 for t in diamond.tasks()}, priority=prio)
        assert s.start("c") < s.start("b")


class TestSerialSchedule:
    def test_uses_one_processor(self, paper_example):
        s = serial_schedule(paper_example)
        assert s.n_processors == 1
        assert s.makespan == paper_example.serial_time()
        s.validate(paper_example)

    def test_speedup_is_one(self, paper_example):
        assert serial_schedule(paper_example).speedup(paper_example) == pytest.approx(1.0)
