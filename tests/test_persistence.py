"""Tests for suite/result persistence."""

from __future__ import annotations

import pytest

from repro.experiments.persistence import (
    load_results,
    load_suite,
    results_to_csv,
    save_results,
    save_suite,
)
from repro.experiments.runner import run_suite
from repro.generation.suites import SuiteCell, generate_suite


@pytest.fixture(scope="module")
def suite():
    cells = [SuiteCell(1, 2, (20, 100)), SuiteCell(3, 4, (20, 400))]
    return list(generate_suite(graphs_per_cell=2, cells=cells, n_tasks_range=(12, 18)))


@pytest.fixture(scope="module")
def results(suite):
    return run_suite(suite)


class TestResultsRoundTrip:
    def test_identical_after_round_trip(self, results, tmp_path):
        path = tmp_path / "results.json"
        save_results(results, path)
        back = load_results(path)
        assert back == results

    def test_tables_identical(self, results, tmp_path):
        from repro.experiments.tables import table3

        path = tmp_path / "results.json"
        save_results(results, path)
        assert table3(load_results(path)).to_text() == table3(results).to_text()

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a repro results file"):
            load_results(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text('{"format": "repro-results", "version": 99}')
        with pytest.raises(ValueError, match="version"):
            load_results(path)


class TestCsvExport:
    def test_row_count(self, results):
        csv = results_to_csv(results)
        lines = csv.splitlines()
        n_heuristics = len(results[0].results)
        assert len(lines) == 1 + len(results) * n_heuristics

    def test_header_and_fields(self, results):
        csv = results_to_csv(results)
        header = csv.splitlines()[0].split(",")
        assert "speedup" in header and "nrpt" in header
        first = csv.splitlines()[1].split(",")
        assert len(first) == len(header)


class TestSuiteRoundTrip:
    def test_graphs_identical(self, suite, tmp_path):
        path = tmp_path / "suite.json"
        n = save_suite(suite, path)
        assert n == len(suite)
        back = load_suite(path)
        assert len(back) == len(suite)
        for a, b in zip(suite, back):
            assert a.cell == b.cell
            assert a.index == b.index
            assert a.graph == b.graph

    def test_rerun_from_disk_matches(self, suite, results, tmp_path):
        path = tmp_path / "suite.json"
        save_suite(suite, path)
        rerun = run_suite(load_suite(path))
        assert rerun == results

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(ValueError, match="not a repro suite"):
            load_suite(path)


class TestAtomicWrites:
    """Crash simulation: an interrupted save must never corrupt the
    destination — the previous contents survive intact."""

    def test_crash_during_save_leaves_old_file_intact(
        self, results, tmp_path, monkeypatch
    ):
        import os as _os

        from repro.experiments import persistence

        path = tmp_path / "results.json"
        save_results(results, path)
        before = path.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(persistence.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            save_results(results[:1], path)
        monkeypatch.undo()

        assert path.read_bytes() == before  # old contents untouched
        assert load_results(path) == list(results)
        # the temp file was cleaned up, not left littering the directory
        assert [p.name for p in tmp_path.iterdir()] == ["results.json"]

    def test_crash_during_suite_save(self, suite, tmp_path, monkeypatch):
        from repro.experiments import persistence

        path = tmp_path / "suite.json"
        save_suite(suite, path)
        before = path.read_bytes()

        monkeypatch.setattr(
            persistence.os,
            "fsync",
            lambda fd: (_ for _ in ()).throw(OSError("simulated disk failure")),
        )
        with pytest.raises(OSError, match="simulated disk"):
            save_suite(suite, path)
        monkeypatch.undo()

        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["suite.json"]

    def test_save_is_replace_not_append(self, results, tmp_path):
        path = tmp_path / "results.json"
        save_results(results, path)
        save_results(results, path)  # second save replaces, not extends
        assert load_results(path) == list(results)
