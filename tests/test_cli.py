"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro import TaskGraph
from repro.cli import main


@pytest.fixture
def graph_file(tmp_path, paper_example):
    path = tmp_path / "g.json"
    path.write_text(json.dumps(paper_example.to_dict()))
    return str(path)


class TestSchedule:
    def test_default_heuristic(self, graph_file, capsys):
        assert main(["schedule", graph_file]) == 0
        out = capsys.readouterr().out
        assert "CLANS" in out
        assert "parallel time  : 130" in out

    def test_named_heuristic_with_gantt(self, graph_file, capsys):
        assert main(["schedule", graph_file, "--heuristic", "HU", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "HU" in out
        assert "P0" in out

    def test_unknown_heuristic_rejected(self, graph_file):
        with pytest.raises(SystemExit):
            main(["schedule", graph_file, "--heuristic", "NOPE"])


class TestClassify:
    def test_metrics_printed(self, graph_file, capsys):
        assert main(["classify", graph_file]) == 0
        out = capsys.readouterr().out
        assert "granularity" in out
        assert "anchor out-degree" in out
        assert "serial time       : 150" in out


class TestGenerate:
    def test_generates_classified_graph(self, tmp_path, capsys):
        out_file = tmp_path / "gen.json"
        rc = main(
            ["generate", "--band", "2", "--anchor", "3", "-n", "25",
             "-o", str(out_file)]
        )
        assert rc == 0
        g = TaskGraph.from_dict(json.loads(out_file.read_text()))
        assert g.n_tasks == 25


class TestWorkload:
    @pytest.mark.parametrize("kind", ["chain", "fork_join", "fft", "gauss", "dnc", "stencil"])
    def test_each_kind(self, kind, tmp_path):
        out_file = tmp_path / f"{kind}.json"
        assert main(["workload", kind, "--param", "3", "-o", str(out_file)]) == 0
        g = TaskGraph.from_dict(json.loads(out_file.read_text()))
        assert g.n_tasks >= 3


class TestExperiment:
    def test_small_experiment_prints_tables(self, capsys):
        rc = main(
            ["experiment", "--graphs-per-cell", "1", "--nmin", "12",
             "--nmax", "16", "--tables", "2,4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Table 4" in out
        assert "Table 3" not in out

    def test_figures_printed(self, capsys):
        rc = main(
            ["experiment", "--graphs-per-cell", "1", "--nmin", "12",
             "--nmax", "16", "--tables", "3", "--figures", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_bad_table_id(self):
        with pytest.raises(SystemExit, match="unknown ids"):
            main(
                ["experiment", "--graphs-per-cell", "1", "--nmin", "12",
                 "--nmax", "14", "--tables", "99"]
            )


class TestReport:
    def test_writes_markdown(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        rc = main(
            ["report", "--graphs-per-cell", "1", "--nmin", "10",
             "--nmax", "13", "-o", str(out)]
        )
        assert rc == 0
        text = out.read_text()
        assert "## Table 2" in text
        assert "## Figure 6" in text

    def test_prints_to_stdout(self, capsys):
        rc = main(["report", "--graphs-per-cell", "1", "--nmin", "10", "--nmax", "12"])
        assert rc == 0
        assert "## Table 1" in capsys.readouterr().out


class TestExport:
    def test_svg(self, graph_file, tmp_path, capsys):
        out = tmp_path / "gantt.svg"
        rc = main(["export", graph_file, "--format", "svg", "-o", str(out)])
        assert rc == 0
        assert out.read_text().startswith("<svg")

    def test_trace(self, graph_file, tmp_path):
        import json as _json

        out = tmp_path / "trace.json"
        rc = main(
            ["export", graph_file, "--heuristic", "MH", "--format", "trace",
             "-o", str(out)]
        )
        assert rc == 0
        data = _json.loads(out.read_text())
        assert len(data["traceEvents"]) == 5


class TestSaveLoad:
    def test_round_trip_tables_match(self, tmp_path, capsys):
        saved = tmp_path / "run.json"
        rc = main(
            ["experiment", "--graphs-per-cell", "1", "--nmin", "10",
             "--nmax", "13", "--tables", "4", "--save", str(saved)]
        )
        assert rc == 0
        first = capsys.readouterr().out
        rc = main(["experiment", "--load", str(saved), "--tables", "4"])
        assert rc == 0
        second = capsys.readouterr().out
        assert first.strip() == second.strip()


class TestNewWorkloadKinds:
    @pytest.mark.parametrize("kind", ["cholesky", "wavefront"])
    def test_kinds(self, kind, tmp_path):
        out = tmp_path / f"{kind}.json"
        assert main(["workload", kind, "--param", "4", "-o", str(out)]) == 0


class TestImproveFlag:
    def test_improve_never_worse(self, graph_file, capsys):
        assert main(["schedule", graph_file, "--heuristic", "HU"]) == 0
        base = capsys.readouterr().out
        assert main(["schedule", graph_file, "--heuristic", "HU", "--improve"]) == 0
        improved = capsys.readouterr().out

        def makespan(text):
            for line in text.splitlines():
                if line.startswith("parallel time"):
                    return float(line.split(":")[1])
            raise AssertionError(text)

        assert makespan(improved) <= makespan(base) + 1e-9
        assert "HU+ls" in improved


class TestList:
    def test_lists_schedulers_with_docstring_summaries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("CLANS", "DSC", "MCP", "MH", "HU"):
            assert name in out
        # every registered scheduler gets a one-line summary column
        for line in out.splitlines()[1:]:
            assert len(line.split(maxsplit=2)) == 3, line

    def test_survives_missing_docstring(self, capsys):
        from repro.cli import _scheduler_summary

        class Undocumented:
            __doc__ = None

        assert _scheduler_summary(Undocumented) == "(no description)"


class TestObservability:
    def test_experiment_writes_trace_and_manifest(self, tmp_path, capsys):
        import json as _json

        saved = tmp_path / "res.json"
        trace = tmp_path / "run.json"
        rc = main(
            ["experiment", "--graphs-per-cell", "1", "--nmin", "10",
             "--nmax", "13", "--tables", "2", "--save", str(saved),
             "--trace", str(trace)]
        )
        assert rc == 0
        data = _json.loads(trace.read_text())
        names = {e["name"] for e in data["traceEvents"]}
        assert any(n.startswith("graph.") for n in names)
        assert any(n.startswith("schedule.") for n in names)
        manifest = _json.loads((tmp_path / "res.manifest.json").read_text())
        assert manifest["format"] == "repro-manifest"
        assert manifest["seed"] == 19940815
        assert "schedule" in manifest["phases"]

    def test_jsonl_trace_format(self, tmp_path):
        import json as _json

        trace = tmp_path / "run.jsonl"
        rc = main(
            ["experiment", "--graphs-per-cell", "1", "--nmin", "10",
             "--nmax", "12", "--tables", "2", "--trace", str(trace)]
        )
        assert rc == 0
        lines = trace.read_text().strip().splitlines()
        assert len(lines) > 60  # 60 graph spans + 300 scheduler spans
        assert all(_json.loads(line)["ph"] == "X" for line in lines[:5])

    def test_stats_prints_timings_and_counters(self, tmp_path, capsys):
        saved = tmp_path / "res.json"
        rc = main(
            ["experiment", "--graphs-per-cell", "1", "--nmin", "10",
             "--nmax", "13", "--tables", "2", "--save", str(saved)]
        )
        assert rc == 0
        capsys.readouterr()
        assert main(["stats", str(saved)]) == 0
        out = capsys.readouterr().out
        assert "seed           : 19940815" in out
        for name in ("CLANS", "DSC", "MCP", "MH", "HU"):
            assert name in out
        assert "dsc.edge_zeroings" in out
        assert "simulator.events" in out

    def test_stats_without_manifest_degrades_with_hint(self, tmp_path, capsys):
        orphan = tmp_path / "res.json"
        orphan.write_text("{}")
        assert main(["stats", str(orphan)]) == 0
        out = capsys.readouterr().out
        assert "no manifest" in out
        assert "repro experiment --save" in out

    def test_stats_truncated_manifest_degrades(self, tmp_path, capsys):
        results = tmp_path / "res.json"
        results.write_text("{}")
        manifest_path = tmp_path / "res.manifest.json"
        manifest_path.write_text('{"created": "2026-')  # killed mid-write
        assert main(["stats", str(results)]) == 0
        assert "unreadable" in capsys.readouterr().out

    def test_stats_empty_trace_degrades(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        trace.write_text("")
        assert main(["stats", str(trace)]) == 0
        assert "no events" in capsys.readouterr().out

    def test_stats_truncated_trace_summarizes_parsable_prefix(
        self, tmp_path, capsys
    ):
        trace = tmp_path / "run.jsonl"
        trace.write_text(
            '{"name": "schedule.DSC", "ph": "X", "ts": 0, "dur": 5}\n'
            '{"name": "schedule.MCP", "ph": "X", "ts": 9, "du'  # truncated
        )
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "schedule.DSC" in out
        assert "1 spans" in out
        assert "skipped" in out


class TestVersionAndUsage:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro-sched 1." in capsys.readouterr().out

    def test_bare_invocation_prints_usage_and_exits_2(self, capsys):
        assert main([]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "subcommand is required" in err


class TestScheduleJson:
    def test_json_output_is_canonical_service_result(self, graph_file, capsys):
        from repro.core import wire
        from repro.core.taskgraph import TaskGraph
        from repro.schedulers.base import get_scheduler
        from repro.service.protocol import schedule_result

        assert main(["schedule", graph_file, "--heuristic", "DSC", "--json"]) == 0
        out = capsys.readouterr().out
        graph = TaskGraph.from_dict(json.loads(open(graph_file).read()))
        direct = get_scheduler("DSC").schedule(graph)
        expected = wire.dumps(schedule_result("DSC", graph, direct)) + "\n"
        assert out == expected


class TestServeSubmit:
    def test_submit_json_matches_schedule_json(self, graph_file, capsys, tmp_path):
        from repro.service.server import ServerThread

        sock = str(tmp_path / "svc.sock")
        with ServerThread(socket_path=sock):
            assert (
                main(
                    [
                        "submit",
                        graph_file,
                        "--heuristic",
                        "DSC",
                        "--socket",
                        sock,
                        "--json",
                    ]
                )
                == 0
            )
            via_service = capsys.readouterr().out
            assert main(["schedule", graph_file, "--heuristic", "DSC", "--json"]) == 0
            direct = capsys.readouterr().out
        assert via_service == direct

    def test_submit_against_dead_daemon_fails(self, graph_file, tmp_path, capsys):
        sock = str(tmp_path / "nothing.sock")
        assert main(["submit", graph_file, "--socket", sock]) == 1
        assert "service error" in capsys.readouterr().err
