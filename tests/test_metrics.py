"""Unit tests for the paper's classification metrics (section 3)."""

from __future__ import annotations

import math

import pytest

from repro import (
    GRANULARITY_BANDS,
    GraphError,
    TaskGraph,
    anchor_out_degree,
    granularity,
    granularity_band,
    node_weight_range,
)


def build(nodes, edges):
    g = TaskGraph()
    for t, w in nodes:
        g.add_task(t, w)
    for u, v, w in edges:
        g.add_edge(u, v, w)
    return g


class TestGranularity:
    def test_hand_computed(self):
        # non-sinks: a (w=10, max edge 5 -> 2.0), b (w=6, max edge 3 -> 2.0)
        g = build(
            [("a", 10), ("b", 6), ("c", 1)],
            [("a", "b", 5), ("a", "c", 2), ("b", "c", 3)],
        )
        assert granularity(g) == pytest.approx(2.0)

    def test_sinks_excluded(self):
        g = build([("a", 4), ("sink", 1000)], [("a", "sink", 2)])
        assert granularity(g) == pytest.approx(2.0)

    def test_max_edge_used_not_sum(self):
        g = build(
            [("a", 12), ("b", 1), ("c", 1)],
            [("a", "b", 6), ("a", "c", 3)],
        )
        assert granularity(g) == pytest.approx(2.0)

    def test_no_edges_undefined(self):
        g = build([("a", 1)], [])
        with pytest.raises(GraphError):
            granularity(g)

    def test_zero_weight_edges_rejected(self):
        g = build([("a", 1), ("b", 1)], [("a", "b", 0)])
        with pytest.raises(GraphError):
            granularity(g)

    def test_paper_example(self, paper_example):
        # terms: 10/6, 20/4, 30/3, 40/4
        expect = (10 / 6 + 20 / 4 + 30 / 3 + 40 / 4) / 4
        assert granularity(paper_example) == pytest.approx(expect)


class TestGranularityBand:
    @pytest.mark.parametrize(
        "value, band",
        [
            (0.001, 0),
            (0.0799, 0),
            (0.08, 1),
            (0.19, 1),
            (0.2, 2),
            (0.79, 2),
            (0.8, 3),
            (1.99, 3),
            (2.0, 4),
            (1000.0, 4),
        ],
    )
    def test_boundaries(self, value, band):
        assert granularity_band(value) == band

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            granularity_band(-0.1)

    def test_bands_cover_positive_reals(self):
        lo0 = GRANULARITY_BANDS[0][0]
        assert lo0 == 0.0
        for (_, hi), (lo, _) in zip(GRANULARITY_BANDS, GRANULARITY_BANDS[1:]):
            assert hi == lo
        assert math.isinf(GRANULARITY_BANDS[-1][1])


class TestAnchor:
    def test_mode(self):
        g = build(
            [(i, 1) for i in range(6)],
            [(0, 3, 1), (0, 4, 1), (1, 4, 1), (1, 5, 1), (2, 5, 1)],
        )
        # out-degrees (non-sink): 0 -> 2, 1 -> 2, 2 -> 1; mode = 2
        assert anchor_out_degree(g) == 2

    def test_tie_breaks_small(self):
        g = build(
            [(i, 1) for i in range(5)],
            [(0, 2, 1), (1, 3, 1), (1, 4, 1)],
        )
        # degrees: 0 -> 1, 1 -> 2: tie; smaller wins
        assert anchor_out_degree(g) == 1

    def test_include_sinks(self):
        g = build([(0, 1), (1, 1), (2, 1)], [(0, 1, 1), (0, 2, 1)])
        assert anchor_out_degree(g) == 2
        assert anchor_out_degree(g, include_sinks=True) == 0

    def test_no_qualifying_tasks(self):
        g = build([(0, 1)], [])
        with pytest.raises(GraphError):
            anchor_out_degree(g)
        assert anchor_out_degree(g, include_sinks=True) == 0


class TestNodeWeightRange:
    def test_range(self, paper_example):
        assert node_weight_range(paper_example) == (10.0, 50.0)

    def test_single(self, single):
        assert node_weight_range(single) == (7.0, 7.0)

    def test_empty(self):
        with pytest.raises(GraphError):
            node_weight_range(TaskGraph())
