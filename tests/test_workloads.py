"""Tests for the structured workload factories."""

from __future__ import annotations

import pytest

from repro import GenerationError
from repro.generation import workloads as w


class TestChain:
    def test_structure(self):
        g = w.chain(4, comp=3, comm=1)
        assert g.n_tasks == 4
        assert g.n_edges == 3
        assert g.serial_time() == 12.0

    def test_bad_args(self):
        with pytest.raises(GenerationError):
            w.chain(0)
        with pytest.raises(GenerationError):
            w.chain(3, comp=0)
        with pytest.raises(GenerationError):
            w.chain(3, comm=-1)


class TestForkJoin:
    def test_structure(self):
        g = w.fork_join(3, stages=2)
        # 1 source + per stage (3 mids + 1 join)
        assert g.n_tasks == 1 + 2 * 4
        g.validate()
        assert len(g.sources()) == 1
        assert len(g.sinks()) == 1

    def test_diamond(self):
        g = w.diamond()
        assert g.n_tasks == 4

    def test_bad(self):
        with pytest.raises(GenerationError):
            w.fork_join(0)


class TestTrees:
    def test_out_tree(self):
        g = w.out_tree(3, branching=2)
        assert g.n_tasks == 15
        assert len(g.sources()) == 1
        assert len(g.sinks()) == 8

    def test_in_tree_mirrors_out_tree(self):
        g = w.in_tree(2, branching=3)
        assert g.n_tasks == 13
        assert len(g.sinks()) == 1
        assert len(g.sources()) == 9

    def test_depth_zero(self):
        assert w.out_tree(0).n_tasks == 1

    def test_bad(self):
        with pytest.raises(GenerationError):
            w.out_tree(-1)


class TestFFT:
    def test_structure(self):
        g = w.fft_graph(3)
        assert g.n_tasks == 4 * 8  # (k+1) ranks of 2^k
        g.validate()
        # every non-input task has exactly 2 predecessors
        for t in g.tasks():
            s, _ = t
            assert g.in_degree(t) == (0 if s == 0 else 2)

    def test_butterfly_partners(self):
        g = w.fft_graph(2)
        assert g.has_edge((0, 0), (1, 1))  # partner of 1 at stage 1 is 0
        assert g.has_edge((1, 0), (2, 2))  # stage 2 stride is 2

    def test_bad(self):
        with pytest.raises(GenerationError):
            w.fft_graph(0)


class TestGauss:
    def test_structure(self):
        g = w.gaussian_elimination(4)
        g.validate()
        # steps k=0,1,2 contribute (n - k) tasks each
        assert g.n_tasks == 4 + 3 + 2
        # pivot (0,0) enables all first-step updates
        assert g.out_degree((0, 0)) == 3

    def test_column_carry(self):
        g = w.gaussian_elimination(4)
        assert g.has_edge((0, 2), (1, 2))

    def test_bad(self):
        with pytest.raises(GenerationError):
            w.gaussian_elimination(1)


class TestDivideAndConquer:
    def test_structure(self):
        g = w.divide_and_conquer(2)
        g.validate()
        assert g.n_tasks == 2 * (2 ** 3 - 1)
        assert len(g.sources()) == 1
        assert len(g.sinks()) == 1

    def test_leaf_link(self):
        g = w.divide_and_conquer(1)
        assert g.has_edge(("s", 1), ("m", 1))

    def test_bad(self):
        with pytest.raises(GenerationError):
            w.divide_and_conquer(-1)


class TestStencil:
    def test_structure(self):
        g = w.stencil_1d(4, 3)
        g.validate()
        assert g.n_tasks == 12
        # interior cell has 3 predecessors
        assert g.in_degree((1, 1)) == 3
        # boundary cell has 2
        assert g.in_degree((1, 0)) == 2

    def test_bad(self):
        with pytest.raises(GenerationError):
            w.stencil_1d(0, 1)


class TestSchedulable:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: w.chain(5),
            lambda: w.fork_join(4, stages=2),
            lambda: w.out_tree(3),
            lambda: w.in_tree(3),
            lambda: w.fft_graph(3),
            lambda: w.gaussian_elimination(5),
            lambda: w.divide_and_conquer(3),
            lambda: w.stencil_1d(4, 4),
        ],
    )
    def test_all_schedulers_handle_all_workloads(self, factory):
        from repro import paper_schedulers

        g = factory()
        for sched in paper_schedulers():
            sched.schedule(g).validate(g)
