"""Tests for the clan enumeration oracle and parse-tree verification."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import DecompositionError, TaskGraph
from repro.clans import (
    ClanKind,
    ClanNode,
    decompose,
    enumerate_clans,
    is_clan,
    tree_statistics,
    verify_parse_tree,
)

from conftest import task_graphs


class TestEnumerateClans:
    def test_paper_example(self, paper_example):
        clans = enumerate_clans(paper_example)
        assert frozenset([3, 4]) in clans
        assert frozenset([2, 3, 4]) in clans

    def test_trivial_included_on_request(self, paper_example):
        clans = enumerate_clans(paper_example, include_trivial=True)
        for t in paper_example.tasks():
            assert frozenset([t]) in clans
        assert frozenset(paper_example.tasks()) in clans

    def test_matches_is_clan(self, paper_example):
        for clan in enumerate_clans(paper_example, include_trivial=True):
            assert is_clan(paper_example, clan)

    def test_size_guard(self):
        g = TaskGraph()
        for i in range(13):
            g.add_task(i, 1)
        with pytest.raises(DecompositionError, match="exponential"):
            enumerate_clans(g)

    @given(g=task_graphs(min_tasks=2, max_tasks=8))
    @settings(max_examples=40, deadline=None)
    def test_tree_nodes_are_enumerated(self, g):
        """Every internal parse-tree node must appear in the oracle's list
        (with trivial clans included for leaves/root)."""
        oracle = set(enumerate_clans(g, include_trivial=True))
        for node in decompose(g).walk():
            assert node.members in oracle


class TestVerifyParseTree:
    @given(g=task_graphs(min_tasks=1, max_tasks=12))
    @settings(max_examples=60, deadline=None)
    def test_decompose_output_always_verifies(self, g):
        verify_parse_tree(g, decompose(g))

    def test_detects_wrong_leaves(self, paper_example, diamond):
        with pytest.raises(DecompositionError, match="leaves"):
            verify_parse_tree(paper_example, decompose(diamond))

    def test_detects_wrong_kind(self, paper_example):
        tree = decompose(paper_example)
        # flip the root kind to INDEPENDENT: children are related -> invalid
        bad = ClanNode(ClanKind.INDEPENDENT, tree.members, tree.children)
        with pytest.raises(DecompositionError):
            verify_parse_tree(paper_example, bad)

    def test_detects_non_clan_node(self, paper_example):
        bad_child = ClanNode(
            ClanKind.LINEAR,
            frozenset([2, 3]),
            [
                ClanNode(ClanKind.LEAF, frozenset([2]), task=2),
                ClanNode(ClanKind.LEAF, frozenset([3]), task=3),
            ],
        )
        rest = [
            ClanNode(ClanKind.LEAF, frozenset([t]), task=t) for t in (1, 4, 5)
        ]
        bad = ClanNode(
            ClanKind.PRIMITIVE, frozenset([1, 2, 3, 4, 5]), [bad_child, *rest]
        )
        with pytest.raises(DecompositionError):
            verify_parse_tree(paper_example, bad)


class TestTreeStatistics:
    def test_paper_example(self, paper_example):
        st = tree_statistics(decompose(paper_example))
        assert st.n_leaves == 5
        assert st.n_linear == 2
        assert st.n_independent == 1
        assert st.n_primitive == 0
        assert st.n_internal == 3
        assert st.depth == 3
        assert st.max_children == 3
        assert st.largest_primitive == 0

    def test_primitive_recorded(self):
        g = TaskGraph()
        for i in range(4):
            g.add_task(i, 1)
        g.add_edge(0, 2, 1)
        g.add_edge(1, 2, 1)
        g.add_edge(1, 3, 1)
        st = tree_statistics(decompose(g))
        assert st.n_primitive == 1
        assert st.largest_primitive == 4
