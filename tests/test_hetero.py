"""Tests for the heterogeneous machine model and HEFT."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import ScheduleError, TaskGraph
from repro.hetero import (
    HEFTScheduler,
    HeteroListScheduler,
    HeterogeneousMachine,
    validate_on_machine,
)
from repro.hetero.heft import upward_ranks

from conftest import task_graphs


class TestMachine:
    def test_exec_time(self):
        m = HeterogeneousMachine([1, 2, 4])
        assert m.exec_time(20, 0) == 20.0
        assert m.exec_time(20, 1) == 10.0
        assert m.exec_time(20, 2) == 5.0

    def test_mean_exec_time(self):
        m = HeterogeneousMachine([1, 2])
        assert m.mean_exec_time(20) == pytest.approx((20 + 10) / 2)

    def test_homogeneous_factory(self):
        m = HeterogeneousMachine.homogeneous(3)
        assert m.n_processors == 3
        assert m.exec_time(10, 2) == 10.0

    def test_bad_speeds(self):
        with pytest.raises(ScheduleError):
            HeterogeneousMachine([])
        with pytest.raises(ScheduleError):
            HeterogeneousMachine([1, 0])
        with pytest.raises(ScheduleError):
            HeterogeneousMachine([1, -2])

    def test_bad_processor(self):
        with pytest.raises(ScheduleError):
            HeterogeneousMachine([1]).exec_time(10, 5)


class TestUpwardRanks:
    def test_homogeneous_matches_blevel(self, paper_example):
        from repro.core.analysis import b_levels

        m = HeterogeneousMachine.homogeneous(3)
        ranks = upward_ranks(paper_example, m)
        levels = b_levels(paper_example, communication=True)
        for t in paper_example.tasks():
            assert ranks[t] == pytest.approx(levels[t])

    def test_monotone_along_edges(self, paper_example):
        m = HeterogeneousMachine([1, 3])
        ranks = upward_ranks(paper_example, m)
        for u, v in paper_example.edges():
            assert ranks[u] > ranks[v]


class TestHEFT:
    def test_valid_on_zoo(self, paper_example, diamond, chain5, wide_fork):
        m = HeterogeneousMachine([1, 2, 4])
        for g in (paper_example, diamond, chain5, wide_fork):
            s = HEFTScheduler(m).schedule(g)
            validate_on_machine(s, g, m)

    def test_prefers_fast_processor(self):
        g = TaskGraph()
        g.add_task("a", 100)
        m = HeterogeneousMachine([1, 10])
        s = HEFTScheduler(m).schedule(g)
        assert s.processor_of("a") == 1
        assert s.makespan == pytest.approx(10.0)

    def test_chain_stays_on_fastest(self):
        g = TaskGraph()
        for i in range(4):
            g.add_task(i, 10)
            if i:
                g.add_edge(i - 1, i, 5)
        m = HeterogeneousMachine([1, 4])
        s = HEFTScheduler(m).schedule(g)
        assert all(s.processor_of(i) == 1 for i in range(4))
        assert s.makespan == pytest.approx(10.0)

    def test_beats_speed_blind_baseline_on_skewed_machine(self):
        from repro.generation.workloads import gaussian_elimination

        g = gaussian_elimination(6, comp=20, comm=8)
        m = HeterogeneousMachine([1, 1, 2, 4])
        heft = HEFTScheduler(m).schedule(g)
        hmh = HeteroListScheduler(m).schedule(g)
        validate_on_machine(heft, g, m)
        validate_on_machine(hmh, g, m)
        assert heft.makespan < hmh.makespan

    def test_homogeneous_equivalence_of_rules(self, wide_fork):
        """On a homogeneous machine EFT and EST orderings coincide up to
        insertion; both must be valid and close."""
        m = HeterogeneousMachine.homogeneous(4)
        heft = HEFTScheduler(m).schedule(wide_fork)
        hmh = HeteroListScheduler(m).schedule(wide_fork)
        validate_on_machine(heft, wide_fork, m)
        validate_on_machine(hmh, wide_fork, m)
        assert heft.makespan <= hmh.makespan + 1e-9

    def test_insertion_flag(self, paper_example):
        m = HeterogeneousMachine([1, 2])
        a = HEFTScheduler(m, insertion=True).schedule(paper_example)
        b = HEFTScheduler(m, insertion=False).schedule(paper_example)
        validate_on_machine(a, paper_example, m)
        validate_on_machine(b, paper_example, m)

    def test_empty_graph_rejected(self):
        from repro import GraphError

        with pytest.raises(GraphError):
            HEFTScheduler(HeterogeneousMachine([1])).schedule(TaskGraph())

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=40, deadline=None)
    def test_property_always_valid(self, g):
        m = HeterogeneousMachine([1, 2, 0.5])
        s = HEFTScheduler(m).schedule(g)
        validate_on_machine(s, g, m)

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=25, deadline=None)
    def test_property_hmh_valid(self, g):
        m = HeterogeneousMachine([2, 1])
        s = HeteroListScheduler(m).schedule(g)
        validate_on_machine(s, g, m)


class TestValidateOnMachine:
    def test_catches_wrong_duration(self):
        from repro import Schedule

        g = TaskGraph()
        g.add_task("a", 10)
        m = HeterogeneousMachine([2])
        s = Schedule()
        s.place("a", 0, 0.0, 10.0)  # should be 5 on a speed-2 processor
        with pytest.raises(ScheduleError, match="expected"):
            validate_on_machine(s, g, m)

    def test_catches_out_of_machine(self):
        from repro import Schedule

        g = TaskGraph()
        g.add_task("a", 10)
        s = Schedule()
        s.place("a", 5, 0.0, 10.0)
        with pytest.raises(ScheduleError, match="outside"):
            validate_on_machine(s, g, HeterogeneousMachine([1]))
