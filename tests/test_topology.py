"""Tests for the topology subpackage."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import MHScheduler, ScheduleError, TaskGraph
from repro.topology import (
    FullyConnected,
    Hypercube,
    Mesh2D,
    Ring,
    Star,
    TopologyMHScheduler,
    simulate_on_topology,
    validate_on_topology,
)

from conftest import task_graphs


class TestNetworks:
    def test_fully_connected(self):
        t = FullyConnected(5)
        assert t.distance(0, 0) == 0
        assert t.distance(0, 4) == 1
        assert t.diameter == 1

    def test_ring(self):
        t = Ring(6)
        assert t.distance(0, 1) == 1
        assert t.distance(0, 3) == 3
        assert t.distance(0, 5) == 1  # shorter way around
        assert t.diameter == 3

    def test_mesh(self):
        t = Mesh2D(2, 3)
        assert t.n_processors == 6
        assert t.distance(0, 5) == 3  # (0,0) -> (1,2)
        assert t.distance(1, 4) == 1  # (0,1) -> (1,1)

    def test_hypercube(self):
        t = Hypercube(3)
        assert t.n_processors == 8
        assert t.distance(0, 7) == 3
        assert t.distance(5, 4) == 1
        assert t.diameter == 3

    def test_star(self):
        t = Star(5)
        assert t.distance(0, 3) == 1
        assert t.distance(2, 3) == 2

    def test_symmetry_and_identity(self):
        for t in (Ring(7), Mesh2D(3, 3), Hypercube(2), Star(4), FullyConnected(4)):
            for p in range(t.n_processors):
                assert t.distance(p, p) == 0
                for q in range(t.n_processors):
                    assert t.distance(p, q) == t.distance(q, p)

    def test_out_of_range(self):
        with pytest.raises(ScheduleError):
            Ring(3).distance(0, 5)

    def test_bad_sizes(self):
        with pytest.raises(ScheduleError):
            FullyConnected(0)
        with pytest.raises(ScheduleError):
            Mesh2D(0, 3)
        with pytest.raises(ScheduleError):
            Hypercube(-1)


class TestSimulateOnTopology:
    def test_hop_scaled_arrival(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 10)
        g.add_edge("a", "b", 5)
        ring = Ring(6)
        s = simulate_on_topology(g, {"a": 0, "b": 3}, ring)
        assert s.start("b") == 10 + 5 * 3
        validate_on_topology(s, g, ring)

    def test_same_processor_free(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 10)
        g.add_edge("a", "b", 5)
        s = simulate_on_topology(g, {"a": 2, "b": 2}, Ring(6))
        assert s.start("b") == 10.0

    def test_clique_matches_uniform_simulator(self, paper_example):
        from repro.core.simulator import simulate_clustering

        assignment = {1: 0, 2: 1, 3: 0, 4: 1, 5: 0}
        uniform = simulate_clustering(paper_example, assignment)
        topo = simulate_on_topology(paper_example, assignment, FullyConnected(2))
        assert uniform.makespan == pytest.approx(topo.makespan)

    def test_bad_assignment(self, diamond):
        with pytest.raises(ScheduleError):
            simulate_on_topology(diamond, {"a": 0}, Ring(3))
        with pytest.raises(ScheduleError):
            simulate_on_topology(
                diamond, {t: 9 for t in diamond.tasks()}, Ring(3)
            )

    def test_validation_catches_violation(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 10)
        g.add_edge("a", "b", 5)
        from repro import Schedule

        s = Schedule()
        s.place("a", 0, 0.0, 10.0)
        s.place("b", 3, 16.0, 10.0)  # needs 10 + 15 on a 6-ring
        with pytest.raises(ScheduleError, match="network"):
            validate_on_topology(s, g, Ring(6))


class TestTopologyMH:
    def test_clique_reduces_to_bounded_mh(self, paper_example, diamond, wide_fork):
        for g in (paper_example, diamond, wide_fork):
            for p in (2, 3):
                topo = TopologyMHScheduler(FullyConnected(p)).schedule(g)
                plain = MHScheduler(max_processors=p).schedule(g)
                assert topo.makespan == pytest.approx(plain.makespan)

    def test_valid_on_all_networks(self, paper_example, wide_fork):
        for net in (Ring(4), Mesh2D(2, 2), Hypercube(2), Star(4)):
            for g in (paper_example, wide_fork):
                s = TopologyMHScheduler(net).schedule(g)
                validate_on_topology(s, g, net)

    def test_sparser_networks_never_faster(self, wide_fork):
        """With the same processor count, adding hops cannot help."""
        clique = TopologyMHScheduler(FullyConnected(8)).schedule(wide_fork)
        ring = TopologyMHScheduler(Ring(8)).schedule(wide_fork)
        star = TopologyMHScheduler(Star(8)).schedule(wide_fork)
        assert clique.makespan <= ring.makespan + 1e-9
        assert clique.makespan <= star.makespan + 1e-9

    def test_name(self):
        assert TopologyMHScheduler(Ring(8)).name == "MH@Ring8"

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=25, deadline=None)
    def test_property_valid_on_ring(self, g):
        net = Ring(3)
        s = TopologyMHScheduler(net).schedule(g)
        validate_on_topology(s, g, net)
