"""Tests for the layered alternative generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GenerationError, granularity, granularity_band
from repro.generation.layered import generate_layered_pdg, layered_dag


class TestLayeredDag:
    def test_task_count_exact(self, rng):
        for n in (1, 2, 17, 60):
            g = layered_dag(rng, n_tasks=n)
            assert g.n_tasks == n
            g.validate()

    def test_connected_between_layers(self, rng):
        g = layered_dag(rng, n_tasks=50)
        # every task beyond the first layer has a predecessor
        first_layer_max = max(t for t in g.tasks() if g.in_degree(t) == 0)
        for t in g.tasks():
            if t > first_layer_max:
                assert g.in_degree(t) >= 1

    def test_deterministic(self):
        a = layered_dag(np.random.default_rng(5), n_tasks=30)
        b = layered_dag(np.random.default_rng(5), n_tasks=30)
        assert a == b

    def test_bad_args(self, rng):
        with pytest.raises(GenerationError):
            layered_dag(rng, n_tasks=0)
        with pytest.raises(GenerationError):
            layered_dag(rng, n_tasks=5, mean_width=0.5)


class TestGenerateLayeredPdg:
    @pytest.mark.parametrize("band", [0, 2, 4])
    def test_band_met(self, band, rng):
        g = generate_layered_pdg(rng, n_tasks=30, band=band, weight_range=(20, 100))
        assert granularity_band(granularity(g)) == band
        g.validate()

    def test_weights_in_range(self, rng):
        g = generate_layered_pdg(rng, n_tasks=25, band=2, weight_range=(20, 100))
        for t in g.tasks():
            assert 20 <= g.weight(t) <= 100

    def test_schedulable_by_everyone(self, rng):
        from repro import paper_schedulers

        g = generate_layered_pdg(rng, n_tasks=30, band=1, weight_range=(20, 200))
        for sched in paper_schedulers():
            sched.schedule(g).validate(g)

    def test_structurally_distinct_from_parse_tree_family(self, rng):
        """Layered graphs should be primitive-heavy — the property that
        makes them a meaningful second family for the bias study."""
        from repro.clans import ClanKind, decompose

        primitive_seen = 0
        for _ in range(5):
            g = generate_layered_pdg(rng, n_tasks=40, band=2, weight_range=(20, 100))
            tree = decompose(g)
            primitive_seen += tree.count(ClanKind.PRIMITIVE)
        assert primitive_seen > 0
