"""Tests for the local-search improver and the one-port contention model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import TaskGraph, get_scheduler
from repro.schedulers.improve import LocalSearchImprover
from repro.topology.contention import simulate_one_port

from conftest import task_graphs


class TestLocalSearchImprover:
    def test_never_worse_than_inner(self, paper_example, diamond, wide_fork, two_sources_join):
        for inner in ("HU", "MH", "MCP"):
            for g in (paper_example, diamond, wide_fork, two_sources_join):
                base = get_scheduler(inner).schedule(g)
                improved = LocalSearchImprover(inner).schedule(g)
                improved.validate(g)
                assert improved.makespan <= base.makespan + 1e-9

    def test_improves_hu_badly_spread_schedule(self, two_sources_join):
        """HU retards this graph; one move fixes it — the improver must
        find it."""
        hu = get_scheduler("HU").schedule(two_sources_join)
        assert hu.makespan > two_sources_join.serial_time()
        improver = LocalSearchImprover("HU")
        improved = improver.schedule(two_sources_join)
        assert improved.makespan <= two_sources_join.serial_time() + 1e-9
        assert improver.last_moves >= 1

    def test_fixed_point_counts_zero_moves(self, chain5):
        improver = LocalSearchImprover("MCP")
        improver.schedule(chain5)  # a chain on one processor is optimal
        assert improver.last_moves == 0

    def test_name(self):
        assert LocalSearchImprover("DSC").name == "DSC+ls"

    def test_bad_rounds(self):
        with pytest.raises(ValueError):
            LocalSearchImprover("MCP", max_rounds=0)

    @given(g=task_graphs(min_tasks=1, max_tasks=9))
    @settings(max_examples=20, deadline=None)
    def test_property_valid_and_no_worse(self, g):
        base = get_scheduler("MH").schedule(g)
        improved = LocalSearchImprover("MH", max_rounds=2).schedule(g)
        improved.validate(g)
        assert improved.makespan <= base.makespan + 1e-9


class TestOnePortContention:
    def test_serial_unaffected(self, chain5):
        res = simulate_one_port(chain5, {t: 0 for t in chain5.tasks()})
        assert res.makespan == chain5.serial_time()
        assert res.transfers == ()

    def test_single_transfer_timing(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 10)
        g.add_edge("a", "b", 5)
        res = simulate_one_port(g, {"a": 0, "b": 1})
        assert res.schedule.start("b") == 15.0
        (x,) = res.transfers
        assert (x.start, x.finish) == (10.0, 15.0)

    def test_fanout_serializes_sends(self):
        """One producer, three remote consumers: under one-port the three
        messages leave one after another."""
        g = TaskGraph()
        g.add_task("src", 10)
        for i in range(3):
            g.add_task(i, 1)
            g.add_edge("src", i, 6)
        assignment = {"src": 0, 0: 1, 1: 2, 2: 3}
        res = simulate_one_port(g, assignment)
        starts = sorted(res.schedule.start(i) for i in range(3))
        assert starts == [16.0, 22.0, 28.0]
        # contention-free model would start all three at 16
        from repro.core.simulator import simulate_clustering

        free = simulate_clustering(g, assignment)
        assert free.start(0) == free.start(1) == free.start(2) == 16.0

    def test_fanin_serializes_receives(self):
        g = TaskGraph()
        g.add_task("sink", 1)
        for i in range(3):
            g.add_task(i, 10)
            g.add_edge(i, "sink", 6)
        assignment = {0: 0, 1: 1, 2: 2, "sink": 3}
        res = simulate_one_port(g, assignment)
        # three transfers into proc 3 serialize: 16, 22, 28
        assert res.schedule.start("sink") == 28.0

    def test_zero_cost_messages_free(self):
        g = TaskGraph()
        g.add_task("a", 5)
        g.add_task("b", 5)
        g.add_edge("a", "b", 0)
        res = simulate_one_port(g, {"a": 0, "b": 1})
        assert res.transfers == ()
        assert res.schedule.start("b") == 5.0

    def test_port_busy_time(self):
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("b", 10)
        g.add_edge("a", "b", 7)
        res = simulate_one_port(g, {"a": 0, "b": 1})
        assert res.port_busy_time() == 7.0

    def test_bad_assignment(self, diamond):
        from repro import ScheduleError

        with pytest.raises(ScheduleError):
            simulate_one_port(diamond, {"a": 0})

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=30, deadline=None)
    def test_contention_never_faster_than_free(self, g):
        from repro.core.simulator import simulate_clustering

        assignment = {t: i % 3 for i, t in enumerate(g.tasks())}
        free = simulate_clustering(g, assignment)
        port = simulate_one_port(g, assignment)
        assert port.makespan >= free.makespan - 1e-9
        port.schedule.validate(g)  # one-port delays only: still model-valid
