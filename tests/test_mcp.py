"""Tests for MCP (appendix A.2, Figures 9–10)."""

from __future__ import annotations

import pytest

from repro import MCPScheduler, TaskGraph
from repro.core.analysis import alap_times


class TestPriorityOrder:
    def test_order_is_topological(self, paper_example, diamond, wide_fork):
        for g in (paper_example, diamond, wide_fork):
            order = MCPScheduler.priority_order(g)
            pos = {t: i for i, t in enumerate(order)}
            for u, v in g.edges():
                assert pos[u] < pos[v]

    def test_most_critical_first(self, paper_example):
        """The head of the list is the task with the smallest ALAP time —
        the start of the critical path."""
        order = MCPScheduler.priority_order(paper_example)
        alap = alap_times(paper_example)
        assert order[0] == min(paper_example.tasks(), key=lambda t: alap[t])
        assert order[0] == 1

    def test_descendant_lists_break_ties(self):
        """Two tasks with equal ALAP: the one whose descendants are more
        urgent (lexicographically smaller T_L list) goes first."""
        g = TaskGraph()
        g.add_task("root", 10)
        # two symmetric branches, but y's child is heavier -> more urgent
        for branch, child_w in (("x", 10), ("y", 40)):
            g.add_task(branch, 10)
            g.add_task(branch + "c", child_w)
            g.add_edge("root", branch, 0)
            g.add_edge(branch, branch + "c", 0)
        alap = alap_times(g)
        order = MCPScheduler.priority_order(g)
        assert alap["y"] < alap["x"]
        assert order.index("y") < order.index("x")


class TestPlacement:
    def test_chain_single_processor(self, chain5):
        s = MCPScheduler().schedule(chain5)
        assert s.n_processors == 1

    def test_spreads_cheap_parallelism(self, wide_fork):
        s = MCPScheduler().schedule(wide_fork)
        assert s.n_processors > 1
        assert s.makespan < wide_fork.serial_time()

    def test_independent_sources_spread_then_pay(self, two_sources_join):
        """EST of a fresh processor is 0 for the second source — MCP
        spreads, and the join pays heavy communication (the paper's low-G
        retardation mechanism)."""
        s = MCPScheduler().schedule(two_sources_join)
        assert s.processor_of("s1") != s.processor_of("s2")
        assert s.makespan > two_sources_join.serial_time()

    def test_insertion_fills_idle_slot(self):
        """A later-priority short task must slot into an idle gap.

        crit chain: a(10) -> b(10) with comm 0 placed on P0; an unrelated
        task z (weight 5) arrives later in priority order: with insertion
        it can slide into P0's gap if one exists, else uses a fresh proc —
        but it must never delay b.
        """
        g = TaskGraph()
        g.add_task("a", 10)
        g.add_task("gap", 30)  # forces b to wait: a -> gap edge comm heavy
        g.add_task("b", 10)
        g.add_task("z", 5)
        g.add_edge("a", "gap", 0)
        g.add_edge("gap", "b", 25)
        g.add_edge("a", "z", 25)
        ins = MCPScheduler(insertion=True).schedule(g)
        app = MCPScheduler(insertion=False).schedule(g)
        ins.validate(g)
        app.validate(g)
        assert ins.makespan <= app.makespan + 1e-9

    def test_insertion_never_overlaps(self, paper_example, wide_fork):
        for g in (paper_example, wide_fork):
            MCPScheduler(insertion=True).schedule(g).validate(g)


class TestPaperExample:
    def test_valid_and_competitive(self, paper_example):
        s = MCPScheduler().schedule(paper_example)
        s.validate(paper_example)
        assert s.makespan <= 150.0  # never worse than serial here
