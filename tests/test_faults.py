"""Tests for the fault-tolerance layer (repro.experiments.faults + runners).

Covers the acceptance scenario of the fault-tolerant suite execution work:
a suite run with an injected hang and two injected raises completes,
emitting ``FailureRecord``s for exactly the injected faults, identically
on the serial and parallel paths; and a killed-then-resumed checkpointed
run produces results byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.exceptions import ReproError
from repro.experiments.faults import (
    FailureRecord,
    FaultInjectingScheduler,
    FaultPolicy,
    GraphTimeoutError,
    deadline,
    format_failure_report,
    graph_key,
)
from repro.experiments.measures import SuiteResult
from repro.experiments.persistence import CheckpointJournal, save_results
from repro.experiments.runner import run_suite
from repro.generation.suites import SuiteCell, generate_suite
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.schedulers.base import get_scheduler


@pytest.fixture(scope="module")
def suite():
    cells = [SuiteCell(1, 2, (20, 100)), SuiteCell(3, 4, (20, 400))]
    return list(generate_suite(graphs_per_cell=3, cells=cells, n_tasks_range=(10, 16)))


def _keys(suite, *indices):
    return [graph_key(suite[i].graph) for i in indices]


# ----------------------------------------------------------------------
# FaultPolicy
# ----------------------------------------------------------------------
class TestFaultPolicy:
    def test_defaults_fail_fast(self):
        p = FaultPolicy()
        assert not p.isolates and not p.keeps_records

    def test_record_keeps(self):
        p = FaultPolicy(on_error="record")
        assert p.isolates and p.keeps_records

    def test_skip_isolates_without_records(self):
        p = FaultPolicy(on_error="skip")
        assert p.isolates and not p.keeps_records

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"on_error": "explode"},
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"retries": -1},
            {"backoff": -0.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPolicy(**kwargs)


# ----------------------------------------------------------------------
# FailureRecord
# ----------------------------------------------------------------------
class TestFailureRecord:
    def test_round_trip(self):
        fr = FailureRecord(
            graph_id="g1",
            heuristic="HU",
            kind="error",
            exc_type="ReproError",
            message="boom",
            seed=7,
            traceback="tb",
            elapsed=0.25,
            attempts=2,
        )
        assert FailureRecord.from_dict(fr.to_dict()) == fr

    def test_signature_excludes_volatile_fields(self):
        a = FailureRecord("g", "HU", "error", "ReproError", "m", elapsed=1.0)
        b = FailureRecord("g", "HU", "error", "ReproError", "m", elapsed=9.0)
        assert a.signature() == b.signature()

    def test_from_exception_captures_traceback(self):
        try:
            raise ReproError("kapow")
        except ReproError as exc:
            fr = FailureRecord.from_exception(
                exc, graph_id="g", heuristic="HU", kind="error"
            )
        assert fr.exc_type == "ReproError"
        assert "kapow" in fr.traceback


# ----------------------------------------------------------------------
# deadline
# ----------------------------------------------------------------------
class TestDeadline:
    def test_fast_body_passes(self):
        with deadline(5.0):
            x = 1 + 1
        assert x == 2

    def test_slow_body_raises(self):
        with pytest.raises(GraphTimeoutError):
            with deadline(0.05):
                time.sleep(2.0)

    def test_none_disables(self):
        with deadline(None):
            time.sleep(0.01)


# ----------------------------------------------------------------------
# Error isolation (serial path)
# ----------------------------------------------------------------------
class TestErrorIsolation:
    def test_raise_policy_aborts(self, suite):
        faulty = FaultInjectingScheduler("HU", fail=_keys(suite, 0))
        with pytest.raises(ReproError, match="injected failure"):
            run_suite(suite, [faulty])

    def test_record_carries_exact_failures(self, suite):
        faulty = FaultInjectingScheduler("HU", fail=_keys(suite, 1, 4))
        with use_registry(MetricsRegistry()) as reg:
            results = run_suite(suite, [faulty], on_error="record")
        assert isinstance(results, SuiteResult)
        assert results.n_failed == 2
        assert {fr.signature() for fr in results.failures} == {
            (suite[1].graph_id, "HU", "error", "ReproError"),
            (suite[4].graph_id, "HU", "error", "ReproError"),
        }
        assert reg.counter("suite.failures") == 2
        assert reg.counter("suite.failures.HU.error") == 2
        # graphs whose only heuristic failed are absent entirely
        assert len(results) == len(suite) - 2

    def test_skip_counts_but_drops_records(self, suite):
        faulty = FaultInjectingScheduler("HU", fail=_keys(suite, 0))
        results = run_suite(suite, [faulty], on_error="skip")
        assert results.n_failed == 1
        assert results.failures == []
        assert 0 < results.failure_rate < 1

    def test_surviving_heuristics_keep_their_results(self, suite):
        faulty = FaultInjectingScheduler("HU", fail=_keys(suite, 0))
        results = run_suite(suite, [faulty, get_scheduler("MCP")], on_error="record")
        assert len(results) == len(suite)  # MCP survived on every graph
        assert "HU" not in results[0].results
        assert "MCP" in results[0].results

    def test_clean_run_has_no_failures(self, suite):
        results = run_suite(suite, [get_scheduler("HU")], on_error="record")
        assert results.n_failed == 0
        assert results.failure_rate == 0.0

    def test_wrong_schedule_caught_only_with_validate(self, suite):
        faulty = FaultInjectingScheduler("HU", fail=_keys(suite, 0), mode="wrong")
        clean = run_suite(suite, [faulty], on_error="record")
        assert clean.n_failed == 0
        checked = run_suite(suite, [faulty], on_error="record", validate=True)
        assert checked.n_failed == 1
        assert checked.failures[0].kind == "error"


# ----------------------------------------------------------------------
# Timeouts, retries, quarantine
# ----------------------------------------------------------------------
class TestTimeoutsAndRetries:
    def test_hang_quarantined_after_two_overruns(self, suite):
        faulty = FaultInjectingScheduler(
            "HU", fail=_keys(suite, 2), mode="hang", hang_seconds=30.0
        )
        with use_registry(MetricsRegistry()) as reg:
            t0 = time.perf_counter()
            results = run_suite(suite, [faulty], on_error="record", timeout=0.2)
            elapsed = time.perf_counter() - t0
        assert results.n_failed == 1
        fr = results.failures[0]
        assert fr.kind == "timeout"
        assert fr.exc_type == "GraphTimeoutError"
        assert fr.attempts == 2  # one retry, then quarantine
        assert elapsed < 10.0  # nowhere near the 30s hang
        assert reg.counter("suite.timeouts") == 2
        assert reg.counter("suite.quarantined") == 1

    def test_transient_failure_recovered_by_retry(self, suite):
        faulty = FaultInjectingScheduler(
            "HU", fail=_keys(suite, 0), fail_attempts=1
        )
        with use_registry(MetricsRegistry()) as reg:
            results = run_suite(
                suite, [faulty], on_error="record", retries=1, backoff=0.0
            )
        assert results.n_failed == 0
        assert len(results) == len(suite)
        assert reg.counter("suite.retries") == 1

    def test_persistent_failure_exhausts_retries(self, suite):
        faulty = FaultInjectingScheduler("HU", fail=_keys(suite, 0))
        results = run_suite(
            suite, [faulty], on_error="record", retries=2, backoff=0.0
        )
        assert results.n_failed == 1
        assert results.failures[0].attempts == 3


# ----------------------------------------------------------------------
# Serial/parallel identity under faults
# ----------------------------------------------------------------------
class TestSerialParallelIdentity:
    def test_raise_mode_failures_identical(self, suite):
        def run(jobs):
            faulty = FaultInjectingScheduler("HU", fail=_keys(suite, 1, 3))
            return run_suite(
                suite, [faulty, get_scheduler("MCP")], on_error="record", jobs=jobs
            )

        serial, parallel = run(1), run(2)
        assert list(serial) == list(parallel)
        assert serial.n_failed == parallel.n_failed == 2
        assert [fr.signature() for fr in serial.failures] == [
            fr.signature() for fr in parallel.failures
        ]

    def test_acceptance_hang_plus_two_raises(self, suite):
        """The issue's acceptance scenario, on both execution paths."""
        hang_keys = _keys(suite, 2)
        raise_keys = _keys(suite, 1, 4)

        def run(jobs):
            schedulers = [
                FaultInjectingScheduler(
                    "HU", fail=hang_keys, mode="hang", hang_seconds=30.0
                ),
                FaultInjectingScheduler("MCP", fail=raise_keys, mode="raise"),
            ]
            return run_suite(
                suite, schedulers, on_error="record", timeout=0.2, jobs=jobs
            )

        expected = {
            (suite[2].graph_id, "HU", "timeout", "GraphTimeoutError"),
            (suite[1].graph_id, "MCP", "error", "ReproError"),
            (suite[4].graph_id, "MCP", "error", "ReproError"),
        }
        for jobs in (1, 2):
            results = run(jobs)
            assert len(results) == len(suite)  # every graph kept a survivor
            assert results.n_failed == 3
            assert {fr.signature() for fr in results.failures} == expected


# ----------------------------------------------------------------------
# Worker crash recovery (parallel only)
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_crashed_worker_isolated_and_innocents_complete(self, suite):
        faulty = FaultInjectingScheduler("HU", fail=_keys(suite, 2), mode="crash")
        with use_registry(MetricsRegistry()) as reg:
            results = run_suite(suite, [faulty], on_error="record", jobs=2)
        assert len(results) == len(suite) - 1
        assert results.n_failed == 1
        fr = results.failures[0]
        assert fr.graph_id == suite[2].graph_id
        assert fr.heuristic is None  # whole-graph failure
        assert fr.kind == "crash"
        assert reg.counter("suite.pool_respawns") >= 1

    def test_crash_with_raise_policy_propagates(self, suite):
        from repro.experiments.faults import WorkerCrashError

        faulty = FaultInjectingScheduler("HU", fail=_keys(suite, 0), mode="crash")
        with pytest.raises(WorkerCrashError):
            run_suite(suite, [faulty], jobs=2)


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_journal_round_trip(self, suite, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        results = run_suite(suite, checkpoint=path)
        journal = CheckpointJournal(path)
        journaled, failures = journal.load()
        assert set(journaled) == {sg.graph_id for sg in suite}
        assert failures == {}
        assert list(journaled.values()) == list(results)

    def test_resume_skips_completed(self, suite, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_suite(suite[:3], checkpoint=path)
        with use_registry(MetricsRegistry()) as reg:
            results = run_suite(suite, checkpoint=path)
        assert reg.counter("suite.checkpoint.resumed") == 3
        assert results == run_suite(suite)

    def test_interrupt_then_resume_byte_identical(self, suite, tmp_path):
        """A ^C mid-suite leaves the journal intact; the resumed run's saved
        results are byte-identical to an uninterrupted run's."""
        path = tmp_path / "ckpt.jsonl"

        def interrupt(done, gr):
            if done == 4:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_suite(suite, checkpoint=path, progress=interrupt)
        # the journal holds exactly the graphs completed before the kill
        journaled, _ = CheckpointJournal(path).load()
        assert len(journaled) == 4

        resumed = run_suite(suite, checkpoint=path)
        uninterrupted = run_suite(suite)
        a, b = tmp_path / "resumed.json", tmp_path / "full.json"
        save_results(resumed, a)
        save_results(uninterrupted, b)
        assert a.read_bytes() == b.read_bytes()

    def test_resume_replays_failures(self, suite, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        faulty = FaultInjectingScheduler("HU", fail=_keys(suite, 0))
        first = run_suite(suite, [faulty], on_error="record", checkpoint=path)
        second = run_suite(suite, [faulty], on_error="record", checkpoint=path)
        assert second.n_failed == first.n_failed == 1
        assert [fr.signature() for fr in second.failures] == [
            fr.signature() for fr in first.failures
        ]
        assert list(second) == list(first)

    def test_torn_trailing_line_tolerated(self, suite, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_suite(suite[:2], checkpoint=path)
        with open(path, "a") as fh:
            fh.write('{"type": "result", "v": 1, "data": {"graph_id"')  # torn
        journaled, _ = CheckpointJournal(path).load()
        assert len(journaled) == 2

    def test_parallel_resume_matches_serial(self, suite, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_suite(suite[:3], checkpoint=path)
        resumed = run_suite(suite, checkpoint=path, jobs=2)
        assert resumed == run_suite(suite)

    def test_torn_mid_journal_line_skips_only_that_record(self, suite, tmp_path):
        """A torn line *followed by* good records (a resumed run appended
        after the fragment) loses only the torn record, not the tail."""
        path = tmp_path / "ckpt.jsonl"
        run_suite(suite[:3], checkpoint=path)
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = lines[1][: len(lines[1]) // 2].rstrip() + "\n"  # tear record 2
        path.write_text("".join(lines))
        journaled, _ = CheckpointJournal(path).load()
        assert len(journaled) == 2  # records 1 and 3 survive

    def test_append_heals_missing_trailing_newline(self, suite, tmp_path):
        """Appending after a torn final line must start on a fresh line, so
        the next record is not corrupted by concatenation."""
        path = tmp_path / "ckpt.jsonl"
        run_suite(suite[:1], checkpoint=path)
        with open(path, "a") as fh:
            fh.write('{"type": "result", "v": 1, "da')  # torn, no newline
        run_suite(suite[:2], checkpoint=path)  # resumes, appends graph 2
        journaled, _ = CheckpointJournal(path).load()
        assert len(journaled) == 2
        # the file parses line-by-line with exactly one bad line
        bad = 0
        for line in path.read_text().splitlines():
            try:
                json.loads(line)
            except json.JSONDecodeError:
                bad += 1
        assert bad == 1

    def test_resume_after_torn_line_byte_identical(self, suite, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_suite(suite[:4], checkpoint=path)
        with open(path, "a") as fh:
            fh.write('{"type": "res')  # crash mid-append
        resumed = run_suite(suite, checkpoint=path)
        a, b = tmp_path / "resumed.json", tmp_path / "full.json"
        save_results(resumed, a)
        save_results(run_suite(suite), b)
        assert a.read_bytes() == b.read_bytes()


# ----------------------------------------------------------------------
# Progress-callback guard
# ----------------------------------------------------------------------
class TestProgressGuard:
    def test_raising_callback_disabled_not_fatal(self, suite):
        calls = []

        def bad_progress(done, gr):
            calls.append(done)
            raise ValueError("buggy callback")

        results = run_suite(suite, [get_scheduler("HU")], progress=bad_progress)
        assert len(results) == len(suite)  # the run completed
        assert calls == [1]  # disabled after the first raise

    def test_keyboard_interrupt_still_propagates(self, suite):
        def ctrl_c(done, gr):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_suite(suite, [get_scheduler("HU")], progress=ctrl_c)


# ----------------------------------------------------------------------
# Failure reporting
# ----------------------------------------------------------------------
class TestFailureReport:
    def test_empty(self):
        assert format_failure_report([]) == "no failures recorded"

    def test_aggregates_and_details(self):
        failures = [
            FailureRecord(f"g{i}", "HU", "error", "ReproError", "boom")
            for i in range(12)
        ] + [FailureRecord("g0", None, "crash", "WorkerCrashError", "died")]
        report = format_failure_report(failures, max_detail=10)
        assert "13 failure(s) recorded" in report
        assert "... and 3 more" in report
        assert "crash" in report
