"""Tests for the adaptive (granularity-dispatching) scheduler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro import TaskGraph, get_scheduler
from repro.generation.random_dag import generate_pdg
from repro.schedulers import AdaptiveScheduler, DEFAULT_SELECTION_TABLE

from conftest import task_graphs


class TestDispatch:
    def test_low_granularity_goes_to_clans(self):
        rng = np.random.default_rng(1)
        g = generate_pdg(rng, n_tasks=30, band=0, anchor=2, weight_range=(20, 100))
        sched = AdaptiveScheduler()
        sched.schedule(g)
        assert sched.last_band == 0
        assert sched.last_choice == "CLANS"

    def test_high_granularity_races_critical_path_methods(self):
        rng = np.random.default_rng(2)
        g = generate_pdg(rng, n_tasks=30, band=4, anchor=3, weight_range=(20, 100))
        sched = AdaptiveScheduler()
        sched.schedule(g)
        assert sched.last_band == 4
        assert sched.last_choice in DEFAULT_SELECTION_TABLE[4]

    def test_edgeless_graph_treated_as_coarse(self):
        g = TaskGraph()
        for i in range(3):
            g.add_task(i, 10)
        sched = AdaptiveScheduler()
        s = sched.schedule(g)
        s.validate(g)
        assert sched.last_band == 4

    def test_custom_table(self, paper_example):
        sched = AdaptiveScheduler({b: ("SERIAL",) for b in range(5)})
        s = sched.schedule(paper_example)
        assert sched.last_choice == "SERIAL"
        assert s.n_processors == 1


class TestQuality:
    def test_never_retards(self):
        """At low granularity the dispatch goes to CLANS, whose guarantee
        carries over."""
        rng = np.random.default_rng(3)
        sched = AdaptiveScheduler()
        for band in (0, 1):
            for _ in range(3):
                g = generate_pdg(
                    rng, n_tasks=30, band=band, anchor=2, weight_range=(20, 200)
                )
                s = sched.schedule(g)
                assert s.makespan <= g.serial_time() + 1e-9

    def test_at_least_as_good_as_candidates(self):
        rng = np.random.default_rng(4)
        sched = AdaptiveScheduler()
        for band in range(5):
            g = generate_pdg(
                rng, n_tasks=30, band=band, anchor=3, weight_range=(20, 100)
            )
            s = sched.schedule(g)
            for name in DEFAULT_SELECTION_TABLE[band]:
                assert s.makespan <= get_scheduler(name).schedule(g).makespan + 1e-9

    def test_tracks_per_band_best_closely(self):
        """Across all bands, ADAPT stays within a few percent of the best
        of the five paper heuristics."""
        from repro import paper_schedulers

        rng = np.random.default_rng(5)
        sched = AdaptiveScheduler()
        for band in range(5):
            g = generate_pdg(
                rng, n_tasks=35, band=band, anchor=2, weight_range=(20, 200)
            )
            best = min(s.schedule(g).makespan for s in paper_schedulers())
            assert sched.schedule(g).makespan <= best * 1.10 + 1e-9

    @given(g=task_graphs(min_tasks=1, max_tasks=10))
    @settings(max_examples=30, deadline=None)
    def test_property_valid(self, g):
        s = AdaptiveScheduler().schedule(g)
        s.validate(g)
