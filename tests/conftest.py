"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro import TaskGraph


# ----------------------------------------------------------------------
# hand-built graphs
# ----------------------------------------------------------------------
@pytest.fixture
def paper_example() -> TaskGraph:
    """The appendix worked example (Figures 8/10/12/14/16).

    Nodes 1..5 with weights 10/20/30/40/50; CLANS schedules it in parallel
    time 130 on 2 processors (Figure 16 C).
    """
    g = TaskGraph()
    for t, w in [(1, 10), (2, 20), (3, 30), (4, 40), (5, 50)]:
        g.add_task(t, w)
    g.add_edge(1, 2, 5)
    g.add_edge(1, 3, 6)
    g.add_edge(3, 4, 3)
    g.add_edge(2, 5, 4)
    g.add_edge(4, 5, 4)
    return g


@pytest.fixture
def diamond() -> TaskGraph:
    """a -> {b, c} -> d with uniform weights 10 and comm 4."""
    g = TaskGraph()
    for t in "abcd":
        g.add_task(t, 10)
    g.add_edge("a", "b", 4)
    g.add_edge("a", "c", 4)
    g.add_edge("b", "d", 4)
    g.add_edge("c", "d", 4)
    return g


@pytest.fixture
def chain5() -> TaskGraph:
    g = TaskGraph()
    for i in range(5):
        g.add_task(i, 10)
        if i:
            g.add_edge(i - 1, i, 3)
    return g


@pytest.fixture
def single() -> TaskGraph:
    g = TaskGraph()
    g.add_task("only", 7)
    return g


@pytest.fixture
def two_sources_join() -> TaskGraph:
    """Two independent sources feeding one sink — heavy communication."""
    g = TaskGraph()
    g.add_task("s1", 10)
    g.add_task("s2", 10)
    g.add_task("join", 10)
    g.add_edge("s1", "join", 100)
    g.add_edge("s2", "join", 100)
    return g


@pytest.fixture
def wide_fork() -> TaskGraph:
    """One source fanning out to six tasks then joining."""
    g = TaskGraph()
    g.add_task("src", 10)
    g.add_task("sink", 10)
    for i in range(6):
        g.add_task(i, 20)
        g.add_edge("src", i, 2)
        g.add_edge(i, "sink", 2)
    return g


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def task_graphs(
    draw,
    min_tasks: int = 1,
    max_tasks: int = 12,
    max_weight: int = 50,
    max_comm: int = 120,
    connected_bias: float = 0.35,
):
    """Random weighted DAGs: edges follow a fixed topological order.

    ``connected_bias`` is the probability of each forward edge existing;
    weights are positive integers, communication costs non-negative.
    """
    n = draw(st.integers(min_tasks, max_tasks))
    g = TaskGraph()
    weights = draw(
        st.lists(st.integers(1, max_weight), min_size=n, max_size=n)
    )
    for i in range(n):
        g.add_task(i, weights[i])
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()) and draw(
                st.floats(0, 1, allow_nan=False)
            ) < connected_bias:
                g.add_edge(i, j, draw(st.integers(0, max_comm)))
    return g


@st.composite
def weighted_dags_with_edges(draw, min_tasks: int = 3, max_tasks: int = 14):
    """DAGs guaranteed to contain at least one edge (granularity defined)."""
    g = draw(task_graphs(min_tasks=min_tasks, max_tasks=max_tasks))
    if g.n_edges == 0:
        tasks = g.tasks()
        g.add_edge(tasks[0], tasks[1], draw(st.integers(1, 60)))
    # granularity needs strictly positive max out-edge per non-sink
    for t in tasks_with_zero_max_edge(g):
        s = g.successors(t)[0]
        g.add_edge(t, s, draw(st.integers(1, 60)))
    return g


def tasks_with_zero_max_edge(g: TaskGraph):
    out = []
    for t in g.tasks():
        edges = g.out_edges(t)
        if edges and max(edges.values()) <= 0:
            out.append(t)
    return out
