"""Tests for the random series-parallel parse-tree generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GenerationError
from repro.generation.parse_tree import SPKind, SPNode, random_parse_tree


class TestRandomParseTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 20, 61])
    def test_leaf_count_exact(self, n, rng):
        tree = random_parse_tree(n, rng)
        assert tree.n_leaves == n

    def test_single_leaf_is_leaf(self, rng):
        assert random_parse_tree(1, rng).kind is SPKind.LEAF

    def test_kinds_alternate(self, rng):
        tree = random_parse_tree(40, rng)
        for node in tree.walk():
            for child in node.children:
                if not child.kind is SPKind.LEAF:
                    assert child.kind is not node.kind

    def test_max_children_respected(self, rng):
        tree = random_parse_tree(60, rng, max_children=3)
        for node in tree.walk():
            assert len(node.children) <= 3

    def test_root_kind_forced(self, rng):
        t = random_parse_tree(10, rng, root_kind=SPKind.INDEPENDENT)
        assert t.kind is SPKind.INDEPENDENT

    def test_root_leaf_rejected(self, rng):
        with pytest.raises(GenerationError):
            random_parse_tree(5, rng, root_kind=SPKind.LEAF)

    def test_bad_args(self, rng):
        with pytest.raises(GenerationError):
            random_parse_tree(0, rng)
        with pytest.raises(GenerationError):
            random_parse_tree(5, rng, max_children=1)

    def test_deterministic_under_seed(self):
        a = random_parse_tree(30, np.random.default_rng(7))
        b = random_parse_tree(30, np.random.default_rng(7))

        def shape(t: SPNode):
            return (t.kind.value, [shape(c) for c in t.children])

        assert shape(a) == shape(b)

    def test_depth_positive_for_composite(self, rng):
        assert random_parse_tree(10, rng).depth() >= 1
