"""Tests for the parallel suite runner (repro.experiments.parallel)."""

from __future__ import annotations

import pytest

from repro import TaskGraph, get_scheduler
from repro.experiments.parallel import (
    default_chunk_size,
    resolve_jobs,
    run_suite_parallel,
)
from repro.experiments.persistence import save_results
from repro.experiments.runner import PAPER_HEURISTIC_ORDER, run_suite
from repro.generation.suites import SuiteCell, generate_suite
from repro.obs.log import ProgressStats
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.trace import Tracer, use_tracer
from repro.schedulers.base import Scheduler


@pytest.fixture(scope="module")
def small_suite():
    cells = [SuiteCell(0, 2, (20, 100)), SuiteCell(3, 4, (20, 200))]
    return list(generate_suite(graphs_per_cell=3, cells=cells, n_tasks_range=(15, 30)))


@pytest.fixture(scope="module")
def serial_results(small_suite):
    return run_suite(small_suite)


class TestResolveJobs:
    def test_none_means_all_cpus(self):
        assert resolve_jobs(None) >= 1

    def test_passthrough(self):
        assert resolve_jobs(3) == 3

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            resolve_jobs(bad)

    def test_chunk_size_bounds(self):
        assert default_chunk_size(1, 8) == 1
        assert default_chunk_size(240, 4) == 15
        assert default_chunk_size(100000, 2) == 32  # capped


class TestDeterminism:
    def test_parallel_equals_serial(self, small_suite, serial_results):
        parallel = run_suite_parallel(small_suite, jobs=2)
        assert parallel == serial_results

    def test_byte_identical_serialization(
        self, small_suite, serial_results, tmp_path
    ):
        parallel = run_suite(small_suite, jobs=2)
        save_results(serial_results, tmp_path / "serial.json")
        save_results(parallel, tmp_path / "parallel.json")
        assert (tmp_path / "serial.json").read_bytes() == (
            tmp_path / "parallel.json"
        ).read_bytes()

    def test_suite_order_preserved(self, small_suite):
        # chunk_size=1 maximizes out-of-order completion opportunities
        parallel = run_suite_parallel(small_suite, jobs=2, chunk_size=1)
        assert [gr.graph_id for gr in parallel] == [
            sg.graph_id for sg in small_suite
        ]

    def test_all_heuristics_present(self, small_suite):
        for gr in run_suite_parallel(small_suite, jobs=2):
            assert set(gr.results) == set(PAPER_HEURISTIC_ORDER)


class TestDispatchAndFallback:
    def test_run_suite_jobs_1_is_serial(self, small_suite, serial_results):
        assert run_suite(small_suite, jobs=1) == serial_results

    def test_jobs_none_uses_all_cpus(self, small_suite, serial_results):
        assert run_suite(small_suite, jobs=None) == serial_results

    def test_invalid_jobs_rejected(self, small_suite):
        with pytest.raises(ValueError):
            run_suite(small_suite, jobs=0)

    def test_unpicklable_scheduler_falls_back_to_serial(self, small_suite):
        class UnpicklableHu(Scheduler):
            name = "HU"  # delegate: results must match the real HU

            def __init__(self):
                self._impl = get_scheduler("HU")
                self._capture = lambda: None  # lambdas cannot be pickled

            def _schedule(self, graph):
                return self._impl._schedule(graph)

        results = run_suite_parallel(small_suite, [UnpicklableHu()], jobs=2)
        expected = run_suite(small_suite, [get_scheduler("HU")])
        assert results == expected

    def test_single_graph_suite_runs_serially(self, small_suite):
        results = run_suite_parallel(small_suite[:1], jobs=4)
        assert results == run_suite(small_suite[:1])


class TestObsMerging:
    def test_worker_metrics_merged_into_parent(self, small_suite):
        with use_registry(MetricsRegistry()) as reg:
            run_suite_parallel(small_suite, jobs=2)
        n = len(small_suite)
        assert reg.counter("suite.graphs") == n
        assert reg.counter("suite.parallel.runs") == 1
        assert reg.counter("suite.parallel.chunks") >= 2
        for name in PAPER_HEURISTIC_ORDER:
            assert reg.timer_stats(f"scheduler.{name}").count == n
        # algorithm counters flow back too (every run zeroes some DSC edges)
        assert reg.counter("dsc.edge_zeroings") > 0

    def test_parent_trace_collects_worker_spans(self, small_suite):
        with use_tracer(Tracer(enabled=True)) as tracer:
            run_suite_parallel(small_suite, jobs=2)
        graph_spans = [e for e in tracer.spans() if e["name"].startswith("graph.")]
        assert len(graph_spans) == len(small_suite)
        # worker events are tagged with the real worker pid
        assert all(e["pid"] != 0 for e in graph_spans)

    def test_disabled_tracer_stays_empty(self, small_suite):
        with use_tracer(Tracer(enabled=False)) as tracer:
            run_suite_parallel(small_suite, jobs=2)
        assert len(tracer) == 0


class TestProgress:
    def test_called_once_per_graph_with_increasing_count(self, small_suite):
        seen = []
        run_suite_parallel(
            small_suite, jobs=2, progress=lambda i, gr: seen.append(i)
        )
        assert seen == list(range(1, len(small_suite) + 1))

    def test_stats_callback(self, small_suite):
        stats_seen = []

        def progress(done, gr, stats):
            stats_seen.append(stats)

        run_suite_parallel(small_suite, jobs=2, progress=progress)
        assert len(stats_seen) == len(small_suite)
        final = stats_seen[-1]
        assert isinstance(final, ProgressStats)
        assert final.done == final.total == len(small_suite)
        assert final.elapsed > 0 and final.rate > 0


class TestPickling:
    def test_taskgraph_pickle_roundtrip(self):
        import pickle

        g = TaskGraph()
        g.add_task("a", 3)
        g.add_task(("tuple", 1), 2)
        g.add_edge("a", ("tuple", 1), 5)
        g2 = pickle.loads(pickle.dumps(g))
        assert g2 == g
        assert g2.in_degree(("tuple", 1)) == 1
        assert g2.edge_weight("a", ("tuple", 1)) == 5.0
        g2.validate()

    def test_pickle_drops_memo_table(self):
        import pickle

        g = TaskGraph()
        g.add_task("a")
        g.add_task("b")
        g.add_edge("a", "b")
        g.topological_order()  # populate the memo
        g2 = pickle.loads(pickle.dumps(g))
        assert g2._scratch == {}
        assert g2.topological_order() == ["a", "b"]
