"""Golden regression tests: pinned makespans on seeded graphs.

These protect the heuristics against silent behavioural drift: any change
to priorities, tie-breaking, or timing shows up as a changed makespan on
these fixed inputs.  If a change is *intentional* (e.g. an algorithmic
improvement), regenerate the constants with::

    python -m pytest tests/test_golden.py --collect-only  # see the recipe
    python -c "import tests.test_golden as g; print(g.regenerate())"
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import get_scheduler
from repro.generation.random_dag import generate_pdg

#: (band, anchor, seed) -> {heuristic: makespan}; values were produced by
#: this library at v1.0.0 and every entry was validated against the
#: execution model when recorded.
GOLDEN: dict[tuple[int, int, int], dict[str, float]] = {}


def _graph(band: int, anchor: int, seed: int):
    rng = np.random.default_rng(seed)
    return generate_pdg(
        rng, n_tasks=30, band=band, anchor=anchor, weight_range=(20, 100)
    )


CASES = [(0, 2, 11), (2, 3, 22), (4, 4, 33)]
NAMES = ["CLANS", "DSC", "MCP", "MH", "HU", "ETF", "LC", "EZ", "DLS", "HLFET"]


def regenerate() -> str:
    """Print a fresh GOLDEN table (for intentional algorithm changes)."""
    lines = ["GOLDEN = {"]
    for case in CASES:
        g = _graph(*case)
        row = {}
        for name in NAMES:
            s = get_scheduler(name).schedule(g)
            s.validate(g)
            row[name] = s.makespan
        entries = ", ".join(f'"{k}": {v!r}' for k, v in row.items())
        lines.append(f"    {case}: {{{entries}}},")
    lines.append("}")
    return "\n".join(lines)


GOLDEN = {
    (0, 2, 11): {"CLANS": 1683.0, "DSC": 3141.9958899261183, "MCP": 2866.4211881425467, "MH": 2866.4211881425467, "HU": 11807.77840969506, "ETF": 2866.4211881425467, "LC": 6738.5469015264225, "EZ": 1683.0, "DLS": 2866.4211881425467, "HLFET": 3141.9958899261183},
    (2, 3, 22): {"CLANS": 1266.6952151447927, "DSC": 1097.9113621929084, "MCP": 1112.6369902343092, "MH": 1285.657561002683, "HU": 2094.913269530301, "ETF": 1133.0484406419214, "LC": 1223.9159751269062, "EZ": 1155.0828481890785, "DLS": 1075.1122800522542, "HLFET": 1112.6369902343092},
    (4, 4, 33): {"CLANS": 725.7756704491898, "DSC": 716.092099815579, "MCP": 716.092099815579, "MH": 716.092099815579, "HU": 812.547478184513, "ETF": 737.8525035332297, "LC": 726.9595582488885, "EZ": 744.8253423122078, "DLS": 709.1525285329164, "HLFET": 716.092099815579},
}


class TestGolden:
    @pytest.mark.parametrize("case", CASES)
    def test_generation_is_stable(self, case):
        """The same seed must produce the same graph twice."""
        assert _graph(*case) == _graph(*case)

    @pytest.mark.parametrize("case", CASES)
    @pytest.mark.parametrize("name", NAMES)
    def test_makespans_pinned(self, case, name):
        expected = GOLDEN[case].get(name)
        if expected is None:
            pytest.skip("golden value not recorded")
        g = _graph(*case)
        s = get_scheduler(name).schedule(g)
        s.validate(g)
        assert s.makespan == pytest.approx(expected, rel=1e-12), (
            f"{name} drifted on {case}: got {s.makespan!r}, "
            f"expected {expected!r}.  If intentional, regenerate GOLDEN."
        )
