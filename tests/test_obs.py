"""Tests for the repro.obs observability subsystem.

Covers span nesting/timing, counter isolation between registries, manifest
round-trips, the Scheduler.schedule span/timing contract (exactly one span
per call, error paths included), run_suite error context and progress
statistics.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro import TaskGraph, get_scheduler
from repro.core.exceptions import ScheduleError
from repro.core.schedule import Schedule
from repro.experiments.runner import evaluate_graph, run_suite
from repro.generation.suites import SuiteCell, SuiteGraph
from repro.obs import (
    MetricsRegistry,
    ProgressLogger,
    ProgressStats,
    RunManifest,
    Tracer,
    get_registry,
    get_tracer,
    load_manifest,
    manifest_path_for,
    use_registry,
    use_tracer,
)
from repro.schedulers.base import Scheduler


class _BoomScheduler(Scheduler):
    """Raises mid-algorithm (unregistered on purpose)."""

    name = "BOOM"

    def _schedule(self, graph):
        raise ScheduleError("boom")


class _EmptyScheduler(Scheduler):
    """Returns an empty (invalid) schedule — trips validate()."""

    name = "EMPTY"

    def _schedule(self, graph):
        return Schedule()


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_and_timing(self):
        tracer = Tracer()
        with tracer.span("outer", kind="o"):
            with tracer.span("inner", kind="i"):
                sum(range(1000))
        inner, outer = tracer.events  # inner closes (and records) first
        assert inner["name"] == "inner"
        assert outer["name"] == "outer"
        assert inner["args"]["parent"] == "outer"
        assert "parent" not in outer.get("args", {})
        assert inner["dur"] <= outer["dur"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1.0

    def test_span_records_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("nope")
        (event,) = tracer.events
        assert event["args"]["error"] == "ValueError: nope"

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("quiet"):
            pass
        tracer.add_span("quiet", 0.0, 1.0)
        tracer.instant("quiet")
        assert len(tracer) == 0

    def test_global_tracer_disabled_by_default(self):
        assert get_tracer().enabled is False

    def test_use_tracer_restores(self):
        before = get_tracer()
        with use_tracer(Tracer()) as tr:
            assert get_tracer() is tr
        assert get_tracer() is before

    def test_jsonl_export_one_event_per_line(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.instant("marker", note="here")
        path = tracer.write(tmp_path / "t.jsonl")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        events = [json.loads(line) for line in lines]
        assert {e["name"] for e in events} == {"a", "marker"}

    def test_chrome_export_loads_in_trace_viewer_shape(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", cat="test"):
            pass
        path = tracer.write(tmp_path / "t.json")
        data = json.loads(path.read_text())
        (event,) = data["traceEvents"]
        assert event["ph"] == "X"
        assert {"name", "cat", "ts", "dur", "pid", "tid"} <= set(event)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_isolation_between_registries(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.inc("x")
        r1.inc("x", 4)
        assert r1.counter("x") == 5
        assert r2.counter("x") == 0

    def test_use_registry_scopes_the_default(self):
        sandbox = MetricsRegistry()
        before = get_registry()
        with use_registry(sandbox):
            get_registry().inc("scoped")
        assert get_registry() is before
        assert sandbox.counter("scoped") == 1
        assert before.counter("scoped") == 0

    def test_timer_context_manager(self):
        r = MetricsRegistry()
        with r.timer("t"):
            pass
        with pytest.raises(RuntimeError):
            with r.timer("t"):
                raise RuntimeError("timed errors still count")
        stats = r.timer_stats("t")
        assert stats.count == 2
        assert stats.total_s >= 0.0
        assert stats.min_s <= stats.max_s

    def test_histogram_observe(self):
        r = MetricsRegistry()
        for v in (0.5, 3.0, 100.0):
            r.observe("h", v)
        h = r.snapshot()["histograms"]["h"]
        assert h["count"] == 3
        assert h["min"] == 0.5
        assert h["max"] == 100.0
        assert sum(h["buckets"].values()) == 3

    def test_snapshot_merge_roundtrip(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.inc("c", 2)
        r1.add_timing("t", 0.5)
        r2.merge(r1.snapshot())
        r2.merge(r1.snapshot())
        assert r2.counter("c") == 4
        assert r2.timer_stats("t").count == 2
        assert r2.timer_stats("t").total_s == pytest.approx(1.0)


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
class TestManifest:
    def test_collect_fills_environment(self):
        from repro import __version__

        m = RunManifest.collect(seed=7, config={"k": 1})
        assert m.seed == 7
        assert m.version == __version__
        assert m.platform["python"]
        assert m.created

    def test_round_trip_next_to_results(self, tmp_path):
        m = RunManifest.collect(seed=42, config={"graphs_per_cell": 1})
        with m.phase("schedule"):
            pass
        reg = MetricsRegistry()
        reg.inc("simulator.events", 9)
        m.attach_metrics(reg)
        results_path = tmp_path / "res.json"
        written = m.write_for(results_path)
        assert written == tmp_path / "res.manifest.json"
        assert manifest_path_for(results_path) == written
        assert manifest_path_for(written) == written  # idempotent
        loaded = load_manifest(written)
        assert loaded.seed == 42
        assert loaded.config == {"graphs_per_cell": 1}
        assert "schedule" in loaded.phases
        assert loaded.metrics["counters"]["simulator.events"] == 9
        assert loaded.to_dict() == m.to_dict()

    def test_load_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ValueError):
            load_manifest(path)


# ----------------------------------------------------------------------
# Scheduler.schedule() instrumentation contract
# ----------------------------------------------------------------------
class TestSchedulerSpans:
    def test_exactly_one_span_and_timing_per_call(self, paper_example):
        with use_tracer(Tracer()) as tracer, use_registry(MetricsRegistry()) as reg:
            get_scheduler("DSC").schedule(paper_example)
            get_scheduler("DSC").schedule(paper_example)
        spans = tracer.spans("schedule.DSC")
        assert len(spans) == 2
        assert spans[0]["args"]["n_tasks"] == paper_example.n_tasks
        assert reg.timer_stats("scheduler.DSC").count == 2
        assert reg.counter("scheduler.DSC.errors") == 0

    def test_error_path_still_records_one_span(self, paper_example):
        with use_tracer(Tracer()) as tracer, use_registry(MetricsRegistry()) as reg:
            with pytest.raises(ScheduleError):
                _BoomScheduler().schedule(paper_example)
        (span,) = tracer.spans("schedule.BOOM")
        assert "boom" in span["args"]["error"]
        assert reg.counter("scheduler.BOOM.errors") == 1
        assert reg.timer_stats("scheduler.BOOM").count == 1

    def test_nested_graph_span_parents_scheduler_span(self, paper_example):
        with use_tracer(Tracer()) as tracer:
            with tracer.span("graph.g0", cat="suite"):
                get_scheduler("HU").schedule(paper_example)
        sched_span = tracer.spans("schedule.HU")[0]
        assert sched_span["args"]["parent"] == "graph.g0"

    def test_counters_flow_to_scoped_registry(self, paper_example):
        with use_registry(MetricsRegistry()) as reg:
            get_scheduler("DSC").schedule(paper_example)
            get_scheduler("MCP").schedule(paper_example)
            get_scheduler("CLANS").schedule(paper_example)
        counters = reg.counters()
        assert counters["dsc.edge_zeroings"] + counters["dsc.fresh_clusters"] == 5
        assert counters["mcp.insertion_attempts"] == 5
        assert counters["clans.group_decisions"] >= 1
        assert counters["simulator.events"] >= 5  # CLANS simulates its clustering


# ----------------------------------------------------------------------
# runner error context and progress stats
# ----------------------------------------------------------------------
def _tiny_suite(graph, n=3):
    cell = SuiteCell(band=2, anchor=3, weight_range=(20, 100))
    return [SuiteGraph(cell=cell, index=i, graph=graph) for i in range(n)]


class TestRunnerContext:
    def test_validation_failure_carries_run_context(self, paper_example):
        with pytest.raises(ScheduleError) as excinfo:
            evaluate_graph(
                paper_example,
                [_EmptyScheduler()],
                validate=True,
                graph_id="g-007",
                seed=42,
            )
        notes = "\n".join(excinfo.value.__notes__)
        assert "g-007" in notes
        assert "EMPTY" in notes
        assert "42" in notes

    def test_scheduler_failure_carries_run_context(self, paper_example):
        with pytest.raises(ScheduleError) as excinfo:
            evaluate_graph(paper_example, [_BoomScheduler()], graph_id="g-1")
        assert "g-1" in "\n".join(excinfo.value.__notes__)

    def test_run_suite_attaches_graph_id_and_seed(self, paper_example):
        suite = _tiny_suite(paper_example, n=1)
        with pytest.raises(ScheduleError) as excinfo:
            run_suite(suite, [_BoomScheduler()], seed=1234)
        notes = "\n".join(excinfo.value.__notes__)
        assert suite[0].graph_id in notes
        assert "1234" in notes

    def test_progress_two_arg_callback_still_works(self, paper_example):
        seen = []
        run_suite(
            _tiny_suite(paper_example),
            [get_scheduler("HU")],
            progress=lambda i, gr: seen.append(i),
        )
        assert seen == [1, 2, 3]

    def test_progress_three_arg_callback_gets_stats(self, paper_example):
        stats_seen: list[ProgressStats] = []
        run_suite(
            _tiny_suite(paper_example),
            [get_scheduler("HU")],
            progress=lambda i, gr, stats: stats_seen.append(stats),
        )
        assert [s.done for s in stats_seen] == [1, 2, 3]
        assert all(s.total == 3 for s in stats_seen)
        assert stats_seen[-1].elapsed >= stats_seen[0].elapsed >= 0.0
        assert stats_seen[-1].rate > 0.0
        assert stats_seen[-1].eta == pytest.approx(0.0)

    def test_run_suite_traces_each_graph(self, paper_example):
        suite = _tiny_suite(paper_example)
        with use_tracer(Tracer()) as tracer:
            run_suite(suite, [get_scheduler("HU")])
        graph_spans = [e for e in tracer.spans() if e["name"].startswith("graph.")]
        assert len(graph_spans) == 3


class TestProgressLogger:
    # an injected logger outside the "repro" namespace keeps these tests
    # independent of whether obs.configure() disabled propagation earlier
    def test_logs_count_elapsed_and_rate(self, caplog):
        pl = ProgressLogger(every=1, logger=logging.getLogger("obs-test.rate"))
        stats = ProgressStats(done=5, total=10, elapsed=2.0, rate=2.5)
        with caplog.at_level(logging.INFO, logger="obs-test.rate"):
            pl(5, None, stats)
        (record,) = caplog.records
        assert "5/10 graphs" in record.message
        assert "2.0s elapsed" in record.message
        assert "2.5 graphs/s" in record.message
        assert "ETA 2.0s" in record.message

    def test_respects_every_and_final(self, caplog):
        pl = ProgressLogger(every=2, logger=logging.getLogger("obs-test.every"))
        with caplog.at_level(logging.INFO, logger="obs-test.every"):
            for i in range(1, 6):
                pl(i, None, ProgressStats(done=i, total=5, elapsed=1.0, rate=1.0))
        logged = [r.done for r in caplog.records]
        assert logged == [2, 4, 5]  # every 2nd plus the final graph
