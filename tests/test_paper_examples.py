"""Reproduction of the paper's worked appendix example (Figures 8–16).

The appendix traces all five heuristics over one 5-node PDG.  The figure
images are not part of the text, but the CLANS walkthrough gives exact
numbers we check bit-for-bit; for the other heuristics we verify the
documented qualitative behaviour on the same graph.
"""

from __future__ import annotations

import pytest

from repro import TaskGraph, get_scheduler, paper_schedulers
from repro.clans import ClanKind, decompose


class TestClansWalkthrough:
    """Appendix A.5's cost derivation, step by step."""

    def test_c1_cluster_cost(self, paper_example):
        """C1 = {3, 4} is linear: clustered cost 30 + 40 = 70."""
        c1 = paper_example.subgraph({3, 4})
        assert c1.serial_time() == 70.0

    def test_node2_remote_cost(self, paper_example):
        """Node 2 separate: in-edge 5 + weight 20 + out-edge 4 = 29."""
        cost = (
            paper_example.edge_weight(1, 2)
            + paper_example.weight(2)
            + paper_example.edge_weight(2, 5)
        )
        assert cost == 29.0

    def test_c2_parallel_cost_is_70(self, paper_example):
        """Parallelizing C2 costs max(29, 70) = 70 < clustering 90."""
        assert max(29.0, 70.0) == 70.0
        assert 20.0 + 70.0 == 90.0  # the rejected clustering cost

    def test_total_parallel_time_130(self, paper_example):
        """1 + C2 + 5 in sequence: 10 + 70 + 50 = 130 (Figure 16 C)."""
        s = get_scheduler("CLANS").schedule(paper_example)
        assert s.makespan == pytest.approx(130.0)

    def test_parse_tree_matches_figure_16b(self, paper_example):
        tree = decompose(paper_example)
        kinds = [(n.kind, n.members) for n in tree.walk() if not n.is_leaf]
        assert (ClanKind.LINEAR, frozenset([1, 2, 3, 4, 5])) in kinds
        assert (ClanKind.INDEPENDENT, frozenset([2, 3, 4])) in kinds
        assert (ClanKind.LINEAR, frozenset([3, 4])) in kinds


class TestAllHeuristicsOnExample:
    def test_everyone_valid(self, paper_example):
        for sched in paper_schedulers():
            sched.schedule(paper_example).validate(paper_example)

    def test_hu_spreads_most(self, paper_example):
        """HU's earliest-available-processor rule gives one task per
        processor here — the most processors of the five."""
        results = {
            s.name: s.schedule(paper_example) for s in paper_schedulers()
        }
        assert results["HU"].n_processors == 5
        assert all(
            results["HU"].n_processors >= r.n_processors
            for r in results.values()
        )

    def test_best_heuristics_reach_130(self, paper_example):
        """130 is the best achievable by clustering node 2 away; CLANS,
        DSC, MCP and MH all find it."""
        for name in ("CLANS", "DSC", "MCP", "MH"):
            s = get_scheduler(name).schedule(paper_example)
            assert s.makespan == pytest.approx(130.0), name

    def test_hu_pays_communication(self, paper_example):
        s = get_scheduler("HU").schedule(paper_example)
        assert s.makespan > 130.0

    def test_nobody_beats_the_optimal(self, paper_example):
        opt = get_scheduler("OPT").schedule(paper_example)
        assert opt.makespan == pytest.approx(130.0)
        for sched in paper_schedulers():
            assert sched.schedule(paper_example).makespan >= opt.makespan - 1e-9
