"""Tests for the CLANS scheduler (appendix A.5, Figures 15–16)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import ClansScheduler, TaskGraph
from repro.clans import ClanKind

from conftest import task_graphs


class TestPaperWorkedExample:
    """Figure 16: the example completes in parallel time 130 on 2 procs."""

    def test_parallel_time_130(self, paper_example):
        sched = ClansScheduler()
        s = sched.schedule(paper_example)
        assert s.makespan == pytest.approx(130.0)
        assert s.n_processors == 2

    def test_node_2_runs_apart_from_c1(self, paper_example):
        """The decision at C3 parallelizes C2: node 2 executes separately
        from nodes 3 and 4 (paper's Figure 16 C)."""
        s = ClansScheduler().schedule(paper_example)
        assert s.processor_of(2) != s.processor_of(3)
        assert s.processor_of(3) == s.processor_of(4)
        # the linear context (1, C1, 5) shares the local processor
        assert s.processor_of(1) == s.processor_of(3) == s.processor_of(5)

    def test_tree_exposed(self, paper_example):
        sched = ClansScheduler()
        sched.schedule(paper_example)
        assert sched.last_tree is not None
        assert sched.last_tree.kind is ClanKind.LINEAR
        assert not sched.last_fallback


class TestSpeedupCheck:
    def test_serializes_under_heavy_comm(self, two_sources_join):
        """With comm far above work, CLANS must fold to one processor."""
        s = ClansScheduler().schedule(two_sources_join)
        assert s.n_processors == 1
        assert s.makespan == two_sources_join.serial_time()

    def test_parallelizes_under_light_comm(self, wide_fork):
        s = ClansScheduler().schedule(wide_fork)
        assert s.n_processors > 1
        assert s.makespan < wide_fork.serial_time()

    def test_no_check_can_retard(self, two_sources_join):
        unchecked = ClansScheduler(speedup_check=False)
        s = unchecked.schedule(two_sources_join)
        s.validate(two_sources_join)
        assert s.makespan > two_sources_join.serial_time()

    @given(g=task_graphs(min_tasks=2, max_tasks=12, max_comm=300))
    @settings(max_examples=60, deadline=None)
    def test_never_retards_property(self, g):
        sched = ClansScheduler()
        s = sched.schedule(g)
        s.validate(g)
        assert s.speedup(g) >= 1.0 - 1e-9

    def test_fallback_flag_consistency(self, two_sources_join, wide_fork):
        sched = ClansScheduler()
        sched.schedule(wide_fork)
        assert sched.last_fallback in (False, True)
        # a graph the estimates handle well must not need the macro fallback
        sched.schedule(two_sources_join)
        # serialization here comes from the local decision, not the fallback
        assert not sched.last_fallback


class TestDecisions:
    def test_independent_root_always_parallelized_when_free(self):
        """Disjoint components have zero communication: parallelize."""
        g = TaskGraph()
        for i in range(4):
            g.add_task(i, 10)
        g.add_edge(0, 1, 5)
        g.add_edge(2, 3, 5)
        s = ClansScheduler().schedule(g)
        assert s.n_processors == 2
        assert s.makespan == pytest.approx(20.0)

    def test_unbalanced_independent_children_grouped(self):
        """Three parallel branches, one heavy: light branches share."""
        g = TaskGraph()
        g.add_task("f", 1)
        g.add_task("j", 1)
        for name, w in [("heavy", 100), ("l1", 10), ("l2", 10)]:
            g.add_task(name, w)
            g.add_edge("f", name, 1)
            g.add_edge(name, "j", 1)
        s = ClansScheduler().schedule(g)
        s.validate(g)
        # heavy branch bounds the makespan; light ones must not extend it
        assert s.makespan <= 1 + 100 + 1 + 2 + 2  # f + heavy + j + comms

    def test_primitive_graph_scheduled(self):
        """The N-poset (primitive root) must still schedule validly."""
        g = TaskGraph()
        for i in range(4):
            g.add_task(i, 10)
        g.add_edge(0, 2, 2)
        g.add_edge(1, 2, 2)
        g.add_edge(1, 3, 2)
        sched = ClansScheduler()
        s = sched.schedule(g)
        s.validate(g)
        assert sched.last_tree.kind is ClanKind.PRIMITIVE
        assert s.makespan <= g.serial_time()

    def test_primitive_exploits_parallelism(self):
        """A primitive quotient with cheap comm should still go parallel."""
        g = TaskGraph()
        for i in range(4):
            g.add_task(i, 100)
        g.add_edge(0, 2, 1)
        g.add_edge(1, 2, 1)
        g.add_edge(1, 3, 1)
        s = ClansScheduler().schedule(g)
        # 0 and 1 can overlap; best is about 2 * 100 + small comm
        assert s.makespan < 350
        assert s.n_processors >= 2
