"""Unit tests for repro.core.analysis (levels, ALAP, critical path)."""

from __future__ import annotations

import pytest

from repro import GraphError, TaskGraph
from repro.core.analysis import (
    alap_times,
    asap_times,
    b_levels,
    critical_path,
    critical_path_length,
    dominant_path_length,
    hu_levels,
    t_levels,
    validate_levels,
)


class TestTLevels:
    def test_chain_with_comm(self, chain5):
        tl = t_levels(chain5, communication=True)
        # each hop adds node weight 10 + edge 3
        assert tl == {0: 0.0, 1: 13.0, 2: 26.0, 3: 39.0, 4: 52.0}

    def test_chain_without_comm(self, chain5):
        tl = t_levels(chain5, communication=False)
        assert tl == {0: 0.0, 1: 10.0, 2: 20.0, 3: 30.0, 4: 40.0}

    def test_diamond_max_path(self, diamond):
        tl = t_levels(diamond)
        assert tl["a"] == 0.0
        assert tl["b"] == tl["c"] == 14.0
        assert tl["d"] == 28.0

    def test_source_is_zero(self, paper_example):
        assert t_levels(paper_example)[1] == 0.0


class TestBLevels:
    def test_chain(self, chain5):
        bl = b_levels(chain5, communication=True)
        assert bl[4] == 10.0
        assert bl[0] == 5 * 10 + 4 * 3

    def test_sink_is_own_weight(self, paper_example):
        assert b_levels(paper_example)[5] == 50.0

    def test_paper_example_comm_levels(self, paper_example):
        bl = b_levels(paper_example, communication=True)
        assert bl[5] == 50.0
        assert bl[4] == 40 + 4 + 50
        assert bl[2] == 20 + 4 + 50
        assert bl[3] == 30 + 3 + 94
        assert bl[1] == pytest.approx(10 + 6 + 127)

    def test_hu_levels_ignore_comm(self, paper_example):
        hl = hu_levels(paper_example)
        assert hl[5] == 50.0
        assert hl[4] == 90.0
        assert hl[3] == 120.0
        assert hl[1] == 130.0

    def test_recurrences_hold(self, paper_example, diamond, chain5):
        for g in (paper_example, diamond, chain5):
            validate_levels(g, t_levels(g), b_levels(g))


class TestCriticalPath:
    def test_length_chain(self, chain5):
        assert critical_path_length(chain5) == 62.0
        assert critical_path_length(chain5, communication=False) == 50.0

    def test_dominant_alias(self, chain5):
        assert dominant_path_length(chain5) == critical_path_length(chain5)

    def test_path_is_a_real_path(self, paper_example):
        path = critical_path(paper_example)
        for u, v in zip(path, path[1:]):
            assert paper_example.has_edge(u, v)
        assert path[0] in paper_example.sources()
        assert path[-1] in paper_example.sinks()

    def test_path_weight_matches_length(self, paper_example):
        path = critical_path(paper_example)
        total = sum(paper_example.weight(t) for t in path)
        total += sum(
            paper_example.edge_weight(u, v) for u, v in zip(path, path[1:])
        )
        assert total == critical_path_length(paper_example)

    def test_empty_graph(self):
        assert critical_path(TaskGraph()) == []
        assert critical_path_length(TaskGraph()) == 0.0

    def test_single_node(self, single):
        assert critical_path(single) == ["only"]
        assert critical_path_length(single) == 7.0


class TestAlap:
    def test_critical_tasks_have_zero_slack(self, chain5):
        alap = alap_times(chain5)
        asap = asap_times(chain5)
        # a chain is all-critical
        assert alap == asap

    def test_deadline_shifts_uniformly(self, chain5):
        base = alap_times(chain5)
        later = alap_times(chain5, deadline=100.0)
        cp = critical_path_length(chain5)
        for t in chain5.tasks():
            assert later[t] == pytest.approx(base[t] + 100.0 - cp)

    def test_deadline_below_cp_rejected(self, chain5):
        with pytest.raises(GraphError):
            alap_times(chain5, deadline=1.0)

    def test_alap_at_least_asap(self, paper_example, diamond):
        for g in (paper_example, diamond):
            alap = alap_times(g)
            asap = asap_times(g)
            for t in g.tasks():
                assert alap[t] >= asap[t] - 1e-9

    def test_alap_respects_edges(self, paper_example):
        """ALAP start of a predecessor leaves room for weight + comm."""
        alap = alap_times(paper_example)
        for u, v in paper_example.edges():
            assert (
                alap[u] + paper_example.weight(u) + paper_example.edge_weight(u, v)
                <= alap[v] + 1e-9
            )


class TestAnalysisMemoization:
    """Module-level functions memoize on the graph; copies are caller-owned."""

    def test_levels_return_fresh_dicts(self, chain5):
        tl1 = t_levels(chain5)
        tl1[0] = 999.0  # corrupting the returned dict must not poison the memo
        tl2 = t_levels(chain5)
        assert tl1 is not tl2
        assert tl2[0] == 0.0

    def test_memo_invalidated_by_mutation(self, chain5):
        bl_before = b_levels(chain5, communication=True)
        chain5.add_task(99, 50.0)
        chain5.add_edge(4, 99, 7.0)
        bl_after = b_levels(chain5, communication=True)
        assert bl_after[4] == bl_before[4] + 7.0 + 50.0

    def test_communication_flags_cached_separately(self, chain5):
        with_comm = b_levels(chain5, communication=True)
        without = b_levels(chain5, communication=False)
        assert with_comm != without


class TestGraphAnalysis:
    def test_zero_copy_and_consistent(self, paper_example):
        from repro.core.analysis import GraphAnalysis

        ga = GraphAnalysis(paper_example)
        assert dict(ga.t_levels()) == t_levels(paper_example)
        assert dict(ga.b_levels()) == b_levels(paper_example)
        assert dict(ga.alap_times()) == alap_times(paper_example)
        assert list(ga.topological_order()) == paper_example.topological_order()
        # repeated reads serve the same backing mapping, not new copies
        assert ga.b_levels().items() == ga.b_levels().items()

    def test_mappings_are_read_only(self, paper_example):
        from repro.core.analysis import GraphAnalysis

        ga = GraphAnalysis(paper_example)
        with pytest.raises(TypeError):
            ga.b_levels()[1] = 0.0

    def test_stale_after_mutation(self, chain5):
        from repro.core.analysis import GraphAnalysis

        ga = GraphAnalysis(chain5)
        ga.t_levels()
        chain5.add_task("new", 1.0)
        assert ga.stale
        with pytest.raises(GraphError):
            ga.t_levels()

    def test_refresh_rebuilds_lazily(self, chain5):
        from repro.core.analysis import GraphAnalysis

        ga = GraphAnalysis(chain5)
        before = dict(ga.b_levels(communication=False))
        chain5.add_task(99, 25.0)
        chain5.add_edge(4, 99, 0.0)
        ga.refresh()
        assert not ga.stale
        after = ga.b_levels(communication=False)
        assert after[4] == before[4] + 25.0

    def test_critical_path_length_delegates(self, chain5):
        from repro.core.analysis import GraphAnalysis

        ga = GraphAnalysis(chain5)
        assert ga.critical_path_length() == critical_path_length(chain5)
