"""Tests for the paper's performance measures and aggregation."""

from __future__ import annotations

import pytest

from repro.experiments.measures import (
    AggregateRow,
    GraphResult,
    HeuristicResult,
    aggregate,
)


def gr(graph_id, band, serial, times, procs=None, anchor=2, wr=(20, 100)):
    procs = procs or {n: 2 for n in times}
    return GraphResult(
        graph_id=graph_id,
        band=band,
        anchor=anchor,
        weight_range=wr,
        granularity=0.5,
        serial_time=serial,
        results={
            n: HeuristicResult(parallel_time=t, n_processors=procs[n])
            for n, t in times.items()
        },
    )


class TestHeuristicResult:
    def test_speedup_efficiency(self):
        r = HeuristicResult(parallel_time=50.0, n_processors=4)
        assert r.speedup(100.0) == pytest.approx(2.0)
        assert r.efficiency(100.0) == pytest.approx(0.5)


class TestGraphResult:
    def test_best_and_nrpt(self):
        g = gr("g", 0, 100, {"A": 50.0, "B": 100.0})
        assert g.best_parallel_time == 50.0
        assert g.nrpt("A") == pytest.approx(0.0)
        assert g.nrpt("B") == pytest.approx(1.0)

    def test_retarded(self):
        g = gr("g", 0, 100, {"A": 120.0, "B": 100.0, "C": 99.0})
        assert g.retarded("A")
        assert not g.retarded("B")  # speedup exactly 1 is not a retardation
        assert not g.retarded("C")

    def test_speedup_efficiency_shortcuts(self):
        g = gr("g", 0, 100, {"A": 25.0}, procs={"A": 2})
        assert g.speedup("A") == pytest.approx(4.0)
        assert g.efficiency("A") == pytest.approx(2.0)


class TestAggregate:
    def test_grouping_and_means(self):
        results = [
            gr("g1", 0, 100, {"A": 50.0, "B": 100.0}),
            gr("g2", 0, 100, {"A": 100.0, "B": 200.0}),
            gr("g3", 1, 100, {"A": 20.0, "B": 10.0}),
        ]
        agg = aggregate(results, lambda r: r.band, ["A", "B"])
        assert set(agg) == {0, 1}
        band0 = agg[0]
        assert band0["A"].n_graphs == 2
        assert band0["A"].mean_speedup == pytest.approx((2.0 + 1.0) / 2)
        assert band0["B"].n_retarded == 1  # 200 > serial 100
        assert band0["B"].mean_nrpt == pytest.approx(1.0)
        assert band0["A"].mean_processors == 2.0
        band1 = agg[1]
        assert band1["B"].mean_nrpt == pytest.approx(0.0)

    def test_empty(self):
        assert aggregate([], lambda r: r.band, ["A"]) == {}

    def test_aggregate_row_defaults(self):
        row = AggregateRow()
        assert row.n_graphs == 0
