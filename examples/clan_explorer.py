#!/usr/bin/env python
"""Explore clan decomposition on classic program structures.

Prints the clan parse tree (appendix A.5) for several structured workloads
and shows how CLANS turns each tree into a schedule: which clans were
parallelized, how many processors were used, what speedup resulted —
at both cheap and expensive communication.

    python examples/clan_explorer.py
"""

from repro import ClansScheduler, granularity
from repro.clans import ClanKind, decompose
from repro.generation import workloads as w


def describe(name: str, graph) -> None:
    print("=" * 64)
    print(f"{name}: {graph.n_tasks} tasks, {graph.n_edges} edges, "
          f"granularity {granularity(graph):.2f}")
    tree = decompose(graph)
    counts = {kind: tree.count(kind) for kind in ClanKind}
    print(
        f"parse tree: depth {tree.depth()}, "
        f"{counts[ClanKind.LINEAR]} linear / "
        f"{counts[ClanKind.INDEPENDENT]} independent / "
        f"{counts[ClanKind.PRIMITIVE]} primitive clans"
    )
    if graph.n_tasks <= 16:
        print(tree.to_text())
    scheduler = ClansScheduler()
    schedule = scheduler.schedule(graph)
    schedule.validate(graph)
    print(
        f"CLANS: parallel time {schedule.makespan:g} on "
        f"{schedule.n_processors} processors "
        f"(speedup {schedule.speedup(graph):.2f}"
        f"{', macro fallback' if scheduler.last_fallback else ''})"
    )


def main() -> None:
    for comm, label in [(2.0, "cheap communication"), (80.0, "expensive communication")]:
        print(f"\n######## {label} (message cost {comm:g}) ########\n")
        describe("fork-join(4x2)", w.fork_join(4, stages=2, comp=10, comm=comm))
        describe("divide & conquer(depth 2)", w.divide_and_conquer(2, comp=10, comm=comm))
        describe("FFT(8 points)", w.fft_graph(3, comp=10, comm=comm))
        describe("Gaussian elimination(5)", w.gaussian_elimination(5, comp=10, comm=comm))


if __name__ == "__main__":
    main()
