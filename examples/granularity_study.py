#!/usr/bin/env python
"""Mini reproduction of the paper's granularity analysis (Figures 1-2).

Generates a reduced classified suite (section 3 / Table 1), runs all five
heuristics, and renders Figure 1 (relative parallel time vs granularity)
and Figure 2 (speedup vs granularity) as ASCII charts, plus Tables 2-4.

    python examples/granularity_study.py [graphs_per_cell]
"""

import sys

from repro.experiments.figures import figure1, figure2
from repro.experiments.runner import run_suite
from repro.experiments.tables import table2, table3, table4
from repro.generation.suites import SuiteCell, generate_suite


def main() -> None:
    per_cell = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    cells = [
        SuiteCell(band, anchor, (20, 200))
        for band in range(5)
        for anchor in (2, 3, 4, 5)
    ]
    print(f"Generating {per_cell * len(cells)} classified graphs ...")
    suite = list(generate_suite(graphs_per_cell=per_cell, cells=cells,
                                n_tasks_range=(30, 70)))
    print("Scheduling with CLANS, DSC, MCP, MH, HU ...\n")
    results = run_suite(suite)

    for build in (table2, table3, table4):
        print(build(results))
        print()
    print(figure1(results).to_text())
    print()
    print(figure2(results).to_text())


if __name__ == "__main__":
    main()
