#!/usr/bin/env python
"""Quickstart: build a weighted task graph and compare the five heuristics.

This is the paper's appendix example (Figures 8-16): five tasks, node
weights 10/20/30/40/50, communication costs on every edge.  Run:

    python examples/quickstart.py
"""

from repro import TaskGraph, paper_schedulers
from repro.clans import decompose


def build_example() -> TaskGraph:
    g = TaskGraph()
    for task, weight in [(1, 10), (2, 20), (3, 30), (4, 40), (5, 50)]:
        g.add_task(task, weight)
    g.add_edge(1, 2, 5)  # edge weight = message cost if processors differ
    g.add_edge(1, 3, 6)
    g.add_edge(3, 4, 3)
    g.add_edge(2, 5, 4)
    g.add_edge(4, 5, 4)
    return g


def main() -> None:
    graph = build_example()
    print(f"Graph: {graph.n_tasks} tasks, {graph.n_edges} edges, "
          f"serial time {graph.serial_time():g}\n")

    print("Clan parse tree (what CLANS sees):")
    print(decompose(graph).to_text())
    print()

    print(f"{'heuristic':10s} {'parallel time':>13s} {'procs':>6s} "
          f"{'speedup':>8s} {'efficiency':>10s}")
    for scheduler in paper_schedulers():
        schedule = scheduler.schedule(graph)
        schedule.validate(graph)  # checked against the shared model
        print(
            f"{scheduler.name:10s} {schedule.makespan:13g} "
            f"{schedule.n_processors:6d} {schedule.speedup(graph):8.2f} "
            f"{schedule.efficiency(graph):10.2f}"
        )

    print("\nCLANS schedule (parallel time 130, as in the paper's Fig. 16):")
    best = paper_schedulers()[0].schedule(graph)
    print(best.to_gantt())


if __name__ == "__main__":
    main()
