#!/usr/bin/env python
"""A parallelizing compiler choosing its scheduler by granularity.

The paper's conclusion (section 5.2): "The same serial code may give
different granularity when it is parallelized for a different
multiprocessor, thus causing the compiler to choose a different scheduler
for the new granularity."

This example plays that compiler: one fixed program DAG (blocked Gaussian
elimination), four target machines with different communication speeds,
and a scheduler-selection pass driven by the measured granularity —
exactly the decision table the paper's testbed is meant to inform.

    python examples/compiler_pipeline.py
"""

from repro import granularity, granularity_band, paper_schedulers
from repro.generation.workloads import gaussian_elimination

#: Interconnects with their per-message cost for one block transfer,
#: relative to a unit of compute.  (Numbers are illustrative.)
MACHINES = {
    "shared-memory SMP   ": 2.0,
    "fast interconnect   ": 12.0,
    "commodity ethernet  ": 60.0,
    "wide-area cluster   ": 400.0,
}

BAND_NAMES = ["G < 0.08", "0.08-0.2", "0.2-0.8", "0.8-2", "G > 2"]


def main() -> None:
    print("Program: 6x6 blocked Gaussian elimination, block task = 50 units\n")
    header = f"{'machine':22s} {'granularity':>11s} {'band':>9s}"
    for s in paper_schedulers():
        header += f"{s.name:>9s}"
    header += f"{'chosen':>9s}"
    print(header)

    for machine, comm in MACHINES.items():
        graph = gaussian_elimination(6, comp=50.0, comm=comm)
        g = granularity(graph)
        band = granularity_band(g)
        row = f"{machine:22s} {g:11.3f} {BAND_NAMES[band]:>9s}"
        times = {}
        for scheduler in paper_schedulers():
            schedule = scheduler.schedule(graph)
            schedule.validate(graph)
            times[scheduler.name] = schedule.makespan
            row += f"{schedule.makespan:9.0f}"
        chosen = min(times, key=times.get)
        row += f"{chosen:>9s}"
        print(row)

    print(
        "\nReading the table: as communication gets more expensive the"
        "\ngranularity drops through the paper's bands, the critical-path and"
        "\nlist schedulers fall off, and the graph-decomposition method"
        "\n(CLANS) becomes the scheduler of choice - the paper's Table 3"
        "\nconclusion, replayed on a real program DAG."
    )


if __name__ == "__main__":
    main()
