#!/usr/bin/env python
"""Scheduling a workflow onto a mixed cluster (heterogeneous extension).

The paper assumes homogeneous processors; real clusters mix generations of
hardware.  This example schedules a tiled Cholesky factorization onto
machines of equal *total* horsepower but increasing skew, comparing HEFT
(finish-time aware — it knows the fast nodes finish work sooner) against a
speed-blind earliest-start scheduler, and shows the metaheuristics closing
the remaining gap.

    python examples/heterogeneous_cluster.py
"""

from repro.generation.workloads import cholesky
from repro.hetero import (
    HEFTScheduler,
    HeteroListScheduler,
    HeterogeneousMachine,
    validate_on_machine,
)

MACHINES = {
    "uniform   1+1+1+1": HeterogeneousMachine([1, 1, 1, 1]),
    "two-tier  .5+.5+1.5+1.5": HeterogeneousMachine([0.5, 0.5, 1.5, 1.5]),
    "one-big   .5+.5+.5+2.5": HeterogeneousMachine([0.5, 0.5, 0.5, 2.5]),
}


def main() -> None:
    graph = cholesky(6, comp=60.0, comm=15.0)
    print(
        f"Workflow: 6x6-tile Cholesky, {graph.n_tasks} tasks, "
        f"total work {graph.serial_time():g}\n"
    )
    print(f"{'machine':28s} {'HEFT':>8s} {'speed-blind':>12s} {'gap':>8s}")
    for label, machine in MACHINES.items():
        heft = HEFTScheduler(machine).schedule(graph)
        blind = HeteroListScheduler(machine).schedule(graph)
        validate_on_machine(heft, graph, machine)
        validate_on_machine(blind, graph, machine)
        gap = blind.makespan / heft.makespan - 1.0
        print(f"{label:28s} {heft.makespan:8.0f} {blind.makespan:12.0f} {gap:7.1%}")

    print(
        "\nAll three machines have the same total speed (4.0); only the"
        "\ndistribution differs.  The more skewed the machine, the more it"
        "\nmatters that the scheduler reasons about *finish* times on each"
        "\nprocessor rather than just start times."
    )


if __name__ == "__main__":
    main()
