#!/usr/bin/env python
"""Scheduling for a fixed machine: bounded processor counts.

The paper's model grants an unbounded processor pool (section 2,
assumption 2).  This example shows the two ways the library brings its
heuristics to a p-processor machine:

* **direct** bounding — the list schedulers simply stop opening processors
  (``MCPScheduler(max_processors=p)``), and
* **fold-after** mapping — an unbounded clustering heuristic runs first and
  its clusters are LPT-packed onto p processors
  (``BoundedScheduler("DSC", p)``),

and compares them against the library's makespan *lower bounds*, giving an
absolute quality yardstick the paper could not.

    python examples/bounded_machines.py
"""

from repro.core.lowerbounds import best_bound
from repro.generation.workloads import cholesky
from repro.schedulers import BoundedScheduler, MCPScheduler, MHScheduler


def main() -> None:
    graph = cholesky(6, comp=40.0, comm=10.0)
    serial = graph.serial_time()
    print(
        f"Workload: tiled Cholesky (6x6 tiles) - {graph.n_tasks} tasks, "
        f"serial time {serial:g}\n"
    )
    print(f"{'p':>3s} {'lower bound':>12s} {'MCP direct':>11s} "
          f"{'MH direct':>10s} {'DSC folded':>11s} {'CLANS folded':>13s}")
    for p in (1, 2, 4, 8, 16):
        lb = best_bound(graph, p)
        row = [f"{p:3d}", f"{lb:12.0f}"]
        for sched in (
            MCPScheduler(max_processors=p),
            MHScheduler(max_processors=p),
            BoundedScheduler("DSC", p),
            BoundedScheduler("CLANS", p),
        ):
            schedule = sched.schedule(graph)
            schedule.validate(graph)
            assert schedule.n_processors <= p
            assert schedule.makespan >= lb - 1e-9
            row.append(f"{schedule.makespan:10.0f} ")
        print(" ".join(row))
    print(
        "\nEvery makespan respects the lower bound; speedup saturates once"
        "\np exceeds the workload's inherent parallelism."
    )


if __name__ == "__main__":
    main()
