"""repro — reproduction of "A Comparison of Multiprocessor Scheduling
Heuristics" (Khan, McCreary & Jones, ICPP 1994).

A complete empirical testbed for DAG scheduling heuristics:

* :mod:`repro.core` — weighted task graphs, path analysis, the paper's
  classification metrics, schedules and the shared execution simulator;
* :mod:`repro.clans` — clan (modular) decomposition, the substrate of CLANS;
* :mod:`repro.schedulers` — CLANS, DSC, MCP, MH, HU plus baselines;
* :mod:`repro.generation` — the random PDG generator and Table 1 suite,
  and deterministic structured workloads;
* :mod:`repro.experiments` — runners and regeneration of every table and
  figure in the paper;
* :mod:`repro.obs` — observability: span tracing, metrics registries,
  run manifests and structured logging across the whole testbed.

Quickstart::

    from repro import TaskGraph, get_scheduler

    g = TaskGraph()
    for t, w in [("a", 10), ("b", 30), ("c", 40), ("d", 50)]:
        g.add_task(t, w)
    g.add_edge("a", "b", 5)
    g.add_edge("a", "c", 5)
    g.add_edge("b", "d", 4)
    g.add_edge("c", "d", 4)

    schedule = get_scheduler("CLANS").schedule(g)
    print(schedule.makespan, schedule.speedup(g))
"""

from .core import (
    GRANULARITY_BANDS,
    Schedule,
    ScheduledTask,
    TaskGraph,
    anchor_out_degree,
    granularity,
    granularity_band,
    node_weight_range,
    serial_schedule,
    simulate_clustering,
    simulate_ordered,
)
from .core.exceptions import (
    CycleError,
    DecompositionError,
    GenerationError,
    GraphError,
    ReproError,
    ScheduleError,
)
from . import obs
from .schedulers import (
    SCHEDULER_REGISTRY,
    ClansScheduler,
    DSCScheduler,
    ETFScheduler,
    EZScheduler,
    HuScheduler,
    LCScheduler,
    MCPScheduler,
    MHScheduler,
    OptimalScheduler,
    Scheduler,
    SerialScheduler,
    get_scheduler,
    paper_schedulers,
)

__version__ = "1.0.0"

__all__ = [
    "obs",
    "TaskGraph",
    "Schedule",
    "ScheduledTask",
    "simulate_ordered",
    "simulate_clustering",
    "serial_schedule",
    "granularity",
    "granularity_band",
    "anchor_out_degree",
    "node_weight_range",
    "GRANULARITY_BANDS",
    "Scheduler",
    "SCHEDULER_REGISTRY",
    "get_scheduler",
    "paper_schedulers",
    "ClansScheduler",
    "DSCScheduler",
    "MCPScheduler",
    "MHScheduler",
    "HuScheduler",
    "ETFScheduler",
    "LCScheduler",
    "EZScheduler",
    "SerialScheduler",
    "OptimalScheduler",
    "ReproError",
    "GraphError",
    "CycleError",
    "ScheduleError",
    "DecompositionError",
    "GenerationError",
    "__version__",
]
