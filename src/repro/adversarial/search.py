"""Search policies that hunt for scheduler-separating instances.

:func:`hunt` runs a neighborhood search over the perturbation environment
(:mod:`repro.adversarial.env`), maximizing an
:class:`~repro.adversarial.objective.Objective`.  Each step materializes a
whole neighborhood of candidate graphs and scores it through
``Objective.score_many`` — i.e. one pooled
:func:`repro.core.batch.batch_analyze` sweep per step, not one compile per
candidate.

Two policies ship, behind one deliberately small interface
(:class:`SearchPolicy`): a greedy hill-climber with restarts and simulated
annealing.  The interface is *MCTS-ready* in the sense PISA-style tree
search needs: a policy only ever sees ``(current score, candidate score,
rng)`` plus an outcome callback — it owns acceptance and restart, while
proposal sampling stays in the environment.  A tree policy slots in by
keeping its node statistics inside ``note``/``should_restart`` and
steering restarts toward stored states; nothing in :func:`hunt` assumes
monotone local moves.

Determinism: :func:`hunt` draws every random decision — proposals (via the
environment) and stochastic accepts — from the single ``random.Random(seed)``
it creates, so a ``(seed, base spec, parameters)`` triple always reproduces
the same op log, which is what makes the store's replay-digest check
meaningful.

Observability: the loop counts ``adv.steps`` / ``adv.accepted`` /
``adv.evaluated`` / ``adv.restarts``, records every new incumbent into the
``adv.best_gap`` histogram (its ``max`` is the run's best), and wraps the
whole hunt in one ``adv.hunt`` span when tracing is on.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from contextlib import nullcontext
from dataclasses import dataclass, field
from time import perf_counter

from ..core.exceptions import AdversarialError
from ..core.taskgraph import TaskGraph
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .env import ALL_OPS, Perturbation, PerturbationEnv
from .objective import Objective

__all__ = [
    "SearchPolicy",
    "GreedyPolicy",
    "AnnealingPolicy",
    "POLICIES",
    "make_policy",
    "HuntResult",
    "hunt",
]


class SearchPolicy(ABC):
    """Acceptance + restart strategy for :func:`hunt`.

    One policy instance serves one hunt; implementations may keep state
    (temperature, stall counters, tree statistics) across calls.
    """

    #: Registry key, e.g. ``"greedy"``; set by subclasses.
    name: str = "?"

    @abstractmethod
    def accept(
        self, current: float, candidate: float, rng: random.Random
    ) -> bool:
        """Whether to move from ``current`` to ``candidate``.

        Any randomness must come from ``rng`` — the hunt's single seeded
        stream — or determinism (and with it replay) breaks.
        """

    def note(self, improved_best: bool) -> None:
        """Outcome callback, called once per step after the accept decision
        with whether the step produced a new global incumbent."""

    def should_restart(self) -> bool:
        """Whether the hunt should reset to the base graph before the next
        step.  Called once per step, after :meth:`note`."""
        return False


class GreedyPolicy(SearchPolicy):
    """Strict hill-climbing with restarts: accept only improvements, and
    jump back to the base graph after ``patience`` steps without a new
    incumbent (a fresh region often beats polishing a local optimum)."""

    name = "greedy"

    def __init__(self, patience: int = 30) -> None:
        if patience < 1:
            raise AdversarialError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self._stall = 0

    def accept(
        self, current: float, candidate: float, rng: random.Random
    ) -> bool:
        return candidate > current

    def note(self, improved_best: bool) -> None:
        self._stall = 0 if improved_best else self._stall + 1

    def should_restart(self) -> bool:
        if self._stall >= self.patience:
            self._stall = 0
            return True
        return False


class AnnealingPolicy(SearchPolicy):
    """Simulated annealing with a geometric cooling schedule.

    Improvements are always accepted; a worsening move of ``d`` is accepted
    with probability ``exp(-d / T)``, and ``T`` decays by ``cooling`` per
    step from ``t0`` down to ``t_min``.  The default ``t0`` is sized for
    the ratio objective, whose per-step deltas live around 1e-2.
    """

    name = "anneal"

    def __init__(
        self, t0: float = 0.05, cooling: float = 0.995, t_min: float = 1e-6
    ) -> None:
        if not (t0 > 0 and 0 < cooling < 1 and t_min > 0):
            raise AdversarialError(
                f"bad annealing schedule t0={t0} cooling={cooling} t_min={t_min}"
            )
        self.t = t0
        self.cooling = cooling
        self.t_min = t_min

    def accept(
        self, current: float, candidate: float, rng: random.Random
    ) -> bool:
        try:
            if candidate >= current:
                return True
            return rng.random() < math.exp((candidate - current) / self.t)
        finally:
            self.t = max(self.t * self.cooling, self.t_min)


POLICIES: dict[str, type[SearchPolicy]] = {
    GreedyPolicy.name: GreedyPolicy,
    AnnealingPolicy.name: AnnealingPolicy,
}


def make_policy(name: str) -> SearchPolicy:
    """Instantiate a policy by registry key (``greedy`` / ``anneal``)."""
    try:
        return POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise AdversarialError(
            f"unknown search policy {name!r}; known: {known}"
        ) from None


@dataclass
class HuntResult:
    """Outcome of one :func:`hunt` run.

    ``best_graph`` is reproducible from the base graph plus
    ``best_op_log`` (see :mod:`repro.adversarial.store`); ``best_score``
    is the objective value it achieves, ``base_score`` the unperturbed
    base graph's.
    """

    best_graph: TaskGraph
    best_score: float
    best_op_log: list[Perturbation]
    base_score: float
    steps: int
    accepted: int
    evaluated: int
    restarts: int
    wall_s: float
    policy: str
    seed: int
    neighborhood: int
    ops: tuple[str, ...] = ALL_OPS
    #: Best score after each step (for gap-vs-budget curves).
    history: list[float] = field(default_factory=list)


def hunt(
    base_graph: TaskGraph,
    objective: Objective,
    *,
    seed: int,
    steps: int = 200,
    neighborhood: int = 8,
    policy: SearchPolicy | str = "anneal",
    ops: tuple[str, ...] = ALL_OPS,
    keep_history: bool = False,
) -> HuntResult:
    """Search outward from ``base_graph`` for the largest objective value.

    Per step: draw up to ``neighborhood`` candidate one-op perturbations of
    the current graph, score them all in one pooled pass, and offer the
    best candidate to the policy; an accepted candidate's op is committed
    to the environment's op log.  The incumbent (best graph ever seen) is
    snapshotted whenever it improves and returned — together with the op
    log that rebuilds it, which is what the store persists.

    ``base_graph`` itself is never mutated.  Raises
    :class:`~repro.core.exceptions.AdversarialError` when the base graph
    cannot be scored (a scheduler fails on it) — an unscorable base gives
    the search no gradient at all.
    """
    if steps < 1 or neighborhood < 1:
        raise AdversarialError(
            f"steps and neighborhood must be >= 1, got {steps}, {neighborhood}"
        )
    if isinstance(policy, str):
        policy = make_policy(policy)
    rng = random.Random(seed)
    env = PerturbationEnv(base_graph.copy(), rng, ops=ops)
    base_score = objective.score(env.graph)
    if base_score is None:
        raise AdversarialError(
            f"base graph is not scorable under {objective!r}"
        )

    registry = get_registry()
    tracer = get_tracer()
    current = base_score
    best_score = base_score
    best_graph = env.graph.copy()
    best_op_log: list[Perturbation] = []
    accepted = evaluated = restarts = 0
    history: list[float] = []
    start = perf_counter()

    span = (
        tracer.span(
            "adv.hunt",
            cat="adversarial",
            objective=objective.describe(),
            policy=policy.name,
            steps=steps,
            neighborhood=neighborhood,
        )
        if tracer.enabled
        else nullcontext()
    )
    with span:
        for _step in range(steps):
            registry.inc("adv.steps")
            cands = env.neighborhood(neighborhood)
            improved = False
            if cands:
                scores = objective.score_many([g for _, g in cands])
                evaluated += len(cands)
                registry.inc("adv.evaluated", len(cands))
                best_i = -1
                for i, s in enumerate(scores):
                    if s is not None and (best_i < 0 or s > scores[best_i]):
                        best_i = i
                if best_i >= 0 and policy.accept(current, scores[best_i], rng):
                    env.apply(cands[best_i][0])
                    current = scores[best_i]
                    accepted += 1
                    registry.inc("adv.accepted")
                    if current > best_score:
                        improved = True
                        best_score = current
                        best_graph = env.graph.copy()
                        best_op_log = list(env.op_log)
                        registry.observe("adv.best_gap", best_score)
            policy.note(improved)
            if not cands or policy.should_restart():
                env.reset(base_graph.copy())
                current = base_score
                restarts += 1
                registry.inc("adv.restarts")
            if keep_history:
                history.append(best_score)

    return HuntResult(
        best_graph=best_graph,
        best_score=best_score,
        best_op_log=best_op_log,
        base_score=base_score,
        steps=steps,
        accepted=accepted,
        evaluated=evaluated,
        restarts=restarts,
        wall_s=perf_counter() - start,
        policy=policy.name,
        seed=seed,
        neighborhood=neighborhood,
        ops=tuple(ops),
        history=history,
    )
