"""Seeded, replayable perturbation environment over task graphs.

The adversarial search (:mod:`repro.adversarial.search`) explores the
neighborhood of a :class:`~repro.core.taskgraph.TaskGraph` through a small
set of *perturbation ops*.  Every op is

* **acyclicity-preserving by construction** — proposals only ever add an
  edge ``u -> v`` where ``u`` precedes ``v`` in the current graph's
  (deterministic, memoized) topological order, so a topological order of
  the pre-op graph remains one of the post-op graph; :func:`apply_op`
  independently re-checks the exact criterion (``u -> v`` creates a cycle
  iff a directed path ``v -> u`` already exists), so even a hand-edited
  op log cannot smuggle a cycle in;
* **resolved** — an op records concrete task ids and weights, not random
  state, so ``(base spec, op log)`` replays to the same graph bytes (and
  therefore the same :func:`repro.core.wire.graph_digest`) on any machine;
* **weight-safe** — new node/edge weights are clamped to
  ``[MIN_WEIGHT, MAX_WEIGHT]``: always positive and finite, so section-3
  granularity stays defined and :class:`TaskGraph`'s weight validation
  never trips mid-search.

Randomness: all sampling goes through one :class:`random.Random` handed to
the environment — `numpy` is deliberately not used here so replay does not
depend on numpy's bit-generator stability.  The environment only uses its
rng in :meth:`PerturbationEnv.propose`; :func:`apply_op` is deterministic.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..core.exceptions import GraphError
from ..core.taskgraph import Task, TaskGraph

__all__ = [
    "ALL_OPS",
    "MIN_WEIGHT",
    "MAX_WEIGHT",
    "Perturbation",
    "PerturbationEnv",
    "apply_op",
    "apply_op_log",
]

#: Smallest weight any op will write.  Strictly positive so granularity
#: (node weight / max out-edge weight) stays finite and defined.
MIN_WEIGHT = 1e-3
#: Largest weight any op will write (stays comfortably finite).
MAX_WEIGHT = 1e12

#: Op names in the environment's default mix, i.e. the search's action set.
ALL_OPS: tuple[str, ...] = (
    "edge_reweight",
    "node_reweight",
    "rewire",
    "granularity_shift",
    "densify",
    "sparsify",
)

#: One resolved perturbation: ``(op_name, *json_able_args)``.
Perturbation = tuple


def _clamp(w: float) -> float:
    return min(max(float(w), MIN_WEIGHT), MAX_WEIGHT)


def apply_op(graph: TaskGraph, op: Perturbation) -> None:
    """Apply one resolved perturbation to ``graph`` in place.

    Deterministic (no randomness) and validating: an op whose precondition
    does not hold on ``graph`` — a missing edge, an unknown task, or an
    edge addition that is not strictly forward in the current topological
    order — raises :class:`~repro.core.exceptions.GraphError` instead of
    silently corrupting the instance.  This is the single function both
    the live search and :func:`replay <repro.adversarial.store.replay>`
    go through, which is what makes the digest check meaningful.
    """
    kind = op[0]
    if kind == "edge_reweight":
        _, u, v, w = op
        if not graph.has_edge(u, v):
            raise GraphError(f"edge_reweight: no edge {u!r} -> {v!r}")
        graph.add_edge(u, v, _check_op_weight(w))
    elif kind == "node_reweight":
        _, t, w = op
        if t not in graph:
            raise GraphError(f"node_reweight: unknown task {t!r}")
        graph.add_task(t, _check_op_weight(w))
    elif kind == "rewire":
        _, u, v, u2, v2, w = op
        if not graph.has_edge(u, v):
            raise GraphError(f"rewire: no edge {u!r} -> {v!r}")
        graph.remove_edge(u, v)
        try:
            _add_forward_edge(graph, u2, v2, _check_op_weight(w), "rewire")
        except GraphError:
            graph.add_edge(u, v, w)  # leave the graph untouched on failure
            raise
    elif kind == "granularity_shift":
        _, target, factor = op
        factor = float(factor)
        if not factor > 0.0:
            raise GraphError(f"granularity_shift: factor must be > 0, got {factor}")
        if target == "nodes":
            for t in graph.tasks():
                graph.add_task(t, _clamp(graph.weight(t) * factor))
        elif target == "edges":
            for u, v in graph.edges():
                graph.add_edge(u, v, _clamp(graph.edge_weight(u, v) * factor))
        else:
            raise GraphError(
                f"granularity_shift: target must be 'nodes' or 'edges', got {target!r}"
            )
    elif kind == "densify":
        _, u, v, w = op
        _add_forward_edge(graph, u, v, _check_op_weight(w), "densify")
    elif kind == "sparsify":
        _, u, v = op
        if graph.n_edges <= 1:
            raise GraphError("sparsify: refusing to remove the last edge")
        graph.remove_edge(u, v)
    else:
        raise GraphError(f"unknown perturbation op {kind!r}")


def _check_op_weight(w: float) -> float:
    wf = float(w)
    if not (MIN_WEIGHT <= wf <= MAX_WEIGHT):
        raise GraphError(
            f"op weight {w!r} outside [{MIN_WEIGHT}, {MAX_WEIGHT}]"
        )
    return wf


def _add_forward_edge(
    graph: TaskGraph, u: Task, v: Task, w: float, what: str
) -> None:
    """Add ``u -> v`` after proving the addition keeps the graph acyclic.

    Exact criterion: the new edge closes a cycle iff a directed path
    ``v -> u`` already exists.  Proposals sample pairs forward in the
    current topological order (a sound subset), but the check here is the
    full one so replayed op logs are validated independently of any
    particular order.
    """
    if u == v:
        raise GraphError(f"{what}: self loop on {u!r}")
    if u not in graph or v not in graph:
        raise GraphError(f"{what}: unknown endpoint in {u!r} -> {v!r}")
    if graph.has_edge(u, v):
        raise GraphError(f"{what}: edge {u!r} -> {v!r} already exists")
    if u in graph.descendants(v):
        raise GraphError(
            f"{what}: adding {u!r} -> {v!r} would close a cycle "
            f"(path {v!r} -> {u!r} exists)"
        )
    graph.add_edge(u, v, w)


def apply_op_log(graph: TaskGraph, op_log: Sequence[Perturbation]) -> TaskGraph:
    """Apply a whole op log in place (ops are re-validated); returns ``graph``."""
    for op in op_log:
        apply_op(graph, tuple(op))
    return graph


@dataclass
class PerturbationEnv:
    """A mutable search state: current graph + the op log that produced it.

    ``propose`` samples one resolved op that is valid on the *current*
    graph; ``apply`` commits an op (mutating the graph and appending to
    :attr:`op_log`); ``neighborhood`` materializes ``k`` candidate copies,
    one proposed op each — the candidates share nothing with the current
    graph, so scoring them cannot disturb the search state.  All sampling
    draws from the single :class:`random.Random` given at construction;
    with the same seed and the same accept decisions, two searches produce
    identical op logs.
    """

    graph: TaskGraph
    rng: random.Random
    ops: tuple[str, ...] = ALL_OPS
    op_log: list[Perturbation] = field(default_factory=list)
    #: How many sampling attempts ``propose`` makes before giving up.
    max_tries: int = 16

    def __post_init__(self) -> None:
        if self.graph.n_tasks < 2 or self.graph.n_edges < 1:
            raise GraphError(
                "PerturbationEnv needs a base graph with >= 2 tasks and >= 1 edge"
            )
        unknown = set(self.ops) - set(ALL_OPS)
        if unknown:
            raise GraphError(f"unknown perturbation ops {sorted(unknown)}")
        self.graph.validate()

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def propose(self) -> Perturbation | None:
        """One resolved op valid on the current graph (``None`` when the
        graph offers no legal move for any sampled op kind)."""
        for _ in range(self.max_tries):
            kind = self.ops[self.rng.randrange(len(self.ops))]
            op = getattr(self, f"_propose_{kind}")()
            if op is not None:
                return op
        return None

    def _jittered(self, current: float) -> float:
        """A weight near ``current``: scaled by 2**U(-2, 2), clamped."""
        return _clamp(current * 2.0 ** self.rng.uniform(-2.0, 2.0))

    def _pick_edge(self) -> tuple[Task, Task] | None:
        edges = self.graph.edges()
        if not edges:
            return None
        return edges[self.rng.randrange(len(edges))]

    def _propose_edge_reweight(self) -> Perturbation | None:
        picked = self._pick_edge()
        if picked is None:
            return None
        u, v = picked
        return ("edge_reweight", u, v, self._jittered(self.graph.edge_weight(u, v)))

    def _propose_node_reweight(self) -> Perturbation | None:
        tasks = self.graph.tasks()
        t = tasks[self.rng.randrange(len(tasks))]
        return ("node_reweight", t, self._jittered(self.graph.weight(t)))

    def _forward_pair(self) -> tuple[Task, Task] | None:
        """A non-adjacent (u, v) with u strictly before v topologically."""
        order = self.graph.topological_order()
        n = len(order)
        for _ in range(self.max_tries):
            i = self.rng.randrange(n)
            j = self.rng.randrange(n)
            if i == j:
                continue
            if i > j:
                i, j = j, i
            u, v = order[i], order[j]
            if not self.graph.has_edge(u, v):
                return u, v
        return None

    def _propose_rewire(self) -> Perturbation | None:
        # Proposing must not touch the live graph (a remove/re-add probe
        # would silently permute edge insertion order, desynchronizing the
        # op log from the graph bytes).  A pair forward in the *current*
        # topological order stays safe after any edge removal — removing
        # an edge never creates paths — so sampling on the intact graph is
        # sound; it merely never proposes re-targeting onto the removed
        # edge's own reversal.
        picked = self._pick_edge()
        if picked is None:
            return None
        u, v = picked
        pair = self._forward_pair()
        if pair is None or pair == (u, v):
            return None
        return ("rewire", u, v, pair[0], pair[1], self.graph.edge_weight(u, v))

    def _propose_granularity_shift(self) -> Perturbation | None:
        target = ("nodes", "edges")[self.rng.randrange(2)]
        factor = 2.0 ** self.rng.uniform(-1.5, 1.5)
        return ("granularity_shift", target, factor)

    def _propose_densify(self) -> Perturbation | None:
        pair = self._forward_pair()
        if pair is None:
            return None
        weights = [self.graph.edge_weight(u, v) for u, v in self.graph.edges()]
        lo, hi = min(weights), max(weights)
        return ("densify", pair[0], pair[1], _clamp(self.rng.uniform(lo, hi)))

    def _propose_sparsify(self) -> Perturbation | None:
        if self.graph.n_edges <= 1:
            return None
        picked = self._pick_edge()
        assert picked is not None
        return ("sparsify", *picked)

    # ------------------------------------------------------------------
    # state transitions
    # ------------------------------------------------------------------
    def apply(self, op: Perturbation) -> None:
        """Commit ``op``: mutate the current graph and extend the op log."""
        apply_op(self.graph, op)
        self.op_log.append(tuple(op))

    def neighborhood(self, k: int) -> list[tuple[Perturbation, TaskGraph]]:
        """Up to ``k`` candidate (op, perturbed copy) pairs.

        Each candidate is an independent copy of the current graph with one
        proposed op applied; the current graph is untouched.  Fewer than
        ``k`` pairs come back when proposing stalls (tiny graphs).
        """
        out: list[tuple[Perturbation, TaskGraph]] = []
        for _ in range(k):
            op = self.propose()
            if op is None:
                break
            candidate = self.graph.copy()
            apply_op(candidate, op)
            out.append((op, candidate))
        return out

    def reset(self, graph: TaskGraph) -> None:
        """Restart from a fresh base: replaces the graph, clears the log."""
        graph.validate()
        self.graph = graph
        self.op_log = []
