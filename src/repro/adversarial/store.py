"""Persistence + promotion for discovered adversarial instances.

A discovered instance is stored as one JSON file under
``results/adversarial/`` named ``adv-<digest16>.json``, where the digest is
:func:`repro.core.wire.graph_digest` over the instance graph's canonical
wire encoding — the same digest identity the service and campaign tiers
key on.  The record carries *two* independent descriptions of the graph:

* the wire encoding itself (what :func:`load_graph` and suite consumers
  use), and
* the recipe — ``base`` spec (regenerate the unperturbed graph from its
  seed) plus the search's resolved ``op_log`` — from which :func:`replay`
  rebuilds the graph from scratch.

``replay(record).digest == record.digest`` is the store's integrity
invariant: because perturbation ops are resolved and TaskGraph encoding is
insertion-ordered, the rebuilt graph is byte-identical, so a truncated op
log, a drifted generator, or a hand-edited graph is caught as a digest
mismatch, not silently accepted.

Promotion: instances are saved unpromoted; :func:`promote` flips the
``promoted`` flag, and only promoted instances appear in the
``adversarial`` suite class (:func:`adversarial_suite_graphs`, surfaced as
:func:`repro.generation.suites.adversarial_suite`) that ``run_suite``,
campaigns and the serving tier consume.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

import numpy as np

from ..core.exceptions import AdversarialError
from ..core.metrics import anchor_out_degree, granularity, granularity_band
from ..core.taskgraph import TaskGraph
from ..core.wire import dumps, graph_digest, graph_to_wire
from ..experiments.persistence import _atomic_write_text
from ..generation.random_dag import generate_pdg
from .env import Perturbation, apply_op_log

__all__ = [
    "FORMAT",
    "VERSION",
    "DEFAULT_STORE_DIR",
    "InstanceRecord",
    "instance_path",
    "save_instance",
    "load_instance",
    "list_instances",
    "find_instance",
    "build_base_graph",
    "replay",
    "verify_replay",
    "promote",
    "adversarial_suite_graphs",
]

FORMAT = "repro-adversarial-instance"
VERSION = 1

#: Default store location, relative to the working directory (mirrors the
#: ``results/`` convention of the experiment CLI).
DEFAULT_STORE_DIR = Path("results") / "adversarial"


@dataclass(frozen=True)
class InstanceRecord:
    """One discovered instance: graph, recipe, and search provenance."""

    digest: str
    graph: dict[str, Any]  # canonical wire encoding
    base: dict[str, Any]  # {"kind","seed","n_tasks","band","anchor","weight_range"}
    op_log: list[Perturbation]
    objective: dict[str, Any]  # Objective.describe()
    gap: float
    base_gap: float
    search: dict[str, Any] = field(default_factory=dict)
    baseline_gap: float | None = None
    promoted: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": FORMAT,
            "version": VERSION,
            "digest": self.digest,
            "graph": self.graph,
            "base": self.base,
            "op_log": [list(op) for op in self.op_log],
            "objective": self.objective,
            "gap": self.gap,
            "base_gap": self.base_gap,
            "baseline_gap": self.baseline_gap,
            "search": self.search,
            "promoted": self.promoted,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "InstanceRecord":
        if data.get("format") != FORMAT:
            raise AdversarialError(
                f"not an adversarial instance record: format={data.get('format')!r}"
            )
        if data.get("version") != VERSION:
            raise AdversarialError(
                f"unsupported instance record version {data.get('version')!r}"
            )
        return cls(
            digest=data["digest"],
            graph=data["graph"],
            base=data["base"],
            op_log=[tuple(op) for op in data["op_log"]],
            objective=data["objective"],
            gap=data["gap"],
            base_gap=data["base_gap"],
            baseline_gap=data.get("baseline_gap"),
            search=data.get("search", {}),
            promoted=bool(data.get("promoted", False)),
        )


def instance_path(store_dir: Path | str, digest: str) -> Path:
    """The store path for a digest: ``<store>/adv-<digest16>.json``."""
    return Path(store_dir) / f"adv-{digest[:16]}.json"


def save_instance(store_dir: Path | str, record: InstanceRecord) -> Path:
    """Atomically write ``record`` into the store; returns its path."""
    store = Path(store_dir)
    store.mkdir(parents=True, exist_ok=True)
    path = instance_path(store, record.digest)
    _atomic_write_text(path, json.dumps(record.to_dict(), indent=1) + "\n")
    return path


def load_instance(path: Path | str) -> InstanceRecord:
    """Read one instance record back from its JSON file."""
    with open(path, encoding="utf-8") as fh:
        return InstanceRecord.from_dict(json.load(fh))


def list_instances(
    store_dir: Path | str = DEFAULT_STORE_DIR, *, promoted_only: bool = False
) -> list[InstanceRecord]:
    """All stored instances, sorted by file name (= digest prefix) so every
    consumer — suites, campaigns, shards — sees one deterministic order."""
    store = Path(store_dir)
    if not store.is_dir():
        return []
    records = []
    for name in sorted(os.listdir(store)):
        if not (name.startswith("adv-") and name.endswith(".json")):
            continue
        record = load_instance(store / name)
        if promoted_only and not record.promoted:
            continue
        records.append(record)
    return records


def find_instance(
    store_dir: Path | str, digest_prefix: str
) -> tuple[Path, InstanceRecord]:
    """Locate one instance by (a unique prefix of) its digest."""
    matches = [
        r for r in list_instances(store_dir)
        if r.digest.startswith(digest_prefix)
    ]
    if not matches:
        raise AdversarialError(
            f"no instance matching {digest_prefix!r} in {store_dir}"
        )
    if len(matches) > 1:
        raise AdversarialError(
            f"digest prefix {digest_prefix!r} is ambiguous in {store_dir}"
        )
    record = matches[0]
    return instance_path(store_dir, record.digest), record


def build_base_graph(base: dict[str, Any]) -> TaskGraph:
    """Regenerate the unperturbed base graph from its spec."""
    if base.get("kind") != "pdg":
        raise AdversarialError(f"unknown base kind {base.get('kind')!r}")
    return generate_pdg(
        np.random.default_rng(int(base["seed"])),
        n_tasks=int(base["n_tasks"]),
        band=int(base["band"]),
        anchor=int(base["anchor"]),
        weight_range=tuple(base["weight_range"]),
    )


def replay(record: InstanceRecord) -> TaskGraph:
    """Rebuild the instance graph from scratch: base spec + op log."""
    return apply_op_log(build_base_graph(record.base), record.op_log)


def verify_replay(record: InstanceRecord) -> str:
    """Replay and digest-check; returns the digest, raises on mismatch."""
    got = graph_digest(graph_to_wire(replay(record)))
    if got != record.digest:
        raise AdversarialError(
            f"replay digest mismatch: stored {record.digest[:16]}..., "
            f"replayed {got[:16]}..."
        )
    return got


def promote(store_dir: Path | str, digest_prefix: str) -> InstanceRecord:
    """Replay-verify an instance, then mark it promoted (idempotent).

    Verification before promotion is deliberate: only instances whose
    recipe provably rebuilds their graph enter the shared testbed.
    """
    path, record = find_instance(store_dir, digest_prefix)
    verify_replay(record)
    if not record.promoted:
        record = replace(record, promoted=True)
        _atomic_write_text(path, json.dumps(record.to_dict(), indent=1) + "\n")
    return record


def adversarial_suite_graphs(
    store_dir: Path | str = DEFAULT_STORE_DIR, *, promoted_only: bool = True
) -> list:
    """Promoted instances as suite graphs (the ``adversarial`` graph class).

    Each instance is decoded from its stored wire encoding (no replay on
    the consumption path — that is ``promote``'s job), digest-checked, and
    classified into a Table-1 style cell from its *realized* metrics, with
    the base cell as fallback where a metric is undefined.  Import is
    deferred to break the generation -> adversarial -> generation cycle.
    """
    from ..generation.suites import AdversarialGraph, SuiteCell

    out = []
    for record in list_instances(store_dir, promoted_only=promoted_only):
        graph = TaskGraph.from_dict(record.graph)
        got = graph_digest(graph_to_wire(graph))
        if got != record.digest:
            raise AdversarialError(
                f"stored graph does not match its digest "
                f"({record.digest[:16]}...)"
            )
        try:
            band = granularity_band(granularity(graph))
        except Exception:
            band = int(record.base["band"])
        try:
            anchor = anchor_out_degree(graph)
        except Exception:
            anchor = int(record.base["anchor"])
        anchor = max(1, anchor)
        lo, hi = record.base["weight_range"]
        cell = SuiteCell(band=band, anchor=anchor, weight_range=(int(lo), int(hi)))
        out.append(AdversarialGraph(cell=cell, index=0, graph=graph, digest=record.digest))
    return out


def wire_record(graph: TaskGraph) -> tuple[dict[str, Any], str]:
    """Canonical ``(wire, digest)`` pair for ``graph`` (search's save path)."""
    wire = graph_to_wire(graph)
    return wire, graph_digest(wire)


def _canonical_bytes(record: InstanceRecord) -> bytes:
    """The record's canonical encoding (used by tests for byte-identity)."""
    return dumps(record.to_dict()).encode("utf-8")
