"""Pluggable objectives: what "scheduler-separating" means, as a number.

An :class:`Objective` maps a :class:`~repro.core.taskgraph.TaskGraph` to a
scalar *gap* between two schedulers, which the search policies in
:mod:`repro.adversarial.search` maximize.  Two shapes ship:

* :class:`MakespanRatio` — ``makespan(B) / makespan(A)``: how badly B
  loses to A on this instance (PISA's objective; scale-free, so weight
  rescaling alone cannot inflate it once both schedulers track the
  rescale).
* :class:`NSLGap` — ``(makespan(B) - makespan(A)) / cp(G)``: the gap in
  normalized-schedule-length units (the paper's section-4 NRPT uses the
  same critical-path normalization).

Both evaluate whole *neighborhoods* in one call: :meth:`Objective.score_many`
fans the candidate graphs through :func:`repro.core.batch.batch_analyze`
first, so every level/classification memo both schedulers will touch is
primed by one pooled numpy pass, and the schedulers themselves then run on
warm caches.  A candidate the batch refuses (cyclic — which a correct
perturbation op can never produce) scores ``None`` rather than being
silently evaluated against stale memos; so does a candidate on which
either scheduler raises.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from ..core.analysis import critical_path_length
from ..core.batch import batch_analyze
from ..core.exceptions import ReproError
from ..core.taskgraph import TaskGraph
from ..obs.metrics import get_registry
from ..schedulers.base import Scheduler, get_scheduler

__all__ = [
    "Objective",
    "MakespanRatio",
    "NSLGap",
    "OBJECTIVES",
    "make_objective",
    "baseline_gap",
]


class Objective(ABC):
    """A maximized scalar gap between schedulers ``a`` (winner) and ``b``.

    Subclasses implement :meth:`_gap` from the two makespans and the graph;
    scheduling, error absorption and batch fan-out are shared.  Instances
    hold their own scheduler objects — schedulers in this codebase are
    stateless between ``schedule`` calls, so one pair serves a whole search.
    """

    #: Registry key, e.g. ``"ratio"``; set by subclasses.
    kind: str = "?"

    def __init__(self, a: str, b: str) -> None:
        self.a = a.upper()
        self.b = b.upper()
        self._sched_a: Scheduler = get_scheduler(a)
        self._sched_b: Scheduler = get_scheduler(b)

    @abstractmethod
    def _gap(self, graph: TaskGraph, ms_a: float, ms_b: float) -> float | None:
        """The score from the two makespans (``None`` = undefined here)."""

    def score(self, graph: TaskGraph) -> float | None:
        """The gap on one graph; ``None`` when either scheduler fails."""
        try:
            ms_a = self._sched_a.schedule(graph).makespan
            ms_b = self._sched_b.schedule(graph).makespan
        except ReproError:
            get_registry().inc("adv.score_errors")
            return None
        return self._gap(graph, ms_a, ms_b)

    def score_many(self, graphs: Sequence[TaskGraph]) -> list[float | None]:
        """Score a whole neighborhood: one pooled batch pass, then the
        schedulers on primed memos.

        Candidates the batch layer refused as cyclic score ``None``
        outright — a refused candidate means a broken perturbation op, and
        evaluating it anyway would raise from deep inside a scheduler.
        With batching disabled the pass is a no-op (``skipped`` empty) and
        every candidate is scored on the lazy per-graph path, identically.
        """
        report = batch_analyze(graphs)
        if report.skipped:
            get_registry().inc("adv.bad_candidates", len(report.skipped))
        bad = set(report.skipped)
        return [
            None if i in bad else self.score(g) for i, g in enumerate(graphs)
        ]

    def describe(self) -> dict:
        """JSON-able identity, stored with every discovered instance."""
        return {"kind": self.kind, "a": self.a, "b": self.b}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(a={self.a!r}, b={self.b!r})"


class MakespanRatio(Objective):
    """``makespan(B) / makespan(A)`` — maximized, so the search hunts for
    instances where ``A`` beats ``B`` by the largest factor."""

    kind = "ratio"

    def _gap(self, graph: TaskGraph, ms_a: float, ms_b: float) -> float | None:
        if ms_a <= 0.0:
            return None
        return ms_b / ms_a


class NSLGap(Objective):
    """``(makespan(B) - makespan(A)) / cp(G)`` — the makespan gap in units
    of the graph's communication-inclusive critical path, so growing the
    graph's absolute scale does not inflate the score."""

    kind = "nsl-gap"

    def _gap(self, graph: TaskGraph, ms_a: float, ms_b: float) -> float | None:
        cp = critical_path_length(graph)
        if cp <= 0.0:
            return None
        return (ms_b - ms_a) / cp


OBJECTIVES: dict[str, type[Objective]] = {
    MakespanRatio.kind: MakespanRatio,
    NSLGap.kind: NSLGap,
}


def make_objective(kind: str, a: str, b: str) -> Objective:
    """Instantiate an objective by registry key (``ratio`` / ``nsl-gap``)."""
    try:
        cls = OBJECTIVES[kind]
    except KeyError:
        known = ", ".join(sorted(OBJECTIVES))
        raise ValueError(f"unknown objective {kind!r}; known: {known}") from None
    return cls(a, b)


def baseline_gap(
    objective: Objective, suite: Sequence
) -> tuple[float | None, str | None]:
    """The max gap over an existing testbed: ``(gap, graph_id)``.

    ``suite`` is any sequence of :class:`~repro.generation.suites.SuiteGraph`
    (or anything with ``.graph`` / ``.graph_id``).  This is the yardstick a
    search run must beat for the acceptance claim "adversarial search finds
    larger gaps than random sampling"; graphs scoring ``None`` are ignored.
    """
    best: float | None = None
    best_id: str | None = None
    chunk = 256
    for lo in range(0, len(suite), chunk):
        part = suite[lo : lo + chunk]
        scores = objective.score_many([sg.graph for sg in part])
        for sg, s in zip(part, scores):
            if s is not None and (best is None or s > best):
                best, best_id = s, sg.graph_id
    return best, best_id
