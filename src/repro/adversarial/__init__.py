"""Adversarial scenario engine: search for scheduler-separating graphs.

The paper compares its five heuristics on a fixed random testbed; this
package hunts for the instances that testbed misses — graphs where one
scheduler beats another by as much as possible (PISA, arxiv 2403.07120,
shows such adversarially-found gaps dwarf random sampling's).  Three
layers, each independently usable:

* :mod:`~repro.adversarial.env` — seeded, replayable perturbation ops
  over task graphs that provably preserve acyclicity;
* :mod:`~repro.adversarial.objective` / :mod:`~repro.adversarial.search`
  — pluggable scheduler-pair objectives maximized by greedy/restart and
  simulated-annealing policies, scoring whole neighborhoods through the
  pooled batch layer;
* :mod:`~repro.adversarial.store` — digest-addressed persistence whose
  ``promote`` step feeds verified instances back into the suite as the
  ``adversarial`` graph class.

CLI: ``repro adversarial search|replay|promote|list`` and
``repro bench adversarial``.
"""

from .env import (
    ALL_OPS,
    MAX_WEIGHT,
    MIN_WEIGHT,
    Perturbation,
    PerturbationEnv,
    apply_op,
    apply_op_log,
)
from .objective import (
    OBJECTIVES,
    MakespanRatio,
    NSLGap,
    Objective,
    baseline_gap,
    make_objective,
)
from .search import (
    POLICIES,
    AnnealingPolicy,
    GreedyPolicy,
    HuntResult,
    SearchPolicy,
    hunt,
    make_policy,
)
from .store import (
    DEFAULT_STORE_DIR,
    InstanceRecord,
    adversarial_suite_graphs,
    build_base_graph,
    find_instance,
    instance_path,
    list_instances,
    load_instance,
    promote,
    replay,
    save_instance,
    verify_replay,
    wire_record,
)

__all__ = [
    "ALL_OPS",
    "MIN_WEIGHT",
    "MAX_WEIGHT",
    "Perturbation",
    "PerturbationEnv",
    "apply_op",
    "apply_op_log",
    "OBJECTIVES",
    "Objective",
    "MakespanRatio",
    "NSLGap",
    "make_objective",
    "baseline_gap",
    "POLICIES",
    "SearchPolicy",
    "GreedyPolicy",
    "AnnealingPolicy",
    "HuntResult",
    "hunt",
    "make_policy",
    "DEFAULT_STORE_DIR",
    "InstanceRecord",
    "instance_path",
    "save_instance",
    "load_instance",
    "list_instances",
    "find_instance",
    "build_base_graph",
    "replay",
    "verify_replay",
    "promote",
    "adversarial_suite_graphs",
    "wire_record",
]
