"""Text rendering for result tables and figure series."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

__all__ = ["ResultTable", "ascii_chart"]


@dataclass
class ResultTable:
    """A labelled 2-D table of numbers, renderable as text or CSV.

    Mirrors the layout of the paper's tables: one row per graph class, one
    column per heuristic.
    """

    title: str
    row_header: str
    col_labels: Sequence[str]
    rows: list[tuple[str, list[float]]] = field(default_factory=list)
    fmt: str = "{:.2f}"

    def add_row(self, label: str, values: Sequence[float]) -> None:
        if len(values) != len(self.col_labels):
            raise ValueError(
                f"row {label!r} has {len(values)} values, "
                f"expected {len(self.col_labels)}"
            )
        self.rows.append((label, list(values)))

    def value(self, row_label: str, col_label: str) -> float:
        col = list(self.col_labels).index(col_label)
        for label, values in self.rows:
            if label == row_label:
                return values[col]
        raise KeyError(row_label)

    def column(self, col_label: str) -> list[float]:
        col = list(self.col_labels).index(col_label)
        return [values[col] for _, values in self.rows]

    def to_text(self) -> str:
        headers = [self.row_header, *self.col_labels]
        body = [
            [label, *(self.fmt.format(v) for v in values)]
            for label, values in self.rows
        ]
        widths = [
            max(len(str(cell)) for cell in col)
            for col in zip(headers, *body)
        ]
        def render(cells: Sequence[str]) -> str:
            padded = [str(c).rjust(w) for c, w in zip(cells, widths)]
            padded[0] = str(cells[0]).ljust(widths[0])
            return "  ".join(padded)

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [self.title, rule, render(headers), rule]
        lines += [render(row) for row in body]
        lines.append(rule)
        return "\n".join(lines)

    def to_csv(self) -> str:
        lines = [",".join([self.row_header, *map(str, self.col_labels)])]
        for label, values in self.rows:
            lines.append(",".join([label, *(repr(float(v)) for v in values)]))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()


def ascii_chart(
    title: str,
    x_labels: Sequence[str],
    series: dict[str, Sequence[float]],
    *,
    height: int = 12,
    log_floor: float | None = None,
) -> str:
    """A rough multi-series ASCII line chart (one column group per x label).

    Good enough to eyeball the *shape* of the paper's figures — which curve
    is on top, where they converge — directly in a terminal or test log.
    """
    if not series:
        return title
    marks = "CDMHUEabcdef"  # first letter per series, disambiguated below
    names = list(series)
    symbols = {}
    for i, name in enumerate(names):
        sym = name[0].upper()
        if sym in symbols.values():
            sym = marks[i % len(marks)].lower()
        symbols[name] = sym
    # NaN values (a heuristic with zero surviving samples in a class under
    # a fault-tolerant run) are left unplotted instead of poisoning the
    # scale.
    all_vals = [v for vals in series.values() for v in vals if v == v]
    if not all_vals:
        return title + "\n(no plottable values)"
    lo, hi = min(all_vals), max(all_vals)
    if hi <= lo:
        hi = lo + 1.0
    col_w = max(max(len(x) for x in x_labels) + 2, 6)
    grid = [[" "] * (col_w * len(x_labels)) for _ in range(height)]
    for name in names:
        for xi, v in enumerate(series[name]):
            if v != v:  # NaN: no sample to plot
                continue
            frac = (v - lo) / (hi - lo)
            row = height - 1 - int(round(frac * (height - 1)))
            col = xi * col_w + col_w // 2
            grid[row][col] = symbols[name] if grid[row][col] == " " else "*"
    lines = [title]
    lines.append(f"max={hi:g}")
    lines += ["|" + "".join(r) for r in grid]
    lines.append(f"min={lo:g}")
    lines.append(" " + "".join(x.center(col_w) for x in x_labels))
    legend = "  ".join(f"{symbols[n]}={n}" for n in names) + "  *=overlap"
    lines.append(legend)
    return "\n".join(lines)
