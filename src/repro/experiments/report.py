"""One-shot report generation: the whole paper reproduction as markdown.

:func:`full_report` runs the classified suite, regenerates every table and
figure, and renders a single self-contained markdown document — the
programmatic counterpart of EXPERIMENTS.md.  Exposed on the CLI as
``python -m repro report``.
"""

from __future__ import annotations

from collections.abc import Sequence

from .faults import format_failure_report
from .figures import ALL_FIGURES
from .measures import GraphResult, heuristic_names
from .runner import run_suite
from .tables import ALL_TABLES
from ..generation.suites import generate_suite

__all__ = ["render_report", "full_report"]


def render_report(results: Sequence[GraphResult], *, title: str | None = None) -> str:
    """Markdown report (all tables + figure series) from existing results.

    Accepts partial results from a degraded (fault-tolerant) run: the
    header then carries the failure count, tables annotate per-class
    sample sizes, and a closing "Failures" section summarizes what was
    lost (when the run recorded failures).
    """
    if not results:
        raise ValueError("cannot render a report from zero results")
    n_failed = getattr(results, "n_failed", 0)
    failures = getattr(results, "failures", [])
    summary = f"Graphs evaluated: **{len(results)}** | heuristics: " + ", ".join(
        sorted(heuristic_names(results))
    )
    if n_failed:
        summary += f" | failed evaluations: **{n_failed}**"
    lines = [
        f"# {title or 'Scheduling heuristic comparison report'}",
        "",
        summary,
        "",
    ]
    for tid in sorted(ALL_TABLES):
        lines.append(f"## Table {tid}")
        lines.append("")
        lines.append("```")
        lines.append(ALL_TABLES[tid](results).to_text())
        lines.append("```")
        lines.append("")
    for fid in sorted(ALL_FIGURES):
        fig = ALL_FIGURES[fid](results)
        lines.append(f"## Figure {fid}")
        lines.append("")
        lines.append("```")
        lines.append(fig.to_text())
        lines.append("```")
        lines.append("")
    if failures:
        lines.append("## Failures")
        lines.append("")
        lines.append("```")
        lines.append(format_failure_report(failures))
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def full_report(
    *,
    graphs_per_cell: int = 4,
    seed: int = 19940815,
    n_tasks_range: tuple[int, int] = (40, 100),
    title: str | None = None,
    jobs: int | None = 1,
) -> str:
    """Generate the suite, run all five heuristics, render the report.

    ``jobs`` is forwarded to :func:`~repro.experiments.runner.run_suite`:
    1 runs serially, ``N > 1`` uses a process pool, ``None`` all CPUs.
    """
    suite = generate_suite(
        graphs_per_cell=graphs_per_cell,
        seed=seed,
        n_tasks_range=n_tasks_range,
    )
    results = run_suite(list(suite), jobs=jobs)
    return render_report(
        results,
        title=title
        or (
            f"Reproduction report ({graphs_per_cell * 60} graphs, "
            f"seed {seed}, {n_tasks_range[0]}-{n_tasks_range[1]} tasks)"
        ),
    )
