"""Kernel benchmark core: indexed kernels vs the dict reference paths.

Shared by ``benchmarks/bench_kernels.py`` (the tracked-baseline script and
CI perf smoke) and the ``repro-sched bench kernels`` subcommand (which
re-pins the baseline).  Three measurements, each with an equivalence check:

* **levels micro** — t-levels + b-levels on a seeded PDG: the dict loops
  (fresh graph per repetition, memoization cold) against the array kernels
  on a precompiled :class:`~repro.core.kernels.GraphIndex`.  Index compile
  time is measured separately — one compile is shared by every analysis
  and scheduler on a graph, so charging it to a single level computation
  would misprice it (the ``kernels.compile`` timer tracks it in
  production).
* **simulator micro** — :func:`~repro.core.simulator.simulate_ordered` on
  round-robin clusters against :func:`~repro.core.kernels.simulate_ordered_idx`.
* **end to end** — the serial Table-1 suite (five paper heuristics)
  with kernels off against kernels on; serialized results must be
  **byte-identical**.

Speedups are ratios of two runs on the same machine in the same process,
so the floors checked by ``--check`` are machine-independent; absolute
times in the baseline JSON are informational only.
"""

from __future__ import annotations

import os
import platform
import tempfile
from pathlib import Path
from time import perf_counter

import numpy as np

from ..core import kernels as _k
from ..core.analysis import b_levels, t_levels
from ..core.kernels import GraphIndex, use_kernels
from ..core.simulator import simulate_ordered
from ..generation.random_dag import generate_pdg
from ..generation.suites import generate_suite
from ..obs.metrics import MetricsRegistry, use_registry
from ..schedulers import get_scheduler
from .persistence import save_results
from .runner import run_suite

__all__ = [
    "SEED",
    "PAPER_HEURISTICS",
    "QUICK_FLOORS",
    "FULL_FLOORS",
    "run_benchmark",
    "floor_violations",
]

SEED = 19940815
PAPER_HEURISTICS = ["CLANS", "DSC", "MCP", "MH", "HU"]

#: Minimum speedup ratios enforced by ``--check``.  Quick floors leave
#: headroom for noisy CI runners; full floors track the recorded
#: baselines (levels 5.6x, simulator 3.6x, end to end 2.4x in
#: ``BENCH_kernels.json``) with a wide noise margin.  Raised after the
#: batch layer landed (ROADMAP: "raise the CI perf-smoke floors").
QUICK_FLOORS = {"levels": 2.5, "simulator": 1.8, "end_to_end": 1.4}
FULL_FLOORS = {"levels": 3.5, "simulator": 3.0, "end_to_end": 2.2}


def _micro_graph(quick: bool):
    n = 120 if quick else 250
    rng = np.random.default_rng(SEED)
    return generate_pdg(rng, n_tasks=n, band=2, anchor=3, weight_range=(1, 50))


def _bench_levels(quick: bool) -> dict:
    g = _micro_graph(quick)
    reps = 60 if quick else 200
    gi = GraphIndex(g)

    # dict path: memoized per graph, so each repetition gets a fresh copy
    copies = [g.copy() for _ in range(reps)]
    with use_kernels(False):
        t_levels(copies[0], communication=True)  # warm allocators
        t0 = perf_counter()
        for c in copies:
            t_levels(c, communication=True)
            b_levels(c, communication=True)
        dict_s = perf_counter() - t0

    # kernel path: the raw array kernels on the shared compiled index
    _k._t_levels(gi, True)
    t0 = perf_counter()
    for _ in range(reps):
        _k._t_levels(gi, True)
        _k._b_levels(gi, True)
    kernel_s = perf_counter() - t0

    t0 = perf_counter()
    for _ in range(20):
        GraphIndex(g)
    compile_ms = (perf_counter() - t0) / 20 * 1e3

    tl = _k._t_levels(gi, True)
    bl = _k._b_levels(gi, True)
    with use_kernels(False):
        ref = g.copy()
        identical = (
            t_levels(ref, communication=True)
            == {t: tl[gi.index_of[t]] for t in g.tasks()}
            and b_levels(ref, communication=True)
            == {t: bl[gi.index_of[t]] for t in g.tasks()}
        )

    return {
        "n_tasks": g.n_tasks,
        "reps": reps,
        "dict_ms": round(dict_s / reps * 1e3, 4),
        "kernel_ms": round(kernel_s / reps * 1e3, 4),
        "compile_ms": round(compile_ms, 4),
        "speedup": round(dict_s / kernel_s, 3),
        "identical": identical,
    }


def _bench_simulator(quick: bool) -> dict:
    g = _micro_graph(quick)
    reps = 60 if quick else 200
    gi = GraphIndex(g)
    order = list(g.topological_order())
    clusters = [order[i::8] for i in range(8) if order[i::8]]
    clusters_idx = [[gi.index_of[t] for t in cl] for cl in clusters]

    with use_kernels(False):
        simulate_ordered(g, clusters, validate=False)
        t0 = perf_counter()
        for _ in range(reps):
            simulate_ordered(g, clusters, validate=False)
        dict_s = perf_counter() - t0

    _k.simulate_ordered_idx(gi, clusters_idx)
    t0 = perf_counter()
    for _ in range(reps):
        _k.simulate_ordered_idx(gi, clusters_idx)
    kernel_s = perf_counter() - t0

    with use_kernels(False):
        ref = simulate_ordered(g, clusters, validate=False)
    ker, _ = _k.simulate_ordered_idx(gi, clusters_idx)
    identical = ref.to_dict() == ker.to_dict()

    return {
        "n_tasks": g.n_tasks,
        "reps": reps,
        "dict_ms": round(dict_s / reps * 1e3, 4),
        "kernel_ms": round(kernel_s / reps * 1e3, 4),
        "speedup": round(dict_s / kernel_s, 3),
        "identical": identical,
    }


def _serialized(results) -> bytes:
    fd, name = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    scratch = Path(name)
    try:
        save_results(results, scratch)
        return scratch.read_bytes()
    finally:
        scratch.unlink(missing_ok=True)


def _bench_end_to_end(quick: bool, graphs_per_cell: int | None) -> dict:
    per_cell = graphs_per_cell or (1 if quick else 2)
    n_range = (20, 40) if quick else (40, 100)
    suite = list(
        generate_suite(graphs_per_cell=per_cell, seed=SEED, n_tasks_range=n_range)
    )
    scheds = [get_scheduler(name) for name in PAPER_HEURISTICS]

    with use_registry(MetricsRegistry()), use_kernels(True):
        run_suite(suite[: min(6, len(suite))], scheds, seed=SEED)  # warm

    with use_registry(MetricsRegistry()), use_kernels(False):
        t0 = perf_counter()
        dict_results = run_suite(suite, scheds, seed=SEED)
        dict_s = perf_counter() - t0

    kernel_registry = MetricsRegistry()
    with use_registry(kernel_registry), use_kernels(True):
        t0 = perf_counter()
        kernel_results = run_suite(suite, scheds, seed=SEED)
        kernel_s = perf_counter() - t0

    identical = _serialized(dict_results) == _serialized(kernel_results)
    counters = kernel_registry.counters()
    compile_stats = kernel_registry.timer_stats("kernels.compile")

    return {
        "graphs_per_cell": per_cell,
        "n_graphs": len(suite),
        "n_tasks_range": list(n_range),
        "heuristics": PAPER_HEURISTICS,
        "dict_wall_s": round(dict_s, 4),
        "kernel_wall_s": round(kernel_s, 4),
        "speedup": round(dict_s / kernel_s, 3),
        "identical": identical,
        "obs": {
            "compile_count": compile_stats.count,
            "compile_total_ms": round(compile_stats.total_s * 1e3, 3),
            "cache_hits": counters.get("kernels.cache.hits", 0.0),
            "cache_misses": counters.get("kernels.cache.misses", 0.0),
        },
    }


def run_benchmark(*, quick: bool = False, graphs_per_cell: int | None = None) -> dict:
    """Run all three measurements; returns the baseline JSON payload."""
    levels = _bench_levels(quick)
    simulator = _bench_simulator(quick)
    end_to_end = _bench_end_to_end(quick, graphs_per_cell)
    return {
        "format": "repro-bench-kernels",
        "version": 1,
        "quick": quick,
        "seed": SEED,
        "platform": {
            "python": platform.python_version(),
            "system": platform.system(),
            "machine": platform.machine(),
        },
        "levels": levels,
        "simulator": simulator,
        "end_to_end": end_to_end,
    }


def floor_violations(payload: dict, floors: dict[str, float]) -> list[str]:
    """Speedup floors missed by ``payload`` (empty list means all met)."""
    out = []
    for section, floor in floors.items():
        speedup = payload[section]["speedup"]
        if speedup < floor:
            out.append(f"{section}: {speedup:.2f}x < required {floor:.1f}x")
    return out
