"""The numerical-comparison testbed: runners, measures, tables, figures."""

from .faults import (
    FailureRecord,
    FaultInjectingScheduler,
    FaultPolicy,
    GraphTimeoutError,
    WorkerCrashError,
    format_failure_report,
)
from .figures import ALL_FIGURES, FigureData
from .measures import (
    AggregateRow,
    GraphResult,
    HeuristicResult,
    SuiteResult,
    aggregate,
    heuristic_names,
)
from .persistence import (
    CheckpointJournal,
    load_results,
    load_suite,
    results_to_csv,
    save_results,
    save_suite,
)
from .parallel import resolve_jobs, run_suite_parallel
from .report import full_report, render_report
from .significance import PairedComparison, compare_heuristics, comparison_matrix
from .reporting import ResultTable, ascii_chart
from .runner import PAPER_HEURISTIC_ORDER, evaluate_graph, run_suite
from .tables import ALL_TABLES

__all__ = [
    "run_suite",
    "run_suite_parallel",
    "resolve_jobs",
    "evaluate_graph",
    "PAPER_HEURISTIC_ORDER",
    "GraphResult",
    "HeuristicResult",
    "SuiteResult",
    "AggregateRow",
    "aggregate",
    "heuristic_names",
    "FailureRecord",
    "FaultPolicy",
    "FaultInjectingScheduler",
    "GraphTimeoutError",
    "WorkerCrashError",
    "format_failure_report",
    "CheckpointJournal",
    "ResultTable",
    "ascii_chart",
    "FigureData",
    "ALL_TABLES",
    "ALL_FIGURES",
    "save_results",
    "load_results",
    "save_suite",
    "load_suite",
    "results_to_csv",
    "render_report",
    "full_report",
    "PairedComparison",
    "compare_heuristics",
    "comparison_matrix",
]
