"""Persistence for suites and results.

Full-suite runs take minutes; analysis iterations should not.  This module
round-trips

* generated suites (classified graphs) and
* :class:`~repro.experiments.measures.GraphResult` records

through JSON so one expensive run feeds any number of table/figure
rebuilds.  The CLI's ``experiment --save/--load`` uses these.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path

from ..core.taskgraph import TaskGraph
from ..generation.suites import SuiteCell, SuiteGraph
from .measures import GraphResult, HeuristicResult

__all__ = [
    "save_results",
    "load_results",
    "save_suite",
    "load_suite",
    "results_to_csv",
]

_FORMAT_VERSION = 1


def save_results(results: Sequence[GraphResult], path: str | Path) -> None:
    """Write results as versioned JSON."""
    payload = {
        "format": "repro-results",
        "version": _FORMAT_VERSION,
        "results": [
            {
                "graph_id": r.graph_id,
                "band": r.band,
                "anchor": r.anchor,
                "weight_range": list(r.weight_range),
                "granularity": r.granularity,
                "serial_time": r.serial_time,
                "results": {
                    name: {
                        "parallel_time": h.parallel_time,
                        "n_processors": h.n_processors,
                    }
                    for name, h in r.results.items()
                },
            }
            for r in results
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_results(path: str | Path) -> list[GraphResult]:
    """Read results written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-results":
        raise ValueError(f"{path}: not a repro results file")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported version {payload.get('version')!r}"
        )
    out = []
    for r in payload["results"]:
        out.append(
            GraphResult(
                graph_id=r["graph_id"],
                band=r["band"],
                anchor=r["anchor"],
                weight_range=tuple(r["weight_range"]),
                granularity=r["granularity"],
                serial_time=r["serial_time"],
                results={
                    name: HeuristicResult(
                        parallel_time=h["parallel_time"],
                        n_processors=h["n_processors"],
                    )
                    for name, h in r["results"].items()
                },
            )
        )
    return out


def results_to_csv(results: Sequence[GraphResult]) -> str:
    """Flat per-graph-per-heuristic CSV for external analysis."""
    lines = [
        "graph_id,band,anchor,wmin,wmax,granularity,serial_time,"
        "heuristic,parallel_time,n_processors,speedup,efficiency,nrpt"
    ]
    for r in results:
        for name in sorted(r.results):
            h = r.results[name]
            lines.append(
                f"{r.graph_id},{r.band},{r.anchor},{r.weight_range[0]},"
                f"{r.weight_range[1]},{r.granularity!r},{r.serial_time!r},"
                f"{name},{h.parallel_time!r},{h.n_processors},"
                f"{r.speedup(name)!r},{r.efficiency(name)!r},{r.nrpt(name)!r}"
            )
    return "\n".join(lines)


def save_suite(suite: Iterable[SuiteGraph], path: str | Path) -> int:
    """Write a generated suite (graphs + classification) as JSON.

    Returns the number of graphs written.
    """
    records = []
    for sg in suite:
        records.append(
            {
                "cell": {
                    "band": sg.cell.band,
                    "anchor": sg.cell.anchor,
                    "weight_range": list(sg.cell.weight_range),
                },
                "index": sg.index,
                "graph": sg.graph.to_dict(),
            }
        )
    payload = {
        "format": "repro-suite",
        "version": _FORMAT_VERSION,
        "graphs": records,
    }
    Path(path).write_text(json.dumps(payload))
    return len(records)


def load_suite(path: str | Path) -> list[SuiteGraph]:
    """Read a suite written by :func:`save_suite`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-suite":
        raise ValueError(f"{path}: not a repro suite file")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported version {payload.get('version')!r}"
        )
    out = []
    for rec in payload["graphs"]:
        cell = SuiteCell(
            band=rec["cell"]["band"],
            anchor=rec["cell"]["anchor"],
            weight_range=tuple(rec["cell"]["weight_range"]),
        )
        out.append(
            SuiteGraph(
                cell=cell,
                index=rec["index"],
                graph=TaskGraph.from_dict(rec["graph"]),
            )
        )
    return out
