"""Persistence for suites and results.

Full-suite runs take minutes; analysis iterations should not.  This module
round-trips

* generated suites (classified graphs) and
* :class:`~repro.experiments.measures.GraphResult` records

through JSON so one expensive run feeds any number of table/figure
rebuilds.  The CLI's ``experiment --save/--load`` uses these.

Durability: :func:`save_results` and :func:`save_suite` are **atomic** —
the payload is written to a temporary file in the destination directory,
fsync'd, and moved into place with ``os.replace``, so a crash or ^C can
never leave a truncated or half-written file where a good one (or nothing)
should be.  :class:`CheckpointJournal` is the complementary incremental
form: an append-only JSONL journal of completed graphs and absorbed
failures with fsync'd appends, used by ``run_suite(..., checkpoint=...)``
for interrupt/resume of long campaigns.  A torn line (the crash happened
mid-append) is discarded with a warning on load — the in-flight graph is
simply re-evaluated — and :func:`append_jsonl_line` self-heals a journal
whose last append was torn by starting the next record on a fresh line,
so one crash can never corrupt records written after the resume.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections.abc import Iterable, Sequence
from pathlib import Path

from ..core import wire
from ..generation.suites import SuiteCell, SuiteGraph
from ..obs.log import get_logger
from .faults import FailureRecord
from .measures import GraphResult, HeuristicResult

__all__ = [
    "save_results",
    "load_results",
    "save_suite",
    "load_suite",
    "results_to_csv",
    "result_to_dict",
    "result_from_dict",
    "append_jsonl_line",
    "CheckpointJournal",
]

_FORMAT_VERSION = 1


def _atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` all-or-nothing.

    The bytes land in a ``*.tmp`` sibling first (same directory, so the
    final ``os.replace`` is a same-filesystem atomic rename), are fsync'd,
    and only then take the destination name.  On any failure the temporary
    file is removed and the previous destination content is untouched.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def append_jsonl_line(path: str | Path, obj: dict) -> None:
    """Append one JSON record to ``path``, flushed and fsync'd.

    Self-healing: when the file does not end with a newline — the previous
    append was torn by a crash — the new record starts on a fresh line, so
    the torn fragment stays an isolated bad line instead of corrupting
    this (good) record by concatenation.  ``sort_keys`` is deliberately
    not used: key order is the evaluation order the rest of the testbed
    preserves for byte-identity.
    """
    line = json.dumps(obj)
    needs_newline = False
    try:
        with open(path, "rb") as rf:
            rf.seek(-1, os.SEEK_END)
            needs_newline = rf.read(1) != b"\n"
    except (OSError, ValueError):
        pass  # absent or empty file: nothing to heal
    with open(path, "a") as fh:
        if needs_newline:
            fh.write("\n")
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def result_to_dict(r: GraphResult) -> dict:
    """JSON form of one :class:`GraphResult` (shared by results files, the
    checkpoint journal and the campaign journal)."""
    return _result_to_dict(r)


def result_from_dict(r: dict) -> GraphResult:
    """Inverse of :func:`result_to_dict`."""
    return _result_from_dict(r)


def _result_to_dict(r: GraphResult) -> dict:
    return {
        "graph_id": r.graph_id,
        "band": r.band,
        "anchor": r.anchor,
        "weight_range": list(r.weight_range),
        "granularity": r.granularity,
        "serial_time": r.serial_time,
        "results": {
            name: {
                "parallel_time": h.parallel_time,
                "n_processors": h.n_processors,
            }
            for name, h in r.results.items()
        },
    }


def _result_from_dict(r: dict) -> GraphResult:
    return GraphResult(
        graph_id=r["graph_id"],
        band=r["band"],
        anchor=r["anchor"],
        weight_range=tuple(r["weight_range"]),
        granularity=r["granularity"],
        serial_time=r["serial_time"],
        results={
            name: HeuristicResult(
                parallel_time=h["parallel_time"],
                n_processors=h["n_processors"],
            )
            for name, h in r["results"].items()
        },
    )


def save_results(results: Sequence[GraphResult], path: str | Path) -> None:
    """Write results as versioned JSON (atomic: temp file + rename)."""
    payload = {
        "format": "repro-results",
        "version": _FORMAT_VERSION,
        "results": [_result_to_dict(r) for r in results],
    }
    _atomic_write_text(path, json.dumps(payload, indent=1))


def load_results(path: str | Path) -> list[GraphResult]:
    """Read results written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-results":
        raise ValueError(f"{path}: not a repro results file")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported version {payload.get('version')!r}"
        )
    return [_result_from_dict(r) for r in payload["results"]]


def results_to_csv(results: Sequence[GraphResult]) -> str:
    """Flat per-graph-per-heuristic CSV for external analysis."""
    lines = [
        "graph_id,band,anchor,wmin,wmax,granularity,serial_time,"
        "heuristic,parallel_time,n_processors,speedup,efficiency,nrpt"
    ]
    for r in results:
        for name in sorted(r.results):
            h = r.results[name]
            lines.append(
                f"{r.graph_id},{r.band},{r.anchor},{r.weight_range[0]},"
                f"{r.weight_range[1]},{r.granularity!r},{r.serial_time!r},"
                f"{name},{h.parallel_time!r},{h.n_processors},"
                f"{r.speedup(name)!r},{r.efficiency(name)!r},{r.nrpt(name)!r}"
            )
    return "\n".join(lines)


def save_suite(suite: Iterable[SuiteGraph], path: str | Path) -> int:
    """Write a generated suite (graphs + classification) as JSON.

    Atomic like :func:`save_results`.  Returns the number of graphs
    written.
    """
    records = []
    for sg in suite:
        records.append(
            {
                "cell": {
                    "band": sg.cell.band,
                    "anchor": sg.cell.anchor,
                    "weight_range": list(sg.cell.weight_range),
                },
                "index": sg.index,
                "graph": wire.graph_to_wire(sg.graph),
            }
        )
    payload = {
        "format": "repro-suite",
        "version": _FORMAT_VERSION,
        "graphs": records,
    }
    _atomic_write_text(path, json.dumps(payload))
    return len(records)


def load_suite(path: str | Path) -> list[SuiteGraph]:
    """Read a suite written by :func:`save_suite`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-suite":
        raise ValueError(f"{path}: not a repro suite file")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported version {payload.get('version')!r}"
        )
    out = []
    for rec in payload["graphs"]:
        cell = SuiteCell(
            band=rec["cell"]["band"],
            anchor=rec["cell"]["anchor"],
            weight_range=tuple(rec["cell"]["weight_range"]),
        )
        out.append(
            SuiteGraph(
                cell=cell,
                index=rec["index"],
                graph=wire.graph_from_wire(rec["graph"]),
            )
        )
    return out


class CheckpointJournal:
    """Append-only JSONL journal of a suite run's completed work.

    One line per event, either a completed graph's result or an absorbed
    failure::

        {"type": "result",  "v": 1, "data": {<GraphResult dict>}}
        {"type": "failure", "v": 1, "data": {<FailureRecord dict>}}

    Appends are flushed and fsync'd, so after a crash the journal contains
    every graph whose evaluation finished, possibly followed by one torn
    line (ignored on load).  A graph counts as *completed* for resume
    purposes when the requested heuristic names are covered by its
    journaled successes plus failures — at-least-once semantics: a graph
    in flight at the time of the crash is simply re-evaluated.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(
        self, result: GraphResult | None, failures: Sequence[FailureRecord] = ()
    ) -> None:
        """Journal one graph's outcome (its result and/or its failures)."""
        for fr in failures:
            self._append_line({"type": "failure", "v": 1, "data": fr.to_dict()})
        if result is not None:
            self._append_line(
                {"type": "result", "v": 1, "data": _result_to_dict(result)}
            )

    def _append_line(self, obj: dict) -> None:
        # No sort_keys: the nested per-heuristic results dict must keep its
        # evaluation order so a resumed run's save_results output is
        # byte-identical to an uninterrupted run's.
        append_jsonl_line(self.path, obj)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def load(
        self,
    ) -> tuple[dict[str, GraphResult], dict[str, list[FailureRecord]]]:
        """All journaled results and failures, keyed by graph id.

        Tolerates torn lines (crash mid-append): an unparsable or
        incomplete record is discarded with a warning and parsing
        continues — a resumed run appends good records *after* the torn
        fragment (see :func:`append_jsonl_line`), so stopping at the first
        bad line would silently drop completed work.
        """
        results: dict[str, GraphResult] = {}
        failures: dict[str, list[FailureRecord]] = {}
        if not self.path.exists():
            return results, failures
        for lineno, line in enumerate(self.path.read_text().splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                kind = obj.get("type") if isinstance(obj, dict) else None
                if kind == "result":
                    gr = _result_from_dict(obj["data"])
                    results[gr.graph_id] = gr
                elif kind == "failure":
                    fr = FailureRecord.from_dict(obj["data"])
                    failures.setdefault(fr.graph_id, []).append(fr)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                get_logger("persistence").warning(
                    "%s:%d: torn journal line (crash mid-append?); "
                    "discarding the partial record",
                    self.path,
                    lineno,
                )
        return results, failures

    def load_completed(
        self, names: Iterable[str]
    ) -> tuple[dict[str, GraphResult | None], list[FailureRecord]]:
        """Resume view: graphs whose journal entries cover ``names``.

        Returns ``(completed, failures)`` where ``completed`` maps graph id
        to its journaled :class:`GraphResult` (``None`` when every
        heuristic failed, so the graph stays absent from results on resume
        too) and ``failures`` replays the records belonging to those
        completed graphs.  Graphs only partially covered — e.g. journaled
        by a run that used a different scheduler set — are re-evaluated in
        full.
        """
        requested = set(names)
        results, failures = self.load()
        completed: dict[str, GraphResult | None] = {}
        replay: list[FailureRecord] = []
        for graph_id in set(results) | set(failures):
            covered = set(results[graph_id].results) if graph_id in results else set()
            graph_failures = failures.get(graph_id, [])
            for fr in graph_failures:
                if fr.heuristic is None:  # whole-graph failure (worker crash)
                    covered |= requested
                else:
                    covered.add(fr.heuristic)
            if requested <= covered:
                completed[graph_id] = results.get(graph_id)
                replay.extend(graph_failures)
        return completed, replay
