"""Batch-layer benchmark: pooled numpy sweeps vs the per-graph kernels.

Shared by ``benchmarks/bench_batch.py`` (the tracked-baseline script and CI
``batch-smoke``) and the ``repro-sched bench batch`` subcommand.  Three
measurements, each with a bit-exactness check:

* **levels micro** — t/b/hu/ALAP levels for a 64-graph suite-sized cell:
  the per-graph kernel loop over precompiled
  :class:`~repro.core.kernels.GraphIndex` objects against one
  :class:`~repro.core.batch.GraphBatch` sweep over the pooled CSR.  Pack
  time is measured separately, mirroring ``compile_ms`` in the kernel
  bench: one pack serves every analysis on the batch, and the production
  consumers amortize it over chunks larger than one cell (the
  ``allin_speedup`` field reports the unamortized ratio honestly).
* **classify micro** — section-3 granularity over the same cell: the
  scalar :func:`~repro.core.metrics.granularity` loop against
  :meth:`GraphBatch.granularities`.
* **end to end** — the serial Table-1 suite (five paper heuristics,
  kernels on in both arms) with batching off against batching on;
  serialized results must be **byte-identical**.  Level analysis is a
  small slice of suite wall time (scheduling dominates), so this ratio
  hovers near 1 and its floor is an anti-regression bound, not a win
  target — the win target is the levels floor.

Speedups are ratios of two runs on the same machine in the same process,
so the floors checked by ``--check`` are machine-independent; absolute
times in the baseline JSON are informational only.
"""

from __future__ import annotations

import platform
from time import perf_counter

import numpy as np

from ..core import kernels as _k
from ..core.batch import GraphBatch, use_batch
from ..core.exceptions import GraphError
from ..core.kernels import GraphIndex
from ..core.metrics import _granularity
from ..generation.random_dag import generate_pdg
from ..generation.suites import SuiteGraph, generate_suite
from ..obs.metrics import MetricsRegistry, use_registry
from ..schedulers import get_scheduler
from .kernelbench import PAPER_HEURISTICS, SEED, _serialized, floor_violations
from .runner import run_suite

__all__ = [
    "SEED",
    "QUICK_FLOORS",
    "FULL_FLOORS",
    "run_benchmark",
    "floor_violations",
]

#: Minimum speedup ratios enforced by ``--check``.  The full levels floor
#: is the PR's acceptance target (>= 3.5x batched level computation on a
#: 64-graph cell); quick floors leave headroom for noisy CI runners.  The
#: end-to-end floors bound regression (batching must not slow the suite),
#: not a win — see the module docstring.
QUICK_FLOORS = {"levels": 2.5, "end_to_end": 0.90}
FULL_FLOORS = {"levels": 3.5, "end_to_end": 0.95}

#: The "64-graph quick-mode cell": suite-sized graphs, the batch size the
#: acceptance criterion pins.
CELL_GRAPHS = 64


def _cell() -> list:
    """The 64-graph cell both micro benches run on (same in quick mode —
    the acceptance criterion pins the batch size; only reps differ)."""
    rng = np.random.default_rng(SEED)
    return [
        generate_pdg(
            rng,
            n_tasks=int(rng.integers(40, 101)),
            band=int(rng.integers(1, 4)),
            anchor=int(rng.integers(1, 5)),
            weight_range=(20, 200),
        )
        for _ in range(CELL_GRAPHS)
    ]


def _per_graph_levels(indexes: list[GraphIndex]) -> list[tuple]:
    out = []
    for gi in indexes:
        tl = _k._t_levels(gi, True)
        bl = _k._b_levels(gi, True)
        hu = _k._b_levels(gi, False)
        cp = max(bl, default=0.0)
        alap = [cp - b for b in bl]
        out.append((tl, bl, hu, alap))
    return out


def _batch_levels(batch: GraphBatch) -> tuple:
    # Fresh sweep each call: drop the batch's sweep memos first.
    batch._memo.clear()
    tl = batch.t_levels(True)
    bl = batch.b_levels(True)
    hu = batch.b_levels(False)
    alap = batch.alap(True)
    return tl, bl, hu, alap


def _bench_levels(quick: bool) -> dict:
    graphs = _cell()
    indexes = [GraphIndex(g) for g in graphs]
    reps = 30 if quick else 100

    _per_graph_levels(indexes)  # warm allocators
    t0 = perf_counter()
    for _ in range(reps):
        _per_graph_levels(indexes)
    per_graph_s = perf_counter() - t0

    t0 = perf_counter()
    for _ in range(reps):
        GraphBatch(indexes)
    pack_s = perf_counter() - t0

    batch = GraphBatch(indexes)
    _batch_levels(batch)
    t0 = perf_counter()
    for _ in range(reps):
        _batch_levels(batch)
    batch_s = perf_counter() - t0

    ref = _per_graph_levels(indexes)
    tl, bl, hu, alap = _batch_levels(batch)
    identical = True
    for k in range(batch.n_graphs):
        lo, hi = int(batch.node_off[k]), int(batch.node_off[k + 1])
        rtl, rbl, rhu, ralap = ref[k]
        if (
            tl[lo:hi].tolist() != rtl
            or bl[lo:hi].tolist() != rbl
            or hu[lo:hi].tolist() != rhu
            or alap[lo:hi].tolist() != ralap
        ):
            identical = False
            break

    return {
        "n_graphs": batch.n_graphs,
        "n_nodes": batch.n_nodes,
        "n_edges": batch.n_edges,
        "n_levels": batch.n_levels,
        "reps": reps,
        "per_graph_ms": round(per_graph_s / reps * 1e3, 4),
        "batch_ms": round(batch_s / reps * 1e3, 4),
        "pack_ms": round(pack_s / reps * 1e3, 4),
        "speedup": round(per_graph_s / batch_s, 3),
        "allin_speedup": round(per_graph_s / (batch_s + pack_s), 3),
        "identical": identical,
    }


def _bench_classify(quick: bool) -> dict:
    graphs = _cell()
    indexes = [GraphIndex(g) for g in graphs]
    reps = 30 if quick else 100

    # granularity() is memoized per graph; time the raw computation so
    # both arms stay cold across repetitions.
    def scalar_all() -> list:
        out = []
        for g in graphs:
            try:
                out.append(_granularity(g))
            except GraphError:
                out.append(None)
        return out

    scalar_all()
    t0 = perf_counter()
    for _ in range(reps):
        scalar_all()
    scalar_s = perf_counter() - t0

    batch = GraphBatch(indexes)

    def batch_all() -> list:
        batch._memo.pop("gran", None)
        return batch.granularities()

    batch_all()
    t0 = perf_counter()
    for _ in range(reps):
        batch_all()
    batch_s = perf_counter() - t0

    ref = scalar_all()
    got = batch_all()
    identical = len(ref) == len(got) and all(
        (a is None and b is None) or a == b for a, b in zip(ref, got)
    )

    return {
        "n_graphs": len(graphs),
        "reps": reps,
        "per_graph_ms": round(scalar_s / reps * 1e3, 4),
        "batch_ms": round(batch_s / reps * 1e3, 4),
        "speedup": round(scalar_s / batch_s, 3),
        "identical": identical,
    }


def _copy_suite(suite: list) -> list:
    return [
        SuiteGraph(cell=sg.cell, index=sg.index, graph=sg.graph.copy())
        for sg in suite
    ]


def _bench_end_to_end(quick: bool, graphs_per_cell: int | None) -> dict:
    per_cell = graphs_per_cell or (2 if quick else 4)
    n_range = (20, 40) if quick else (40, 100)
    suite = list(
        generate_suite(graphs_per_cell=per_cell, seed=SEED, n_tasks_range=n_range)
    )
    scheds = [get_scheduler(name) for name in PAPER_HEURISTICS]

    # Both arms run kernels-on over fresh graph copies (the two arms share
    # memo keys, so reusing objects would hand arm 2 arm 1's caches).
    with use_registry(MetricsRegistry()), use_batch(True):
        run_suite(_copy_suite(suite[: min(6, len(suite))]), scheds, seed=SEED)

    with use_registry(MetricsRegistry()), use_batch(False):
        arm = _copy_suite(suite)
        t0 = perf_counter()
        off_results = run_suite(arm, scheds, seed=SEED)
        off_s = perf_counter() - t0

    on_registry = MetricsRegistry()
    with use_registry(on_registry), use_batch(True):
        arm = _copy_suite(suite)
        t0 = perf_counter()
        on_results = run_suite(arm, scheds, seed=SEED)
        on_s = perf_counter() - t0

    identical = _serialized(off_results) == _serialized(on_results)
    counters = on_registry.counters()

    return {
        "graphs_per_cell": per_cell,
        "n_graphs": len(suite),
        "n_tasks_range": list(n_range),
        "heuristics": PAPER_HEURISTICS,
        "unbatched_wall_s": round(off_s, 4),
        "batched_wall_s": round(on_s, 4),
        "speedup": round(off_s / on_s, 3),
        "identical": identical,
        "obs": {
            "batches": counters.get("batch.batches", 0.0),
            "batched_graphs": counters.get("batch.graphs", 0.0),
            "already_primed": counters.get("batch.already_primed", 0.0),
        },
    }


def run_benchmark(*, quick: bool = False, graphs_per_cell: int | None = None) -> dict:
    """Run all three measurements; returns the baseline JSON payload."""
    levels = _bench_levels(quick)
    classify = _bench_classify(quick)
    end_to_end = _bench_end_to_end(quick, graphs_per_cell)
    return {
        "format": "repro-bench-batch",
        "version": 1,
        "quick": quick,
        "seed": SEED,
        "platform": {
            "python": platform.python_version(),
            "system": platform.system(),
            "machine": platform.machine(),
        },
        "levels": levels,
        "classify": classify,
        "end_to_end": end_to_end,
    }
