"""Run heuristics over graph suites and collect measures.

This is the testbed's execution core: it takes classified graphs (from
:mod:`repro.generation.suites` or anywhere else), runs every scheduler on
every graph, optionally validates each produced schedule against the
execution model, and emits :class:`~repro.experiments.measures.GraphResult`
records for aggregation.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from ..core.metrics import granularity
from ..core.taskgraph import TaskGraph
from ..generation.suites import SuiteGraph
from ..schedulers.base import Scheduler, paper_schedulers
from .measures import GraphResult, HeuristicResult

__all__ = ["evaluate_graph", "run_suite", "PAPER_HEURISTIC_ORDER"]

#: Column order used by every table in the paper.
PAPER_HEURISTIC_ORDER: tuple[str, ...] = ("CLANS", "DSC", "MCP", "MH", "HU")


def evaluate_graph(
    graph: TaskGraph,
    schedulers: Sequence[Scheduler],
    *,
    validate: bool = False,
) -> dict[str, HeuristicResult]:
    """Schedule one graph with every heuristic.

    With ``validate=True`` each schedule is checked against the shared
    execution model — slower, but the property the whole comparison rests
    on; the test suite always validates.
    """
    out: dict[str, HeuristicResult] = {}
    for sched in schedulers:
        schedule = sched.schedule(graph)
        if validate:
            schedule.validate(graph)
        out[sched.name] = HeuristicResult(
            parallel_time=schedule.makespan,
            n_processors=schedule.n_processors,
        )
    return out


def run_suite(
    suite: Iterable[SuiteGraph],
    schedulers: Sequence[Scheduler] | None = None,
    *,
    validate: bool = False,
    progress: Callable[[int, GraphResult], None] | None = None,
) -> list[GraphResult]:
    """Evaluate every suite graph with every scheduler.

    ``schedulers`` defaults to the paper's five heuristics.  ``progress``
    (if given) is called after each graph with ``(count so far, result)``.
    """
    if schedulers is None:
        schedulers = paper_schedulers()
    results: list[GraphResult] = []
    for sg in suite:
        gr = GraphResult(
            graph_id=sg.graph_id,
            band=sg.cell.band,
            anchor=sg.cell.anchor,
            weight_range=sg.cell.weight_range,
            granularity=granularity(sg.graph),
            serial_time=sg.graph.serial_time(),
            results=evaluate_graph(sg.graph, schedulers, validate=validate),
        )
        results.append(gr)
        if progress is not None:
            progress(len(results), gr)
    return results
