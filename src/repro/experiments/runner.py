"""Run heuristics over graph suites and collect measures.

This is the testbed's execution core: it takes classified graphs (from
:mod:`repro.generation.suites` or anywhere else), runs every scheduler on
every graph, optionally validates each produced schedule against the
execution model, and emits :class:`~repro.experiments.measures.GraphResult`
records for aggregation.

Observability: each graph is traced as a ``graph.<id>`` span on the process
tracer (:mod:`repro.obs.trace`); any library error raised while scheduling
or validating is annotated (:pep:`678` notes) with the graph id, heuristic
name and master seed, so a failure 1800 graphs into a suite run is
diagnosable.  Progress callbacks may accept a third
:class:`~repro.obs.log.ProgressStats` argument carrying elapsed wall time,
throughput and ETA — ``progress=repro.obs.log_progress`` is the ready-made
logging callback.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Iterable, Sequence
from time import perf_counter

from ..core.exceptions import ReproError
from ..core.metrics import granularity
from ..core.taskgraph import TaskGraph
from ..generation.suites import SuiteGraph
from ..obs.log import ProgressStats
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..schedulers.base import Scheduler, paper_schedulers
from .measures import GraphResult, HeuristicResult

__all__ = ["evaluate_graph", "run_suite", "PAPER_HEURISTIC_ORDER"]

#: Column order used by every table in the paper.
PAPER_HEURISTIC_ORDER: tuple[str, ...] = ("CLANS", "DSC", "MCP", "MH", "HU")


def _attach_run_context(
    exc: BaseException, *, graph_id: str | None, heuristic: str, seed: int | None
) -> None:
    """Annotate a failure with which run produced it (PEP 678 note)."""
    exc.add_note(
        f"while scheduling graph={graph_id or '<unnamed>'} "
        f"heuristic={heuristic} seed={seed if seed is not None else '<unknown>'}"
    )


def evaluate_graph(
    graph: TaskGraph,
    schedulers: Sequence[Scheduler],
    *,
    validate: bool = False,
    graph_id: str | None = None,
    seed: int | None = None,
) -> dict[str, HeuristicResult]:
    """Schedule one graph with every heuristic.

    With ``validate=True`` each schedule is checked against the shared
    execution model — slower, but the property the whole comparison rests
    on; the test suite always validates.  ``graph_id`` and ``seed`` are
    pure metadata: they are attached to any raised library error so the
    failing run can be reproduced.
    """
    out: dict[str, HeuristicResult] = {}
    tracer = get_tracer()
    registry = get_registry()
    for sched in schedulers:
        try:
            schedule = sched._schedule_observed(graph, tracer, registry)
            if validate:
                schedule.validate(graph)
        except ReproError as exc:
            _attach_run_context(
                exc, graph_id=graph_id, heuristic=sched.name, seed=seed
            )
            raise
        out[sched.name] = HeuristicResult(
            parallel_time=schedule.makespan,
            n_processors=schedule.n_processors,
        )
    return out


def _graph_result(
    sg: SuiteGraph,
    schedulers: Sequence[Scheduler],
    *,
    validate: bool,
    seed: int | None,
    tracer,
) -> GraphResult:
    """Evaluate one suite graph (one ``graph.<id>`` span on ``tracer``).

    Shared by the serial loop below and the process-pool workers in
    :mod:`repro.experiments.parallel` — both paths produce results through
    this single function, which is what makes serial and parallel runs
    bit-identical.
    """
    with tracer.span("graph." + sg.graph_id, cat="suite", graph_id=sg.graph_id):
        return GraphResult(
            graph_id=sg.graph_id,
            band=sg.cell.band,
            anchor=sg.cell.anchor,
            weight_range=sg.cell.weight_range,
            granularity=granularity(sg.graph),
            serial_time=sg.graph.serial_time(),
            results=evaluate_graph(
                sg.graph,
                schedulers,
                validate=validate,
                graph_id=sg.graph_id,
                seed=seed,
            ),
        )


def _accepts_stats(progress: Callable) -> bool:
    """Whether a progress callback takes the third ``ProgressStats`` arg."""
    try:
        params = inspect.signature(progress).parameters.values()
    except (TypeError, ValueError):
        return False
    positional = 0
    for p in params:
        if p.kind is inspect.Parameter.VAR_POSITIONAL:
            return True
        if p.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            positional += 1
    return positional >= 3


def run_suite(
    suite: Iterable[SuiteGraph],
    schedulers: Sequence[Scheduler] | None = None,
    *,
    validate: bool = False,
    progress: Callable | None = None,
    seed: int | None = None,
    jobs: int | None = 1,
) -> list[GraphResult]:
    """Evaluate every suite graph with every scheduler.

    ``schedulers`` defaults to the paper's five heuristics.  ``progress``
    (if given) is called after each graph with ``(count so far, result)``;
    callbacks declaring a third positional parameter additionally receive a
    :class:`~repro.obs.log.ProgressStats` with elapsed time, graphs/sec and
    the suite total when known.  ``seed`` is metadata only — it is attached
    to error context and is *not* used to generate anything here.

    ``jobs`` selects the execution strategy: 1 (the default) runs in-process
    and serially; ``N > 1`` fans the suite out over ``N`` worker processes
    (:mod:`repro.experiments.parallel`); ``None`` uses every available CPU.
    Results are always returned in suite order and are identical between the
    serial and parallel paths.
    """
    if jobs is None or jobs != 1:
        from .parallel import run_suite_parallel

        return run_suite_parallel(
            suite,
            schedulers,
            validate=validate,
            progress=progress,
            seed=seed,
            jobs=jobs,
        )
    if schedulers is None:
        schedulers = paper_schedulers()
    total = len(suite) if hasattr(suite, "__len__") else None
    with_stats = progress is not None and _accepts_stats(progress)
    # Hoisted out of the per-graph loop: the tracer and registry are stable
    # for the duration of a run (tests swap them *around* runs, not inside).
    tracer = get_tracer()
    registry = get_registry()
    start = perf_counter()
    results: list[GraphResult] = []
    for sg in suite:
        gr = _graph_result(
            sg, schedulers, validate=validate, seed=seed, tracer=tracer
        )
        results.append(gr)
        if progress is not None:
            done = len(results)
            if with_stats:
                elapsed = perf_counter() - start
                progress(
                    done,
                    gr,
                    ProgressStats(
                        done=done,
                        total=total,
                        elapsed=elapsed,
                        rate=done / elapsed if elapsed > 0 else 0.0,
                    ),
                )
            else:
                progress(done, gr)
    registry.inc("suite.graphs", len(results))
    return results
