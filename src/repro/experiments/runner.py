"""Run heuristics over graph suites and collect measures.

This is the testbed's execution core: it takes classified graphs (from
:mod:`repro.generation.suites` or anywhere else), runs every scheduler on
every graph, optionally validates each produced schedule against the
execution model, and emits :class:`~repro.experiments.measures.GraphResult`
records for aggregation.

Fault tolerance: :func:`evaluate_graph` and :func:`run_suite` accept an
``on_error`` policy (``"raise"`` — historical fail-fast default — or
``"skip"`` / ``"record"``, which isolate failures as
:class:`~repro.experiments.faults.FailureRecord` objects and keep the
campaign going), a per-schedule-call wall-clock ``timeout`` (one overrun is
retried, a second quarantines the pair), and ``retries`` with exponential
backoff for transient failures.  ``run_suite(..., checkpoint=path)``
journals every completed graph to a JSONL file with fsync'd appends, so an
interrupted 2100-graph campaign resumes where it died and reproduces the
uninterrupted run's results byte-for-byte.

Observability: each graph is traced as a ``graph.<id>`` span on the process
tracer (:mod:`repro.obs.trace`); any library error raised while scheduling
or validating is annotated (:pep:`678` notes) with the graph id, heuristic
name and master seed, so a failure 1800 graphs into a suite run is
diagnosable.  Isolated failures surface as ``suite.failures`` /
``suite.failures.<heuristic>.<kind>`` counters.  Progress callbacks may
accept a third :class:`~repro.obs.log.ProgressStats` argument carrying
elapsed wall time, throughput and ETA — ``progress=repro.obs.log_progress``
is the ready-made logging callback.  A progress callback that raises is
reported once (obs warning) and disabled; it never aborts the suite.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Iterable, Sequence
from time import perf_counter, sleep

from ..core.batch import batch_analyze, batch_enabled
from ..core.exceptions import ReproError
from ..core.metrics import granularity
from ..core.taskgraph import TaskGraph
from ..generation.suites import SuiteGraph
from ..obs.log import ProgressStats, get_logger
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..schedulers.base import Scheduler, paper_schedulers
from .faults import FailureRecord, FaultPolicy, GraphTimeoutError, deadline
from .measures import GraphResult, HeuristicResult, SuiteResult

__all__ = ["evaluate_graph", "run_suite", "PAPER_HEURISTIC_ORDER"]

#: Column order used by every table in the paper.
PAPER_HEURISTIC_ORDER: tuple[str, ...] = ("CLANS", "DSC", "MCP", "MH", "HU")


def _attach_run_context(
    exc: BaseException, *, graph_id: str | None, heuristic: str, seed: int | None
) -> None:
    """Annotate a failure with which run produced it (PEP 678 note)."""
    exc.add_note(
        f"while scheduling graph={graph_id or '<unnamed>'} "
        f"heuristic={heuristic} seed={seed if seed is not None else '<unknown>'}"
    )


def _evaluate_one(
    sched: Scheduler,
    graph: TaskGraph,
    *,
    validate: bool,
    tracer,
    registry,
    policy: FaultPolicy,
    graph_id: str | None,
    seed: int | None,
) -> tuple[HeuristicResult | None, FailureRecord | None]:
    """One heuristic under a fault policy: budget, retries, quarantine.

    Returns ``(result, None)`` on success, ``(None, record)`` when the
    failure was absorbed; re-raises (with run context attached) when the
    policy says ``on_error="raise"`` and retries are exhausted.
    """
    attempts = 0
    timeouts = 0
    start = perf_counter()
    while True:
        attempts += 1
        try:
            with deadline(policy.timeout):
                schedule = sched._schedule_observed(graph, tracer, registry)
                if validate:
                    schedule.validate(graph)
            return (
                HeuristicResult(
                    parallel_time=schedule.makespan,
                    n_processors=schedule.n_processors,
                ),
                None,
            )
        except Exception as exc:
            is_timeout = isinstance(exc, GraphTimeoutError)
            if is_timeout:
                timeouts += 1
                registry.inc("suite.timeouts")
                # A hung call gets exactly one more chance; a second
                # overrun quarantines the (graph, heuristic) pair.
                retry = timeouts < 2
            else:
                retry = attempts <= policy.retries
            if retry:
                registry.inc("suite.retries")
                if policy.backoff:
                    sleep(policy.backoff * 2 ** (attempts - 1))
                continue
            if not policy.isolates:
                if isinstance(exc, ReproError):
                    _attach_run_context(
                        exc, graph_id=graph_id, heuristic=sched.name, seed=seed
                    )
                raise
            kind = "timeout" if is_timeout else "error"
            if is_timeout:
                registry.inc("suite.quarantined")
            registry.inc("suite.failures")
            registry.inc(f"suite.failures.{sched.name}.{kind}")
            return None, FailureRecord.from_exception(
                exc,
                graph_id=graph_id or "<unnamed>",
                heuristic=sched.name,
                kind=kind,
                seed=seed,
                elapsed=perf_counter() - start,
                attempts=attempts,
            )


def evaluate_graph(
    graph: TaskGraph,
    schedulers: Sequence[Scheduler],
    *,
    validate: bool = False,
    graph_id: str | None = None,
    seed: int | None = None,
    on_error: str = "raise",
    policy: FaultPolicy | None = None,
    failures: list[FailureRecord] | None = None,
) -> dict[str, HeuristicResult]:
    """Schedule one graph with every heuristic.

    With ``validate=True`` each schedule is checked against the shared
    execution model — slower, but the property the whole comparison rests
    on; the test suite always validates.  ``graph_id`` and ``seed`` are
    pure metadata: they are attached to any raised library error so the
    failing run can be reproduced.

    ``on_error`` selects the failure policy: ``"raise"`` (default)
    re-raises the first failure; ``"skip"`` and ``"record"`` absorb it —
    the failed heuristic is omitted from the returned dict and, when the
    caller supplies a ``failures`` list, a
    :class:`~repro.experiments.faults.FailureRecord` is appended to it.
    Pass a full :class:`~repro.experiments.faults.FaultPolicy` as
    ``policy`` to add per-call timeouts and retries; it overrides
    ``on_error``.
    """
    if policy is None:
        if on_error != "raise":
            policy = FaultPolicy(on_error=on_error)
    out: dict[str, HeuristicResult] = {}
    tracer = get_tracer()
    registry = get_registry()
    if policy is None:
        # Historical fast path: no policy machinery on the hot loop.
        for sched in schedulers:
            try:
                schedule = sched._schedule_observed(graph, tracer, registry)
                if validate:
                    schedule.validate(graph)
            except ReproError as exc:
                _attach_run_context(
                    exc, graph_id=graph_id, heuristic=sched.name, seed=seed
                )
                raise
            out[sched.name] = HeuristicResult(
                parallel_time=schedule.makespan,
                n_processors=schedule.n_processors,
            )
        return out
    for sched in schedulers:
        result, record = _evaluate_one(
            sched,
            graph,
            validate=validate,
            tracer=tracer,
            registry=registry,
            policy=policy,
            graph_id=graph_id,
            seed=seed,
        )
        if result is not None:
            out[sched.name] = result
        elif record is not None and failures is not None:
            failures.append(record)
    return out


def _graph_result(
    sg: SuiteGraph,
    schedulers: Sequence[Scheduler],
    *,
    validate: bool,
    seed: int | None,
    tracer,
) -> GraphResult:
    """Evaluate one suite graph (one ``graph.<id>`` span on ``tracer``).

    Shared by the serial loop below and the process-pool workers in
    :mod:`repro.experiments.parallel` — both paths produce results through
    this single function, which is what makes serial and parallel runs
    bit-identical.
    """
    gr, _ = _graph_result_safe(
        sg, schedulers, validate=validate, seed=seed, tracer=tracer, policy=None
    )
    assert gr is not None  # policy=None re-raises instead of absorbing
    return gr


def _graph_result_safe(
    sg: SuiteGraph,
    schedulers: Sequence[Scheduler],
    *,
    validate: bool,
    seed: int | None,
    tracer,
    policy: FaultPolicy | None,
) -> tuple[GraphResult | None, list[FailureRecord]]:
    """Fault-aware evaluation of one suite graph.

    Returns ``(result, failures)``; ``result`` is ``None`` when every
    heuristic failed (the graph drops out of the suite results entirely)
    and ``failures`` holds the absorbed per-heuristic records.  Serial and
    parallel runs both produce results through this single function, which
    is what makes them bit-identical — policy decisions included.
    """
    failures: list[FailureRecord] = []
    with tracer.span("graph." + sg.graph_id, cat="suite", graph_id=sg.graph_id):
        results = evaluate_graph(
            sg.graph,
            schedulers,
            validate=validate,
            graph_id=sg.graph_id,
            seed=seed,
            policy=policy,
            failures=failures,
        )
    if not results:
        return None, failures
    return (
        GraphResult(
            graph_id=sg.graph_id,
            band=sg.cell.band,
            anchor=sg.cell.anchor,
            weight_range=sg.cell.weight_range,
            granularity=granularity(sg.graph),
            serial_time=sg.graph.serial_time(),
            results=results,
        ),
        failures,
    )


def _accepts_stats(progress: Callable) -> bool:
    """Whether a progress callback takes the third ``ProgressStats`` arg."""
    try:
        params = inspect.signature(progress).parameters.values()
    except (TypeError, ValueError):
        return False
    positional = 0
    for p in params:
        if p.kind is inspect.Parameter.VAR_POSITIONAL:
            return True
        if p.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            positional += 1
    return positional >= 3


class _ProgressGuard:
    """Wrap a progress callback so its bugs cannot abort a campaign.

    The first ordinary exception is logged (obs warning) and the callback
    is disabled for the rest of the run.  ``KeyboardInterrupt`` and other
    ``BaseException``s propagate — a ^C must still stop the suite (the
    checkpoint journal, if any, stays intact: appends happen before the
    callback fires).
    """

    def __init__(self, progress: Callable) -> None:
        self._progress = progress
        self.wants_stats = _accepts_stats(progress)
        self._disabled = False

    def __call__(self, done: int, gr, stats: ProgressStats | None) -> None:
        if self._disabled:
            return
        try:
            if self.wants_stats:
                self._progress(done, gr, stats)
            else:
                self._progress(done, gr)
        except Exception:
            self._disabled = True
            get_logger("runner").warning(
                "progress callback raised; disabling it for the rest of the run",
                exc_info=True,
            )


def _make_policy(
    on_error: str, timeout: float | None, retries: int, backoff: float
) -> FaultPolicy | None:
    """A policy object, or ``None`` when everything is at the fail-fast
    defaults (keeps the historical zero-overhead path)."""
    if on_error == "raise" and timeout is None and retries == 0:
        return None
    return FaultPolicy(
        on_error=on_error, timeout=timeout, retries=retries, backoff=backoff
    )


#: Graphs per vectorized pre-analysis batch in the serial suite path.
#: Large enough to amortize the pack's fixed numpy-call overhead (the
#: batched sweeps only win clearly past ~128 pooled graphs), small enough
#: that buffering a lazy suite generator this far ahead stays cheap.
PREBATCH_CHUNK = 256


def _iter_prebatched(
    suite: Iterable[SuiteGraph], completed: dict
) -> Iterable[SuiteGraph]:
    """Yield the suite unchanged, batch-analyzing ``PREBATCH_CHUNK`` ahead.

    Each chunk's graphs get their level/classification memos primed by one
    vectorized :func:`~repro.core.batch.batch_analyze` pass (checkpointed
    graphs are skipped — their results are replayed, not recomputed), so
    the per-graph evaluation below runs against warm caches.  Results are
    byte-identical: the batch primes exactly the values the lazy kernels
    would compute, and graphs it cannot handle (e.g. cyclic) are left for
    the per-graph path to fail on with its usual error handling — the
    :class:`~repro.core.batch.BatchReport` names them here first, so a bad
    generator shows up in the log before the failure record.
    """
    buf: list[SuiteGraph] = []
    for sg in suite:
        buf.append(sg)
        if len(buf) >= PREBATCH_CHUNK:
            _prebatch([s for s in buf if s.graph_id not in completed])
            yield from buf
            buf = []
    if buf:
        _prebatch([s for s in buf if s.graph_id not in completed])
        yield from buf


def _prebatch(pending: list[SuiteGraph]) -> None:
    report = batch_analyze([s.graph for s in pending])
    for pos in report.skipped:
        get_logger("runner").warning(
            "batch pre-analysis skipped cyclic graph %s; "
            "the per-graph path will raise",
            pending[pos].graph_id,
        )


def run_suite(
    suite: Iterable[SuiteGraph],
    schedulers: Sequence[Scheduler] | None = None,
    *,
    validate: bool = False,
    progress: Callable | None = None,
    seed: int | None = None,
    jobs: int | None = 1,
    on_error: str = "raise",
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.05,
    checkpoint=None,
) -> SuiteResult:
    """Evaluate every suite graph with every scheduler.

    ``schedulers`` defaults to the paper's five heuristics.  ``progress``
    (if given) is called after each graph with ``(count so far, result)``;
    callbacks declaring a third positional parameter additionally receive a
    :class:`~repro.obs.log.ProgressStats` with elapsed time, graphs/sec and
    the suite total when known.  ``seed`` is metadata only — it is attached
    to error context and is *not* used to generate anything here.

    ``jobs`` selects the execution strategy: 1 (the default) runs in-process
    and serially; ``N > 1`` fans the suite out over ``N`` worker processes
    (:mod:`repro.experiments.parallel`); ``None`` uses every available CPU.
    Results are always returned in suite order and are identical between the
    serial and parallel paths.

    Fault tolerance (see :mod:`repro.experiments.faults`): ``on_error``
    chooses fail-fast (``"raise"``), counted-but-dropped (``"skip"``) or
    carried (``"record"``) failures; ``timeout`` budgets each schedule call
    in wall-clock seconds (one overrun retried, two quarantined);
    ``retries``/``backoff`` re-attempt transient non-timeout failures.
    ``checkpoint`` names a JSONL journal: every completed graph (and
    absorbed failure) is appended with an fsync'd write, and a re-run with
    the same path skips graphs whose journal entries already cover the
    requested heuristics — interrupt-and-resume reproduces the
    uninterrupted run's results byte-for-byte.  The journal guarantees
    at-least-once evaluation: a graph in flight when the process dies is
    re-evaluated on resume.
    """
    policy = _make_policy(on_error, timeout, retries, backoff)
    if jobs is None or jobs != 1:
        from .parallel import run_suite_parallel

        return run_suite_parallel(
            suite,
            schedulers,
            validate=validate,
            progress=progress,
            seed=seed,
            jobs=jobs,
            on_error=on_error,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            checkpoint=checkpoint,
        )
    if schedulers is None:
        schedulers = paper_schedulers()

    journal = None
    completed: dict[str, GraphResult | None] = {}
    replayed: list[FailureRecord] = []
    if checkpoint is not None:
        from .persistence import CheckpointJournal

        journal = CheckpointJournal(checkpoint)
        completed, replayed = journal.load_completed(
            [s.name for s in schedulers]
        )

    total = len(suite) if hasattr(suite, "__len__") else None
    guard = _ProgressGuard(progress) if progress is not None else None
    # Hoisted out of the per-graph loop: the tracer and registry are stable
    # for the duration of a run (tests swap them *around* runs, not inside).
    tracer = get_tracer()
    registry = get_registry()
    start = perf_counter()
    keep_records = policy is not None and policy.keeps_records
    results = SuiteResult(failures=replayed if keep_records else ())
    results.n_failed = len(replayed)
    resumed = 0
    suite_iter = _iter_prebatched(suite, completed) if batch_enabled() else suite
    for sg in suite_iter:
        if sg.graph_id in completed:
            gr = completed[sg.graph_id]
            resumed += 1
        else:
            gr, failures = _graph_result_safe(
                sg,
                schedulers,
                validate=validate,
                seed=seed,
                tracer=tracer,
                policy=policy,
            )
            results.n_failed += len(failures)
            if keep_records:
                results.failures.extend(failures)
            if journal is not None:
                journal.append(gr, failures)
        if gr is None:
            continue
        results.append(gr)
        if guard is not None:
            done = len(results)
            stats = None
            if guard.wants_stats:
                elapsed = perf_counter() - start
                stats = ProgressStats(
                    done=done,
                    total=total,
                    elapsed=elapsed,
                    rate=done / elapsed if elapsed > 0 else 0.0,
                )
            guard(done, gr, stats)
    registry.inc("suite.graphs", len(results))
    if resumed:
        registry.inc("suite.checkpoint.resumed", resumed)
    return results
