"""Adversarial-search benchmark: gap found at a fixed step budget.

Shared by ``benchmarks/bench_adversarial.py`` (the tracked-baseline script
and CI ``adversarial-smoke``) and the ``repro-sched bench adversarial``
subcommand.  One measurement with two checks:

* **search** — a fixed-seed simulated-annealing hunt (DSC vs CLANS,
  makespan-ratio objective) from a fixed base cell, at a fixed step ×
  neighborhood budget.  Reported: ``steps_per_s`` (throughput of the
  batch-fanned scoring loop — the ledger-tracked metric) and ``best_gap``
  (the gap found at the budget — the quality metric).
* **beats the random testbed** — the same objective is evaluated over a
  Table-1 random suite (one graph per cell in quick mode) and the hunt's
  ``best_gap`` must strictly exceed that testbed's max.  This is the
  paper-level claim the subsystem exists to make: random sampling
  understates scheduler gaps.
* **replay** — the discovered instance's ``(base spec, op log)`` recipe is
  replayed from scratch and must reproduce the instance digest exactly.

The whole pipeline is deterministic — seeded ``random.Random`` search over
seeded numpy generation, resolved ops, insertion-ordered encoding — so
``best_gap``, ``baseline_gap`` and the digest are machine-independent and
``--check``'s floors bind everywhere; only ``steps_per_s`` and wall times
vary by machine (the perf ledger tracks those with a wide tolerance).
"""

from __future__ import annotations

import platform
from time import perf_counter

from ..adversarial.objective import baseline_gap, make_objective
from ..adversarial.search import hunt
from ..adversarial.store import InstanceRecord, build_base_graph, verify_replay, wire_record
from ..generation.suites import generate_suite
from ..obs.metrics import MetricsRegistry, use_registry
from .kernelbench import SEED

__all__ = [
    "SEED",
    "QUICK_FLOORS",
    "FULL_FLOORS",
    "run_benchmark",
    "floor_violations",
]

#: The hunted pair and objective: how badly CLANS can be made to lose to
#: DSC, as a makespan ratio (the ROADMAP's worked example).
PAIR = ("DSC", "CLANS")
OBJECTIVE = "ratio"
POLICY = "anneal"

#: Fixed base cell the search starts from (band 2 / anchor 3 / weights
#: 20-100 — the middle of the paper's Table 1).
BASE_SPEC = {
    "kind": "pdg",
    "seed": SEED,
    "n_tasks": 48,
    "band": 2,
    "anchor": 3,
    "weight_range": [20, 100],
}

#: Gap floors enforced by ``--check``.  The search is deterministic, so
#: these are pinned just under the fixed-seed result (quick: the CI
#: 200-step budget; full: the pinned-baseline budget) — a miss means the
#: search, ops or schedulers changed behavior, not a slow machine.
QUICK_FLOORS = {"best_gap": 2.0}  # fixed-seed quick run finds 2.344
FULL_FLOORS = {"best_gap": 1.5}  # fixed-seed full run finds 1.719


def floor_violations(payload: dict, floors: dict) -> list[str]:
    """Deterministic quality-floor misses (empty list = all good)."""
    adv = payload["adversarial"]
    missed = []
    if adv["best_gap"] < floors["best_gap"]:
        missed.append(
            f"adversarial best_gap {adv['best_gap']:.4f} "
            f"< floor {floors['best_gap']:.4f}"
        )
    if not adv["beats_baseline"]:
        missed.append(
            f"adversarial best_gap {adv['best_gap']:.4f} does not beat the "
            f"random-testbed max {adv['baseline_gap']:.4f}"
        )
    return missed


def run_benchmark(*, quick: bool = False, graphs_per_cell: int | None = None) -> dict:
    """Run the fixed-seed hunt + baseline sweep; returns the payload."""
    steps = 200
    neighborhood = 4 if quick else 8
    per_cell = graphs_per_cell or (1 if quick else 2)
    n_range = (20, 40) if quick else (40, 100)

    objective = make_objective(OBJECTIVE, *PAIR)
    base = build_base_graph(BASE_SPEC)

    registry = MetricsRegistry()
    with use_registry(registry):
        testbed = list(
            generate_suite(
                graphs_per_cell=per_cell, seed=SEED, n_tasks_range=n_range
            )
        )
        t0 = perf_counter()
        base_max, base_max_id = baseline_gap(objective, testbed)
        baseline_s = perf_counter() - t0

        result = hunt(
            base,
            objective,
            seed=SEED,
            steps=steps,
            neighborhood=neighborhood,
            policy=POLICY,
        )

        wire, digest = wire_record(result.best_graph)
        record = InstanceRecord(
            digest=digest,
            graph=wire,
            base=BASE_SPEC,
            op_log=result.best_op_log,
            objective=objective.describe(),
            gap=result.best_score,
            base_gap=result.base_score,
            baseline_gap=base_max,
            search={
                "policy": result.policy,
                "seed": result.seed,
                "steps": result.steps,
                "neighborhood": result.neighborhood,
            },
        )
        try:
            verify_replay(record)
            replay_identical = True
        except Exception:
            replay_identical = False

    counters = registry.counters()
    return {
        "format": "repro-bench-adversarial",
        "version": 1,
        "quick": quick,
        "seed": SEED,
        "platform": {
            "python": platform.python_version(),
            "system": platform.system(),
            "machine": platform.machine(),
        },
        "adversarial": {
            "pair": list(PAIR),
            "objective": OBJECTIVE,
            "policy": POLICY,
            "base": dict(BASE_SPEC),
            "steps": result.steps,
            "neighborhood": result.neighborhood,
            "evaluated": result.evaluated,
            "accepted": result.accepted,
            "restarts": result.restarts,
            "wall_s": round(result.wall_s, 4),
            "steps_per_s": round(result.steps / result.wall_s, 3),
            "best_gap": result.best_score,
            "base_gap": result.base_score,
            "baseline_gap": base_max,
            "baseline_graph_id": base_max_id,
            "baseline_graphs": len(testbed),
            "baseline_wall_s": round(baseline_s, 4),
            "beats_baseline": base_max is not None
            and result.best_score > base_max,
            "replay_identical": replay_identical,
            "digest": digest,
            "op_log_len": len(result.best_op_log),
            "obs": {
                "steps": counters.get("adv.steps", 0.0),
                "accepted": counters.get("adv.accepted", 0.0),
                "evaluated": counters.get("adv.evaluated", 0.0),
                "batches": counters.get("batch.batches", 0.0),
            },
        },
    }
