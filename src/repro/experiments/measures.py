"""Per-graph and aggregate performance measures (paper section 4).

For every graph and heuristic the testbed records the *parallel time*
(schedule makespan) and the processors used, from which the paper's four
reported measures derive:

* ``speedup = serial time / parallel time``;
* ``efficiency = speedup / processors used``;
* ``normalized relative parallel time (NRPT) =
  parallel_time / best parallel time among the compared heuristics - 1``;
* the count of schedules with ``speedup < 1`` ("retardations").
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "HeuristicResult",
    "GraphResult",
    "SuiteResult",
    "AggregateRow",
    "aggregate",
    "heuristic_names",
]


@dataclass(frozen=True)
class HeuristicResult:
    """One heuristic's outcome on one graph."""

    parallel_time: float
    n_processors: int

    def speedup(self, serial_time: float) -> float:
        return serial_time / self.parallel_time

    def efficiency(self, serial_time: float) -> float:
        return self.speedup(serial_time) / self.n_processors


@dataclass(frozen=True)
class GraphResult:
    """All heuristics' outcomes on one classified graph."""

    graph_id: str
    band: int
    anchor: int
    weight_range: tuple[int, int]
    granularity: float
    serial_time: float
    results: dict[str, HeuristicResult] = field(default_factory=dict)

    @property
    def best_parallel_time(self) -> float:
        """Shortest schedule among the compared heuristics (paper's basis
        for relative parallel time)."""
        return min(r.parallel_time for r in self.results.values())

    def nrpt(self, name: str) -> float:
        """Normalized relative parallel time of heuristic ``name``."""
        return self.results[name].parallel_time / self.best_parallel_time - 1.0

    def speedup(self, name: str) -> float:
        return self.results[name].speedup(self.serial_time)

    def efficiency(self, name: str) -> float:
        return self.results[name].efficiency(self.serial_time)

    def retarded(self, name: str) -> bool:
        """True when the heuristic produced a schedule slower than serial."""
        return self.speedup(name) < 1.0 - 1e-12


class SuiteResult(list):
    """A run's :class:`GraphResult` list plus its failure information.

    Behaves exactly like the plain ``list`` the runners historically
    returned (equality, slicing, iteration), so existing analysis code is
    unaffected; fault-tolerant runs additionally expose

    * ``failures`` — the run's ``FailureRecord`` objects (empty unless the
      run used ``on_error="record"``),
    * ``n_failed`` — the count of failed ``(graph, heuristic)``
      evaluations, maintained under ``on_error="skip"`` too, where the
      records themselves are dropped.
    """

    def __init__(self, results=(), failures=(), n_failed: int | None = None):
        super().__init__(results)
        self.failures = list(failures)
        self.n_failed = len(self.failures) if n_failed is None else n_failed

    @property
    def failure_rate(self) -> float:
        """Failed evaluations / total attempted evaluations (0.0..1.0).

        The denominator counts per-``(graph, heuristic)`` attempts:
        successful entries across all graphs plus the failures.
        """
        succeeded = sum(len(gr.results) for gr in self)
        attempted = succeeded + self.n_failed
        return self.n_failed / attempted if attempted else 0.0


def heuristic_names(results: Iterable[GraphResult]) -> set[str]:
    """Union of heuristic names present across ``results``.

    Fault-tolerant runs may drop individual ``(graph, heuristic)`` pairs,
    so no single graph is guaranteed to carry every heuristic.
    """
    names: set[str] = set()
    for gr in results:
        names.update(gr.results)
    return names


@dataclass
class AggregateRow:
    """Aggregated measures for one heuristic over one class of graphs."""

    n_graphs: int = 0
    n_retarded: int = 0
    mean_speedup: float = 0.0
    mean_efficiency: float = 0.0
    mean_nrpt: float = 0.0
    mean_processors: float = 0.0


def aggregate(
    results: Iterable[GraphResult],
    key_fn: Callable[[GraphResult], Any],
    names: Sequence[str],
) -> dict[Any, dict[str, AggregateRow]]:
    """Group graph results by ``key_fn`` and average per heuristic.

    Returns ``{class key: {heuristic name: AggregateRow}}``.  Empty classes
    simply do not appear.  Graphs missing a heuristic (its evaluation
    failed under a fault-tolerant run) are skipped for that heuristic only,
    so per-heuristic sample counts within one class may differ; a heuristic
    with zero samples in a class yields NaN means.
    """
    sums: dict[Any, dict[str, list[float]]] = {}
    for gr in results:
        key = key_fn(gr)
        per = sums.setdefault(key, {n: [0, 0, 0.0, 0.0, 0.0, 0.0] for n in names})
        for name in names:
            if name not in gr.results:
                continue
            acc = per[name]
            acc[0] += 1
            acc[1] += 1 if gr.retarded(name) else 0
            acc[2] += gr.speedup(name)
            acc[3] += gr.efficiency(name)
            acc[4] += gr.nrpt(name)
            acc[5] += gr.results[name].n_processors
    nan = float("nan")
    out: dict[Any, dict[str, AggregateRow]] = {}
    for key, per in sums.items():
        out[key] = {}
        for name, (n, ret, sp, eff, nrpt, procs) in per.items():
            out[key][name] = AggregateRow(
                n_graphs=n,
                n_retarded=ret,
                mean_speedup=sp / n if n else nan,
                mean_efficiency=eff / n if n else nan,
                mean_nrpt=nrpt / n if n else nan,
                mean_processors=procs / n if n else nan,
            )
    return out
