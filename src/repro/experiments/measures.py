"""Per-graph and aggregate performance measures (paper section 4).

For every graph and heuristic the testbed records the *parallel time*
(schedule makespan) and the processors used, from which the paper's four
reported measures derive:

* ``speedup = serial time / parallel time``;
* ``efficiency = speedup / processors used``;
* ``normalized relative parallel time (NRPT) =
  parallel_time / best parallel time among the compared heuristics - 1``;
* the count of schedules with ``speedup < 1`` ("retardations").
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

__all__ = ["HeuristicResult", "GraphResult", "AggregateRow", "aggregate"]


@dataclass(frozen=True)
class HeuristicResult:
    """One heuristic's outcome on one graph."""

    parallel_time: float
    n_processors: int

    def speedup(self, serial_time: float) -> float:
        return serial_time / self.parallel_time

    def efficiency(self, serial_time: float) -> float:
        return self.speedup(serial_time) / self.n_processors


@dataclass(frozen=True)
class GraphResult:
    """All heuristics' outcomes on one classified graph."""

    graph_id: str
    band: int
    anchor: int
    weight_range: tuple[int, int]
    granularity: float
    serial_time: float
    results: dict[str, HeuristicResult] = field(default_factory=dict)

    @property
    def best_parallel_time(self) -> float:
        """Shortest schedule among the compared heuristics (paper's basis
        for relative parallel time)."""
        return min(r.parallel_time for r in self.results.values())

    def nrpt(self, name: str) -> float:
        """Normalized relative parallel time of heuristic ``name``."""
        return self.results[name].parallel_time / self.best_parallel_time - 1.0

    def speedup(self, name: str) -> float:
        return self.results[name].speedup(self.serial_time)

    def efficiency(self, name: str) -> float:
        return self.results[name].efficiency(self.serial_time)

    def retarded(self, name: str) -> bool:
        """True when the heuristic produced a schedule slower than serial."""
        return self.speedup(name) < 1.0 - 1e-12


@dataclass
class AggregateRow:
    """Aggregated measures for one heuristic over one class of graphs."""

    n_graphs: int = 0
    n_retarded: int = 0
    mean_speedup: float = 0.0
    mean_efficiency: float = 0.0
    mean_nrpt: float = 0.0
    mean_processors: float = 0.0


def aggregate(
    results: Iterable[GraphResult],
    key_fn: Callable[[GraphResult], Any],
    names: Sequence[str],
) -> dict[Any, dict[str, AggregateRow]]:
    """Group graph results by ``key_fn`` and average per heuristic.

    Returns ``{class key: {heuristic name: AggregateRow}}``.  Empty classes
    simply do not appear.
    """
    sums: dict[Any, dict[str, list[float]]] = {}
    for gr in results:
        key = key_fn(gr)
        per = sums.setdefault(key, {n: [0, 0, 0.0, 0.0, 0.0, 0.0] for n in names})
        for name in names:
            acc = per[name]
            acc[0] += 1
            acc[1] += 1 if gr.retarded(name) else 0
            acc[2] += gr.speedup(name)
            acc[3] += gr.efficiency(name)
            acc[4] += gr.nrpt(name)
            acc[5] += gr.results[name].n_processors
    out: dict[Any, dict[str, AggregateRow]] = {}
    for key, per in sums.items():
        out[key] = {}
        for name, (n, ret, sp, eff, nrpt, procs) in per.items():
            out[key][name] = AggregateRow(
                n_graphs=n,
                n_retarded=ret,
                mean_speedup=sp / n,
                mean_efficiency=eff / n,
                mean_nrpt=nrpt / n,
                mean_processors=procs / n,
            )
    return out
