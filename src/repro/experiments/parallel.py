"""Parallel suite execution over a process pool.

The testbed's workload is embarrassingly parallel — every suite graph is
scheduled independently — so :func:`run_suite_parallel` fans chunks of the
suite out to ``jobs`` worker processes with
:class:`concurrent.futures.ProcessPoolExecutor` and reassembles the results
**in suite order**, regardless of completion order.  Because every graph is
evaluated by the exact same code path as the serial runner
(:func:`repro.experiments.runner._graph_result_safe`) and the heuristics
are deterministic, a parallel run's results are identical to a serial
run's — ``bench_perf_suite.py`` enforces byte-identical serialized output
as its acceptance bound.  That identity extends to fault policies: the
same ``on_error``/``timeout``/``retries`` decisions are made inside the
workers, so the partial results and failure records of a degraded run
match the serial path too.

Fault tolerance on top of the worker-side policy:

* **parent watchdog** — when a per-call ``timeout`` is set and no chunk
  completes within a generous multiple of the worst legitimate chunk time
  (a C-level hang that ``SIGALRM`` cannot interrupt), the pool is torn
  down and the unfinished graphs are re-dispatched in isolation;
* **crash recovery** — a worker death (``BrokenProcessPool``) loses only
  the in-flight chunks: completed results are already merged, the pool is
  respawned, and the unfinished graphs are re-run one per dispatch on a
  single-worker pool so the culprit graph is identified with certainty
  and recorded as a ``crash`` failure while every innocent graph still
  completes.

Observability across the process boundary:

* each worker runs against its **own** fresh
  :class:`~repro.obs.metrics.MetricsRegistry`; its snapshot is returned with
  the chunk's results and merged into the parent registry, so per-heuristic
  timers and algorithm counters aggregate exactly as in a serial run;
* when the parent's tracer is enabled, workers record spans into their own
  tracer sharing the parent's epoch (``perf_counter`` is system-wide
  monotonic on the platforms we support) and the events are folded into the
  parent trace, tagged with the worker's real pid;
* ``progress`` callbacks fire in the parent as chunks complete, once per
  graph, with a monotonically increasing count — completion order may
  differ from suite order, but the final result list never does.

Graceful degradation: ``jobs=1``, a 0/1-graph suite, or schedulers that
cannot be pickled (e.g. closures built in a test) use the serial path —
correctness first, parallelism when possible.  Checkpoint journals
(``checkpoint=path``) are written by the parent as chunks complete, so a
killed parallel campaign resumes exactly like a serial one.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeoutError,
    wait,
)
from time import perf_counter

from ..generation.suites import SuiteGraph
from ..obs.log import ProgressStats, get_logger
from ..obs.metrics import MetricsRegistry, get_registry, use_registry
from ..obs.telemetry import current_context, parse_traceparent, use_context
from ..obs.trace import Tracer, get_tracer, use_tracer
from ..schedulers.base import Scheduler, paper_schedulers
from .faults import FailureRecord, FaultPolicy, WorkerCrashError
from .measures import GraphResult, SuiteResult

__all__ = ["run_suite_parallel", "resolve_jobs", "default_chunk_size"]


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None`` means all available CPUs.

    Raises ``ValueError`` for anything below 1.
    """
    if jobs is None:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # platforms without sched_getaffinity
            return max(1, os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def default_chunk_size(n_graphs: int, jobs: int) -> int:
    """Graphs per dispatched chunk.

    Aim for ~4 chunks per worker (amortizes pickling without starving the
    pool near the end of the suite), capped so progress stays responsive.
    """
    return max(1, min(32, -(-n_graphs // (jobs * 4))))


def _picklable(obj: object) -> bool:
    try:
        pickle.dumps(obj)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        get_logger("parallel").debug(
            "object %r is not picklable: %s: %s", type(obj).__name__, type(exc).__name__, exc
        )
        return False
    return True


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when its workers are hung or dead.

    ``shutdown(wait=True)`` would block forever on a wedged worker, so the
    worker processes are terminated directly (via the executor's process
    table) after a non-blocking shutdown.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
    for proc in processes:
        proc.join(timeout=5.0)


def _run_chunk(
    chunk: list[SuiteGraph],
    schedulers: Sequence[Scheduler],
    validate: bool,
    seed: int | None,
    trace_enabled: bool,
    trace_epoch: float,
    policy: FaultPolicy | None,
    traceparent: str | None = None,
) -> tuple[list, list, dict, list[dict]]:
    """Worker entry: evaluate one chunk against fresh obs sinks.

    Returns ``(results, failures, metrics snapshot, trace events)`` —
    results for graphs where at least one heuristic succeeded, failure
    records for every absorbed ``(graph, heuristic)`` failure.  When the
    parent passes a ``traceparent``, a child context is activated for the
    chunk so every worker span (graph, schedule, compile) carries the
    campaign's trace id.

    When the batch layer is enabled the whole chunk is pre-analyzed in one
    vectorized pass (:func:`~repro.core.batch.batch_analyze`) before the
    per-graph loop — the compile/level work lands under the worker's own
    obs sinks and the loop then runs on primed memos, byte-identically.
    """
    from ..core.batch import batch_analyze, batch_enabled
    from .runner import _graph_result_safe

    registry = MetricsRegistry()
    tracer = Tracer(enabled=trace_enabled)
    tracer._epoch = trace_epoch  # align worker span timestamps with parent
    parent_ctx = parse_traceparent(traceparent)
    ctx = parent_ctx.child() if parent_ctx is not None else None
    results = []
    failures: list[FailureRecord] = []
    with use_registry(registry), use_tracer(tracer), use_context(ctx):
        if batch_enabled():
            report = batch_analyze([sg.graph for sg in chunk])
            for pos in report.skipped:
                get_logger("parallel").warning(
                    "batch pre-analysis skipped cyclic graph %s; "
                    "the per-graph path will raise",
                    chunk[pos].graph_id,
                )
        for sg in chunk:
            gr, frs = _graph_result_safe(
                sg,
                schedulers,
                validate=validate,
                seed=seed,
                tracer=tracer,
                policy=policy,
            )
            if gr is not None:
                results.append(gr)
            failures.extend(frs)
    events = tracer.events
    if events:
        pid = os.getpid()
        for event in events:
            event["pid"] = pid
    return results, failures, registry.snapshot(), events


def run_suite_parallel(
    suite: Iterable[SuiteGraph],
    schedulers: Sequence[Scheduler] | None = None,
    *,
    validate: bool = False,
    progress: Callable | None = None,
    seed: int | None = None,
    jobs: int | None = None,
    chunk_size: int | None = None,
    on_error: str = "raise",
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.05,
    checkpoint=None,
) -> SuiteResult:
    """Evaluate the suite on ``jobs`` worker processes.

    Same contract as :func:`repro.experiments.runner.run_suite` (which
    delegates here for ``jobs != 1``), fault-tolerance parameters
    included: returns one
    :class:`~repro.experiments.measures.GraphResult` per surviving suite
    graph, in suite order, identical to what the serial path produces.
    """
    from .runner import _make_policy, _ProgressGuard, run_suite

    suite = list(suite)
    if schedulers is None:
        schedulers = paper_schedulers()
    policy = _make_policy(on_error, timeout, retries, backoff)
    jobs = resolve_jobs(jobs)
    log = get_logger("parallel")

    def _serial() -> SuiteResult:
        return run_suite(
            suite,
            schedulers,
            validate=validate,
            progress=progress,
            seed=seed,
            jobs=1,
            on_error=on_error,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            checkpoint=checkpoint,
        )

    journal = None
    completed: dict[str, GraphResult | None] = {}
    replayed: list[FailureRecord] = []
    if checkpoint is not None:
        from .persistence import CheckpointJournal

        journal = CheckpointJournal(checkpoint)
        completed, replayed = journal.load_completed([s.name for s in schedulers])

    remaining = [sg for sg in suite if sg.graph_id not in completed]
    jobs = min(jobs, max(1, len(remaining)))
    if jobs == 1 or len(remaining) <= 1:
        return _serial()
    if not (_picklable(list(schedulers)) and _picklable(remaining[0])):
        log.warning(
            "schedulers or suite graphs are not picklable; "
            "falling back to serial execution"
        )
        return _serial()

    tracer = get_tracer()
    registry = get_registry()
    total = len(suite)
    size = chunk_size if chunk_size else default_chunk_size(len(remaining), jobs)
    chunks = [remaining[i : i + size] for i in range(0, len(remaining), size)]
    keep_records = policy is not None and policy.keeps_records
    isolating = policy is not None and policy.isolates

    results_by_id: dict[str, GraphResult] = {
        gid: gr for gid, gr in completed.items() if gr is not None
    }
    failures: list[FailureRecord] = list(replayed)
    n_failed = len(replayed)
    guard = _ProgressGuard(progress) if progress is not None else None
    start = perf_counter()
    done_count = 0

    def _fire_progress(gr: GraphResult) -> None:
        nonlocal done_count
        done_count += 1
        if guard is None:
            return
        stats = None
        if guard.wants_stats:
            elapsed = perf_counter() - start
            stats = ProgressStats(
                done=done_count,
                total=total,
                elapsed=elapsed,
                rate=done_count / elapsed if elapsed > 0 else 0.0,
            )
        guard(done_count, gr, stats)

    # Resumed graphs count as completed work of this run: surface them to
    # the progress callback (in suite order) before dispatching the rest.
    for sg in suite:
        if completed.get(sg.graph_id) is not None:
            _fire_progress(completed[sg.graph_id])

    def _handle_payload(
        chunk_results: list, chunk_failures: list, snapshot: dict, events: list
    ) -> None:
        nonlocal n_failed
        registry.merge(snapshot)
        if events:
            tracer.events.extend(events)
        n_failed += len(chunk_failures)
        if keep_records:
            failures.extend(chunk_failures)
        by_graph: dict[str, list[FailureRecord]] = {}
        for fr in chunk_failures:
            by_graph.setdefault(fr.graph_id, []).append(fr)
        journaled = set()
        for gr in chunk_results:
            results_by_id[gr.graph_id] = gr
            if journal is not None:
                journal.append(gr, by_graph.get(gr.graph_id, ()))
            journaled.add(gr.graph_id)
            _fire_progress(gr)
        if journal is not None:
            for gid, frs in by_graph.items():
                if gid not in journaled:  # every heuristic failed
                    journal.append(None, frs)

    def _graph_level_failure(sg: SuiteGraph, kind: str, message: str) -> None:
        """Record a whole-graph failure attributed by the parent (worker
        crash, or a hang that worker-side SIGALRM could not interrupt)."""
        nonlocal n_failed
        n_failed += 1
        registry.inc("suite.failures")
        registry.inc(f"suite.failures.*.{kind}")
        if kind == "timeout":
            registry.inc("suite.quarantined")
        fr = FailureRecord(
            graph_id=sg.graph_id,
            heuristic=None,
            kind=kind,
            exc_type="WorkerCrashError" if kind == "crash" else "GraphTimeoutError",
            message=message,
            seed=seed,
        )
        if keep_records:
            failures.append(fr)
        if journal is not None:
            journal.append(None, [fr])

    ctx = current_context()
    worker_args = (
        schedulers,
        validate,
        seed,
        tracer.enabled,
        tracer._epoch,
        policy,
        ctx.to_traceparent() if ctx is not None else None,
    )

    # Worst legitimate wall time for one chunk: per-call budget × possible
    # retry × heuristics × graphs, padded.  Only armed when a timeout is
    # configured; the watchdog is the backstop for hangs SIGALRM can't
    # interrupt (C extensions, non-main-thread platforms).
    watchdog = None
    if policy is not None and policy.timeout is not None:
        watchdog = policy.timeout * 2 * max(1, len(schedulers)) * size + 10.0

    leftovers: list[SuiteGraph] = []
    pool = ProcessPoolExecutor(max_workers=jobs)
    pending: dict = {}
    try:
        for i, chunk in enumerate(chunks):
            try:
                pending[pool.submit(_run_chunk, chunk, *worker_args)] = chunk
            except BrokenExecutor as exc:
                # A worker can die (os._exit, OOM kill) while the parent is
                # still submitting; submit() then raises directly, outside
                # the future.result() handling below.
                if not isolating:
                    raise WorkerCrashError(
                        "a worker process died while the suite was being "
                        f"dispatched (chunk of {len(chunk)} graph(s) lost)"
                    ) from exc
                log.warning(
                    "worker pool broke during dispatch (%s); isolating "
                    "%d unsubmitted chunk(s)",
                    type(exc).__name__,
                    len(chunks) - i,
                )
                leftovers = [
                    sg
                    for c in [*pending.values(), *chunks[i:]]
                    for sg in c
                ]
                pending.clear()
                break
        while pending:
            done, _ = wait(pending.keys(), timeout=watchdog, return_when=FIRST_COMPLETED)
            if not done:
                # Watchdog expiry with nothing finished: the pool is wedged.
                if not any(f.running() for f in pending):
                    continue  # nothing started yet; keep waiting
                registry.inc("suite.watchdog.trips")
                if not isolating:
                    raise WorkerCrashError(
                        f"no chunk completed within the {watchdog:.0f}s "
                        "watchdog budget; worker pool is wedged"
                    )
                log.warning(
                    "watchdog: no chunk completed in %.0fs; "
                    "tearing the pool down and isolating %d chunk(s)",
                    watchdog,
                    len(pending),
                )
                leftovers = [sg for chunk in pending.values() for sg in chunk]
                pending.clear()
                break
            broken = False
            for future in done:
                chunk = pending.pop(future)
                try:
                    payload = future.result()
                except BrokenExecutor as exc:
                    if not isolating:
                        raise WorkerCrashError(
                            "a worker process died while evaluating the suite "
                            f"(chunk of {len(chunk)} graph(s) lost)"
                        ) from exc
                    log.warning(
                        "worker pool broke (%s); isolating %d unfinished graph(s)",
                        type(exc).__name__,
                        sum(len(c) for c in [chunk, *pending.values()]),
                    )
                    leftovers = [sg for c in [chunk, *pending.values()] for sg in c]
                    pending.clear()
                    broken = True
                    break
                _handle_payload(*payload)
            if broken:
                break
    except BaseException:
        _terminate_pool(pool)
        raise
    if leftovers:
        _terminate_pool(pool)
    else:
        pool.shutdown()

    if leftovers:
        # Isolation mode: one graph per dispatch on a single-worker pool,
        # so a crash or hard hang is attributed to exactly one graph while
        # every innocent graph still completes.
        iso_budget = None
        if policy is not None and policy.timeout is not None:
            iso_budget = policy.timeout * 2 * max(1, len(schedulers)) + 5.0
        iso = ProcessPoolExecutor(max_workers=1)
        registry.inc("suite.pool_respawns")
        try:
            for sg in leftovers:
                future = iso.submit(_run_chunk, [sg], *worker_args)
                try:
                    payload = future.result(timeout=iso_budget)
                except FuturesTimeoutError:
                    _terminate_pool(iso)
                    iso = ProcessPoolExecutor(max_workers=1)
                    registry.inc("suite.pool_respawns")
                    _graph_level_failure(
                        sg,
                        "timeout",
                        f"graph exceeded the isolated-mode budget "
                        f"({iso_budget:.1f}s) after a pool watchdog trip",
                    )
                    continue
                except BrokenExecutor:
                    _terminate_pool(iso)
                    iso = ProcessPoolExecutor(max_workers=1)
                    registry.inc("suite.pool_respawns")
                    _graph_level_failure(
                        sg,
                        "crash",
                        "worker process died while evaluating this graph",
                    )
                    continue
                _handle_payload(*payload)
        finally:
            _terminate_pool(iso)

    ordered = SuiteResult(
        (
            results_by_id[sg.graph_id]
            for sg in suite
            if sg.graph_id in results_by_id
        ),
        n_failed=n_failed,
    )
    if keep_records:
        # Deterministic failure order: suite position, then scheduler
        # position (graph-level records first) — matches the serial path.
        suite_index = {sg.graph_id: i for i, sg in enumerate(suite)}
        sched_index = {s.name: i for i, s in enumerate(schedulers)}
        failures.sort(
            key=lambda fr: (
                suite_index.get(fr.graph_id, len(suite)),
                -1 if fr.heuristic is None else sched_index.get(fr.heuristic, len(sched_index)),
            )
        )
        ordered.failures = failures
    registry.inc("suite.graphs", len(ordered))
    registry.inc("suite.parallel.runs")
    registry.inc("suite.parallel.chunks", len(chunks))
    registry.observe("suite.parallel.jobs", jobs)
    if completed:
        registry.inc("suite.checkpoint.resumed", len(completed))
    return ordered
