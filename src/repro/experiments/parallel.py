"""Parallel suite execution over a process pool.

The testbed's workload is embarrassingly parallel — every suite graph is
scheduled independently — so :func:`run_suite_parallel` fans chunks of the
suite out to ``jobs`` worker processes with
:class:`concurrent.futures.ProcessPoolExecutor` and reassembles the results
**in suite order**, regardless of completion order.  Because every graph is
evaluated by the exact same code path as the serial runner
(:func:`repro.experiments.runner._graph_result`) and the heuristics are
deterministic, a parallel run's results are identical to a serial run's —
``bench_perf_suite.py`` enforces byte-identical serialized output as its
acceptance bound.

Observability across the process boundary:

* each worker runs against its **own** fresh
  :class:`~repro.obs.metrics.MetricsRegistry`; its snapshot is returned with
  the chunk's results and merged into the parent registry, so per-heuristic
  timers and algorithm counters aggregate exactly as in a serial run;
* when the parent's tracer is enabled, workers record spans into their own
  tracer sharing the parent's epoch (``perf_counter`` is system-wide
  monotonic on the platforms we support) and the events are folded into the
  parent trace, tagged with the worker's real pid;
* ``progress`` callbacks fire in the parent as chunks complete, once per
  graph, with a monotonically increasing count — completion order may
  differ from suite order, but the final result list never does.

Graceful degradation: ``jobs=1``, a 0/1-graph suite, or schedulers that
cannot be pickled (e.g. closures built in a test) silently use the serial
path — correctness first, parallelism when possible.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from time import perf_counter

from ..generation.suites import SuiteGraph
from ..obs.log import ProgressStats, get_logger
from ..obs.metrics import MetricsRegistry, get_registry, use_registry
from ..obs.trace import Tracer, get_tracer, use_tracer
from ..schedulers.base import Scheduler, paper_schedulers

__all__ = ["run_suite_parallel", "resolve_jobs", "default_chunk_size"]


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None`` means all available CPUs.

    Raises ``ValueError`` for anything below 1.
    """
    if jobs is None:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # platforms without sched_getaffinity
            return max(1, os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def default_chunk_size(n_graphs: int, jobs: int) -> int:
    """Graphs per dispatched chunk.

    Aim for ~4 chunks per worker (amortizes pickling without starving the
    pool near the end of the suite), capped so progress stays responsive.
    """
    return max(1, min(32, -(-n_graphs // (jobs * 4))))


def _picklable(obj: object) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


def _run_chunk(
    chunk_index: int,
    chunk: list[SuiteGraph],
    schedulers: Sequence[Scheduler],
    validate: bool,
    seed: int | None,
    trace_enabled: bool,
    trace_epoch: float,
) -> tuple[int, list, dict, list[dict]]:
    """Worker entry: evaluate one chunk against fresh obs sinks."""
    from .runner import _graph_result

    registry = MetricsRegistry()
    tracer = Tracer(enabled=trace_enabled)
    tracer._epoch = trace_epoch  # align worker span timestamps with parent
    results = []
    with use_registry(registry), use_tracer(tracer):
        for sg in chunk:
            results.append(
                _graph_result(
                    sg, schedulers, validate=validate, seed=seed, tracer=tracer
                )
            )
    events = tracer.events
    if events:
        pid = os.getpid()
        for event in events:
            event["pid"] = pid
    return chunk_index, results, registry.snapshot(), events


def run_suite_parallel(
    suite: Iterable[SuiteGraph],
    schedulers: Sequence[Scheduler] | None = None,
    *,
    validate: bool = False,
    progress: Callable | None = None,
    seed: int | None = None,
    jobs: int | None = None,
    chunk_size: int | None = None,
) -> list:
    """Evaluate the suite on ``jobs`` worker processes.

    Same contract as :func:`repro.experiments.runner.run_suite` (which
    delegates here for ``jobs != 1``): returns one
    :class:`~repro.experiments.measures.GraphResult` per suite graph, in
    suite order, identical to what the serial path produces.
    """
    from .runner import _accepts_stats, run_suite

    suite = list(suite)
    if schedulers is None:
        schedulers = paper_schedulers()
    jobs = resolve_jobs(jobs)
    jobs = min(jobs, max(1, len(suite)))
    if jobs == 1:
        return run_suite(
            suite,
            schedulers,
            validate=validate,
            progress=progress,
            seed=seed,
            jobs=1,
        )
    if not (_picklable(list(schedulers)) and _picklable(suite[0])):
        get_logger("parallel").warning(
            "schedulers or suite graphs are not picklable; "
            "falling back to serial execution"
        )
        return run_suite(
            suite,
            schedulers,
            validate=validate,
            progress=progress,
            seed=seed,
            jobs=1,
        )

    tracer = get_tracer()
    registry = get_registry()
    total = len(suite)
    size = chunk_size if chunk_size else default_chunk_size(total, jobs)
    chunks = [suite[i : i + size] for i in range(0, total, size)]
    per_chunk: list[list | None] = [None] * len(chunks)
    with_stats = progress is not None and _accepts_stats(progress)
    start = perf_counter()
    done = 0
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(
                _run_chunk,
                i,
                chunk,
                schedulers,
                validate,
                seed,
                tracer.enabled,
                tracer._epoch,
            )
            for i, chunk in enumerate(chunks)
        ]
        for future in as_completed(futures):
            index, results, snapshot, events = future.result()
            per_chunk[index] = results
            registry.merge(snapshot)
            if events:
                tracer.events.extend(events)
            if progress is not None:
                for gr in results:
                    done += 1
                    if with_stats:
                        elapsed = perf_counter() - start
                        progress(
                            done,
                            gr,
                            ProgressStats(
                                done=done,
                                total=total,
                                elapsed=elapsed,
                                rate=done / elapsed if elapsed > 0 else 0.0,
                            ),
                        )
                    else:
                        progress(done, gr)
            else:
                done += len(results)

    ordered = [gr for chunk in per_chunk for gr in chunk]  # type: ignore[union-attr]
    registry.inc("suite.graphs", len(ordered))
    registry.inc("suite.parallel.runs")
    registry.inc("suite.parallel.chunks", len(chunks))
    registry.observe("suite.parallel.jobs", jobs)
    return ordered
