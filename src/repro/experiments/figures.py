"""Regeneration of the paper's Figures 1–6.

Every figure in the paper plots one of the tables:

* Figure 1 — Table 3 (average relative parallel time vs granularity)
* Figure 2 — Table 4 (average speedup vs granularity)
* Figure 3 — Table 5 (average efficiency vs granularity)
* Figure 4 — Table 7 (average relative parallel time vs node weight range)
* Figure 5 — Table 8 (average speedup vs node weight range)
* Figure 6 — Table 9 (average efficiency vs node weight range)

Each ``figureN`` returns a :class:`FigureData` with the plotted per-heuristic
series; :meth:`FigureData.to_text` renders an ASCII chart so curve shapes
(who is on top, where lines converge) can be compared with the paper.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from .measures import GraphResult
from .reporting import ResultTable, ascii_chart
from .tables import table3, table4, table5, table7, table8, table9

__all__ = ["FigureData", "figure1", "figure2", "figure3", "figure4", "figure5", "figure6", "ALL_FIGURES"]


@dataclass
class FigureData:
    """One figure's plotted series: ``series[heuristic][i]`` at ``x_labels[i]``."""

    title: str
    x_axis: str
    y_axis: str
    x_labels: list[str]
    series: dict[str, list[float]]

    def to_text(self, *, height: int = 12) -> str:
        chart = ascii_chart(
            f"{self.title}   (y: {self.y_axis})",
            self.x_labels,
            self.series,
            height=height,
        )
        return chart

    def to_csv(self) -> str:
        names = list(self.series)
        lines = [",".join([self.x_axis, *names])]
        for i, x in enumerate(self.x_labels):
            lines.append(",".join([x, *(repr(self.series[n][i]) for n in names)]))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()


def _from_table(table: ResultTable, *, title: str, x_axis: str, y_axis: str) -> FigureData:
    return FigureData(
        title=title,
        x_axis=x_axis,
        y_axis=y_axis,
        x_labels=[label for label, _ in table.rows],
        series={name: table.column(name) for name in table.col_labels},
    )


def figure1(results: Sequence[GraphResult]) -> FigureData:
    """Average relative parallel time vs granularity (plots Table 3)."""
    return _from_table(
        table3(results),
        title="Figure 1: average relative parallel time vs granularity",
        x_axis="granularity",
        y_axis="avg normalized relative parallel time",
    )


def figure2(results: Sequence[GraphResult]) -> FigureData:
    """Average speedup vs granularity (plots Table 4)."""
    return _from_table(
        table4(results),
        title="Figure 2: speedup increases with granularity",
        x_axis="granularity",
        y_axis="avg speedup",
    )


def figure3(results: Sequence[GraphResult]) -> FigureData:
    """Average efficiency vs granularity (plots Table 5)."""
    return _from_table(
        table5(results),
        title="Figure 3: average efficiency vs granularity",
        x_axis="granularity",
        y_axis="avg efficiency",
    )


def figure4(results: Sequence[GraphResult]) -> FigureData:
    """Average relative parallel time vs node weight range (plots Table 7)."""
    return _from_table(
        table7(results),
        title="Figure 4: average relative parallel time vs node weight range",
        x_axis="node weight range",
        y_axis="avg normalized relative parallel time",
    )


def figure5(results: Sequence[GraphResult]) -> FigureData:
    """Average speedup vs node weight range (plots Table 8)."""
    return _from_table(
        table8(results),
        title="Figure 5: average speedup vs node weight range",
        x_axis="node weight range",
        y_axis="avg speedup",
    )


def figure6(results: Sequence[GraphResult]) -> FigureData:
    """Average efficiency vs node weight range (plots Table 9)."""
    return _from_table(
        table9(results),
        title="Figure 6: average efficiency vs node weight range",
        x_axis="node weight range",
        y_axis="avg efficiency",
    )


ALL_FIGURES = {
    1: figure1,
    2: figure2,
    3: figure3,
    4: figure4,
    5: figure5,
    6: figure6,
}
