"""Perf-trajectory tracker: a ledger of benchmark baselines across PRs.

Every performance benchmark in ``benchmarks/`` writes a ``BENCH_*.json``
baseline; this module turns those point-in-time files into a *trajectory*:

* :func:`collect_metrics` ingests every ``BENCH_*.json`` it can find and
  extracts the **tracked metrics** — the handful of numbers the repo has
  promised not to regress (kernel speedups, parallel-suite speedup,
  service throughput, batching effectiveness, disabled-telemetry
  overhead);
* ``repro bench track`` appends one entry per PR to ``BENCH_history.jsonl``
  at the repo root (newest last, append-only — the file *is* the
  trajectory);
* ``repro bench track --check`` compares freshly measured values against
  the last recorded entry and **fails with a readable delta report** when
  a tracked metric regresses beyond its tolerance.  CI's perf-smoke runs
  this after the quick benchmarks, so a regression shows up as a red
  check with the offending metric named, not as a slow drift nobody
  notices.

Tolerances are deliberately loose (benchmarks run on shared CI machines)
and per-metric: ratios like speedup get a relative band, count-like
metrics (index-cache misses) get an absolute one, and the overhead
percentages — which hover around zero and go negative — get a purely
absolute band.  ``--tolerance`` scales all of them for machines noisier
than CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

__all__ = [
    "TRACKED",
    "TrackedMetric",
    "Delta",
    "collect_metrics",
    "load_history",
    "append_entry",
    "compare",
    "format_report",
    "run_track",
]

#: Ledger file name (repo root), one JSON entry per line, newest last.
HISTORY_NAME = "BENCH_history.jsonl"


@dataclass(frozen=True)
class TrackedMetric:
    """One number the repo promises not to regress.

    ``path`` addresses into the baseline JSON with ``/`` separators
    (metric names contain dots); integer segments index lists, negative
    ones from the end.  ``direction`` says which way is good.  A value is
    a regression when it falls outside ``baseline ± (rel_tol·|baseline| +
    abs_tol)`` on the bad side.
    """

    file: str  # BENCH_*.json file name
    path: str  # /-separated path into the JSON
    direction: str  # "higher" or "lower" is better
    rel_tol: float = 0.0
    abs_tol: float = 0.0

    @property
    def key(self) -> str:
        return f"{self.file.removeprefix('BENCH_').removesuffix('.json')}:{self.path}"


#: The tracked metrics and their tolerances.  Kernel/suite speedups and
#: service throughput are ratios measured on shared machines → wide
#: relative bands; cache-miss counts are near-deterministic → absolute;
#: overhead percentages hover near zero → absolute only.
TRACKED: tuple[TrackedMetric, ...] = (
    TrackedMetric("BENCH_kernels.json", "levels/speedup", "higher", rel_tol=0.35),
    TrackedMetric("BENCH_kernels.json", "simulator/speedup", "higher", rel_tol=0.35),
    TrackedMetric("BENCH_kernels.json", "end_to_end/speedup", "higher", rel_tol=0.35),
    TrackedMetric("BENCH_batch.json", "levels/speedup", "higher", rel_tol=0.35),
    TrackedMetric("BENCH_batch.json", "classify/speedup", "higher", rel_tol=0.35),
    # The batched end-to-end ratio hovers near 1 (levels are a small slice
    # of suite wall time) — the band is absolute, guarding "batching slowed
    # the suite down", not a speedup promise.
    TrackedMetric("BENCH_batch.json", "end_to_end/speedup", "higher", abs_tol=0.25),
    TrackedMetric("BENCH_perf_suite.json", "speedup", "higher", rel_tol=0.35),
    TrackedMetric(
        "BENCH_service.json", "rate_ladder/-1/throughput_rps", "higher", rel_tol=0.40
    ),
    TrackedMetric(
        "BENCH_service.json", "batching/index_cache_misses", "lower", abs_tol=4.0
    ),
    # Sharded-tier throughput is the most machine-sensitive number tracked
    # (it multiplies the service band by process-scheduling noise) → the
    # widest relative band.
    TrackedMetric(
        "BENCH_service.json", "sharded/throughput_rps", "higher", rel_tol=0.40
    ),
    # Overhead is in percentage points and clamps at 0 — the band is the
    # tier-1 bound itself (5 points), purely absolute.
    TrackedMetric(
        "BENCH_observability.json",
        "metrics/histograms/bench.obs_overhead_pct.DSC/mean",
        "lower",
        abs_tol=5.0,
    ),
    TrackedMetric(
        "BENCH_observability.json",
        "metrics/histograms/bench.obs_overhead_pct.MCP/mean",
        "lower",
        abs_tol=5.0,
    ),
    # Campaign throughput rides on a chaos scenario (a SIGKILLed worker,
    # a coordinator restart, per-unit IPC) so the band is wide; the
    # signal tracked is "resume didn't get pathologically slower".
    TrackedMetric(
        "BENCH_campaign.json", "campaign/units_per_s", "higher", rel_tol=0.50
    ),
    # Adversarial-search throughput (batch-fanned candidate scoring) is a
    # wall-clock rate on shared machines → wide relative band.  best_gap,
    # by contrast, is fully deterministic (seeded search over seeded
    # generation, resolved ops) — the band is a rounding allowance only,
    # so any real behavior change in the ops/search/schedulers trips it.
    TrackedMetric(
        "BENCH_adversarial.json", "adversarial/steps_per_s", "higher", rel_tol=0.50
    ),
    TrackedMetric(
        "BENCH_adversarial.json", "adversarial/best_gap", "higher", abs_tol=1e-9
    ),
)


def _dig(obj: Any, path: str) -> Any:
    """Follow a ``/``-separated path; ``None`` when any hop is missing."""
    for part in path.split("/"):
        if isinstance(obj, list):
            try:
                obj = obj[int(part)]
            except (ValueError, IndexError):
                return None
        elif isinstance(obj, dict):
            obj = obj.get(part)
        else:
            return None
        if obj is None:
            return None
    return obj


def collect_metrics(
    search_dirs: "list[Path]", tracked: tuple[TrackedMetric, ...] = TRACKED
) -> tuple[dict[str, float], list[str]]:
    """Extract every tracked metric from the first directory (in order)
    holding its baseline file.

    Returns ``(metrics, notes)`` — notes name baselines that were absent
    or did not contain the tracked path, so coverage gaps are visible in
    the report rather than silently shrinking the ledger.
    """
    metrics: dict[str, float] = {}
    notes: list[str] = []
    for tm in tracked:
        source = None
        for d in search_dirs:
            candidate = d / tm.file
            if candidate.is_file():
                source = candidate
                break
        if source is None:
            notes.append(f"{tm.file}: not found (skipping {tm.key})")
            continue
        try:
            payload = json.loads(source.read_text())
        except (OSError, ValueError) as exc:
            notes.append(f"{source}: unreadable ({exc}); skipping {tm.key}")
            continue
        value = _dig(payload, tm.path)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            notes.append(f"{source}: no numeric value at {tm.path!r}")
            continue
        metrics[tm.key] = float(value)
    return metrics, notes


def load_history(path: Path) -> list[dict]:
    """All ledger entries, oldest first; tolerates a truncated last line
    (a killed append must not poison the trajectory)."""
    if not path.is_file():
        return []
    entries: list[dict] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            continue
        if isinstance(obj, dict) and isinstance(obj.get("metrics"), dict):
            entries.append(obj)
    return entries


def append_entry(
    path: Path, metrics: dict[str, float], *, label: str | None = None
) -> dict:
    """Append one ledger entry (and return it)."""
    entry = {
        "label": label or "untitled",
        "recorded": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "metrics": metrics,
    }
    with path.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


@dataclass(frozen=True)
class Delta:
    """One tracked metric's movement against the last ledger entry."""

    metric: TrackedMetric
    baseline: float | None
    current: float | None
    regressed: bool

    def describe(self) -> str:
        tm = self.metric
        if self.current is None:
            return f"  ~ {tm.key}: not measured this run"
        if self.baseline is None:
            return f"  + {tm.key}: {self.current:.4g} (new metric, no baseline)"
        delta = self.current - self.baseline
        rel = f", {delta / self.baseline * 100.0:+.1f}%" if self.baseline else ""
        arrow = "REGRESSED" if self.regressed else "ok"
        return (
            f"  {'!' if self.regressed else ' '} {tm.key}: "
            f"{self.baseline:.4g} -> {self.current:.4g} "
            f"({delta:+.4g}{rel}) [{tm.direction} is better] {arrow}"
        )


def compare(
    current: dict[str, float],
    baseline: dict[str, float],
    *,
    tracked: tuple[TrackedMetric, ...] = TRACKED,
    tolerance_scale: float = 1.0,
) -> list[Delta]:
    """Judge each tracked metric; a missing current or baseline value is
    reported but never counted as a regression."""
    deltas: list[Delta] = []
    for tm in tracked:
        cur = current.get(tm.key)
        base = baseline.get(tm.key)
        regressed = False
        if cur is not None and base is not None:
            band = tm.rel_tol * tolerance_scale * abs(base) + tm.abs_tol * tolerance_scale
            if tm.direction == "higher":
                regressed = cur < base - band
            else:
                regressed = cur > base + band
        deltas.append(Delta(tm, base, cur, regressed))
    return deltas


def format_report(
    deltas: list[Delta], notes: list[str], *, baseline_label: str | None
) -> str:
    """The human-readable trajectory report: one line per tracked metric
    (baseline -> current, delta, verdict) plus coverage notes."""
    lines = ["perf trajectory vs " + (baseline_label or "(no recorded baseline)")]
    lines.extend(d.describe() for d in deltas)
    lines.extend(f"  ~ {note}" for note in notes)
    n_bad = sum(d.regressed for d in deltas)
    lines.append(
        f"{n_bad} regression(s) in {sum(d.current is not None for d in deltas)} "
        f"measured metric(s)"
        if n_bad
        else "no tracked metric regressed"
    )
    return "\n".join(lines)


def run_track(
    *,
    root: "Path | str" = ".",
    check: bool = False,
    tolerance_scale: float = 1.0,
    label: str | None = None,
) -> int:
    """The ``repro bench track`` entry point.

    Reads current values from ``benchmarks/out/`` (fresh runs) falling
    back to the committed repo-root baselines; compares against the last
    ``BENCH_history.jsonl`` entry.  ``--check`` only reports (exit 1 on
    regression); without it the measured values are appended to the
    ledger (exit 0).
    """
    root = Path(root)
    current, notes = collect_metrics([root / "benchmarks" / "out", root])
    history_path = root / HISTORY_NAME
    history = load_history(history_path)
    baseline_entry = history[-1] if history else None
    baseline = dict(baseline_entry["metrics"]) if baseline_entry else {}
    baseline_label = (
        f"{baseline_entry.get('label')} ({baseline_entry.get('recorded')})"
        if baseline_entry
        else None
    )
    deltas = compare(current, baseline, tolerance_scale=tolerance_scale)
    print(format_report(deltas, notes, baseline_label=baseline_label))
    regressed = any(d.regressed for d in deltas)
    if check:
        return 1 if regressed else 0
    if not current:
        print(f"nothing to record: no tracked BENCH_*.json found under {root}")
        return 1
    entry = append_entry(history_path, current, label=label)
    print(f"recorded {len(current)} metric(s) to {history_path} as {entry['label']!r}")
    return 0
