"""Regeneration of the paper's Tables 1–11.

Each ``tableN`` function takes the list of
:class:`~repro.experiments.measures.GraphResult` records produced by
:func:`~repro.experiments.runner.run_suite` and returns a
:class:`~repro.experiments.reporting.ResultTable` with the same rows and
columns as the paper:

* Tables 2–5: granularity-band rows (the section 4.1 analysis),
* Tables 6–9: node-weight-range rows (section 4.2),
* Tables 10–11: anchor out-degree rows (section 4.3),

covering the measures retardation count / NRPT / speedup / efficiency.
Table 1 summarizes the suite composition itself.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.metrics import GRANULARITY_BANDS
from ..generation.suites import (
    PAPER_ANCHORS,
    band_label,
    weight_range_label,
)
from .measures import AggregateRow, GraphResult, aggregate, heuristic_names
from .runner import PAPER_HEURISTIC_ORDER
from .reporting import ResultTable

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
    "table_processors",
    "ALL_TABLES",
]


def _names(results: Sequence[GraphResult]) -> list[str]:
    # Union across all graphs: under a fault-tolerant run no single graph
    # is guaranteed to carry every heuristic.
    present = heuristic_names(results)
    ordered = [n for n in PAPER_HEURISTIC_ORDER if n in present]
    ordered += sorted(present - set(ordered))
    return ordered


def _is_partial(results: Sequence[GraphResult]) -> bool:
    """Whether failures removed evaluations from ``results``.

    True for a :class:`~repro.experiments.measures.SuiteResult` with
    recorded/counted failures, or when any graph is missing a heuristic
    that others carry (e.g. partial results loaded from disk).
    """
    if getattr(results, "n_failed", 0):
        return True
    names = heuristic_names(results)
    return any(set(gr.results) != names for gr in results)


def _measure_table(
    results: Sequence[GraphResult],
    *,
    title: str,
    group: str,
    measure: str,
    fmt: str = "{:.2f}",
) -> ResultTable:
    """Shared builder: rows = classes of ``group``, cells = ``measure``."""
    if not results:
        raise ValueError("no results to tabulate")
    names = _names(results)
    if group == "band":
        keys = list(range(len(GRANULARITY_BANDS)))
        key_fn = lambda gr: gr.band
        labels = [band_label(b) for b in keys]
        header = "Granularity"
    elif group == "weight_range":
        keys = sorted({gr.weight_range for gr in results})
        key_fn = lambda gr: gr.weight_range
        labels = [weight_range_label(w) for w in keys]
        header = "Node Weight Range"
    elif group == "anchor":
        keys = sorted({gr.anchor for gr in results})
        key_fn = lambda gr: gr.anchor
        labels = [f"A = {a}" for a in keys]
        header = "Anchor"
    else:
        raise ValueError(f"unknown grouping {group!r}")

    agg = aggregate(results, key_fn, names)
    partial = _is_partial(results)
    table = ResultTable(title, header, names, fmt=fmt)
    for key, label in zip(keys, labels):
        if key not in agg:
            continue
        rows = agg[key]
        if partial:
            # Annotate the per-class sample count so a reader of a
            # degraded run knows how many graphs back each mean.
            counts = [rows[n].n_graphs for n in names]
            lo, hi = min(counts), max(counts)
            label += f" [n={lo}]" if lo == hi else f" [n={lo}-{hi}]"
        table.add_row(label, [_pick(rows[n], measure) for n in names])
    return table


def _pick(row: AggregateRow, measure: str) -> float:
    if measure == "retarded":
        return float(row.n_retarded)
    if measure == "nrpt":
        return row.mean_nrpt
    if measure == "speedup":
        return row.mean_speedup
    if measure == "efficiency":
        return row.mean_efficiency
    if measure == "processors":
        return row.mean_processors
    raise ValueError(f"unknown measure {measure!r}")


# ----------------------------------------------------------------------
# Table 1 — suite composition
# ----------------------------------------------------------------------
def table1(results: Sequence[GraphResult]) -> ResultTable:
    """Graph counts per (granularity band, anchor) cell, as in Table 1."""
    anchors = sorted({gr.anchor for gr in results}) or list(PAPER_ANCHORS)
    table = ResultTable(
        "Table 1: number of graphs per class (summed over weight ranges)",
        "Granularity",
        [f"ANCHOR {a}" for a in anchors],
        fmt="{:.0f}",
    )
    agg = aggregate(results, lambda gr: (gr.band, gr.anchor), _names(results))
    names = _names(results)
    for band in range(len(GRANULARITY_BANDS)):
        row = []
        for a in anchors:
            cell = agg.get((band, a))
            # max across heuristics: a cell's graph count is the number of
            # graphs present, even if some heuristic failed on a few.
            row.append(
                float(max(cell[n].n_graphs for n in names)) if cell else 0.0
            )
        table.add_row(band_label(band), row)
    return table


# ----------------------------------------------------------------------
# Granularity analysis (section 4.1)
# ----------------------------------------------------------------------
def table2(results: Sequence[GraphResult]) -> ResultTable:
    """Schedules with speedup < 1 per granularity band (Table 2)."""
    return _measure_table(
        results,
        title="Table 2: number of schedules with speedup < 1, by granularity",
        group="band",
        measure="retarded",
        fmt="{:.0f}",
    )


def table3(results: Sequence[GraphResult]) -> ResultTable:
    """Average normalized relative parallel time per band (Table 3 / Fig 1)."""
    return _measure_table(
        results,
        title="Table 3: average normalized relative parallel time, by granularity",
        group="band",
        measure="nrpt",
    )


def table4(results: Sequence[GraphResult]) -> ResultTable:
    """Average speedup per granularity band (Table 4 / Fig 2)."""
    return _measure_table(
        results,
        title="Table 4: average speedup, by granularity",
        group="band",
        measure="speedup",
    )


def table5(results: Sequence[GraphResult]) -> ResultTable:
    """Average efficiency per granularity band (Table 5 / Fig 3)."""
    return _measure_table(
        results,
        title="Table 5: average efficiency, by granularity",
        group="band",
        measure="efficiency",
    )


# ----------------------------------------------------------------------
# Node-weight-range analysis (section 4.2)
# ----------------------------------------------------------------------
def table6(results: Sequence[GraphResult]) -> ResultTable:
    """Schedules with speedup < 1 per node weight range (Table 6)."""
    return _measure_table(
        results,
        title="Table 6: number of schedules with speedup < 1, by node weight range",
        group="weight_range",
        measure="retarded",
        fmt="{:.0f}",
    )


def table7(results: Sequence[GraphResult]) -> ResultTable:
    """Average NRPT per node weight range (Table 7 / Fig 4)."""
    return _measure_table(
        results,
        title="Table 7: average relative parallel time, by node weight range",
        group="weight_range",
        measure="nrpt",
    )


def table8(results: Sequence[GraphResult]) -> ResultTable:
    """Average speedup per node weight range (Table 8 / Fig 5)."""
    return _measure_table(
        results,
        title="Table 8: average speedup, by node weight range",
        group="weight_range",
        measure="speedup",
    )


def table9(results: Sequence[GraphResult]) -> ResultTable:
    """Average efficiency per node weight range (Table 9 / Fig 6)."""
    return _measure_table(
        results,
        title="Table 9: average efficiency, by node weight range",
        group="weight_range",
        measure="efficiency",
    )


# ----------------------------------------------------------------------
# Anchor out-degree analysis (section 4.3)
# ----------------------------------------------------------------------
def table10(results: Sequence[GraphResult]) -> ResultTable:
    """Schedules with speedup < 1 per anchor out-degree (Table 10)."""
    return _measure_table(
        results,
        title="Table 10: number of schedules with speedup < 1, by anchor out-degree",
        group="anchor",
        measure="retarded",
        fmt="{:.0f}",
    )


def table11(results: Sequence[GraphResult]) -> ResultTable:
    """Average NRPT per anchor out-degree (Table 11)."""
    return _measure_table(
        results,
        title="Table 11: normalized average relative parallel time, by anchor out-degree",
        group="anchor",
        measure="nrpt",
    )


def table_processors(results: Sequence[GraphResult]) -> ResultTable:
    """Extension table: mean processors used per granularity band.

    Not in the paper, but it is the denominator of Table 5's efficiency —
    the direct evidence for "CLANS consistently uses fewer processors".
    """
    return _measure_table(
        results,
        title="Extension table: mean processors used, by granularity",
        group="band",
        measure="processors",
        fmt="{:.1f}",
    )


ALL_TABLES = {
    1: table1,
    2: table2,
    3: table3,
    4: table4,
    5: table5,
    6: table6,
    7: table7,
    8: table8,
    9: table9,
    10: table10,
    11: table11,
}
