"""Fault tolerance for suite execution: policies, failure records, injection.

A 2100-graph campaign (the paper's full testbed) must survive a
pathological graph, a hung heuristic or a crashed worker without losing
hours of completed work.  This module holds the pieces the runners build
on:

* :class:`FaultPolicy` — what to do when a schedule call fails
  (``on_error``), how long one call may run (``timeout``), and how often
  transient failures are retried (``retries`` / ``backoff``);
* :class:`FailureRecord` — a first-class, JSON-able description of one
  failed ``(graph, heuristic)`` evaluation: exception type, message,
  traceback, elapsed wall time and attempt count;
* :func:`deadline` — a SIGALRM-based wall-clock budget around one schedule
  call (best effort: main thread on POSIX; elsewhere the parallel runner's
  parent-side watchdog is the backstop);
* :class:`FaultInjectingScheduler` — a deterministic raise/hang/crash/
  wrong-schedule wrapper used by the fault-layer tests and the CI smoke
  job;
* :func:`format_failure_report` — the human-readable aggregation printed
  by the CLI after a degraded run.

Timeout semantics: the budget applies to one ``Scheduler.schedule`` call.
A call that exceeds it is retried exactly once; a second overrun
quarantines the ``(graph, heuristic)`` pair as a ``timeout`` failure (no
further retries, regardless of ``retries``).  Other failures are retried
``retries`` times with exponential backoff, then recorded.
"""

from __future__ import annotations

import signal
import threading
import traceback as _traceback
from collections.abc import Iterable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..core.exceptions import ReproError

__all__ = [
    "ON_ERROR_POLICIES",
    "FaultPolicy",
    "FailureRecord",
    "GraphTimeoutError",
    "WorkerCrashError",
    "deadline",
    "FaultInjectingScheduler",
    "format_failure_report",
]

#: Valid ``on_error`` values: re-raise immediately, drop failures (counted
#: but not kept), or carry them as :class:`FailureRecord` objects.
ON_ERROR_POLICIES = ("raise", "skip", "record")


class GraphTimeoutError(ReproError):
    """A schedule call exceeded its per-call wall-clock budget."""


class WorkerCrashError(ReproError):
    """A worker process died (segfault/oom/exit) while evaluating a graph."""


@dataclass(frozen=True)
class FaultPolicy:
    """How the runners respond to failures during suite execution.

    ``on_error``
        ``"raise"`` (default) preserves the historical behaviour: the first
        failure aborts the run.  ``"skip"`` continues, counting failures in
        the metrics registry but not keeping records.  ``"record"``
        continues and carries a :class:`FailureRecord` per failed
        ``(graph, heuristic)`` pair on the returned suite result.
    ``timeout``
        Wall-clock budget in seconds for one schedule call (``None`` = no
        budget).  One overrun is retried once; two overruns quarantine.
    ``retries``
        Extra attempts for non-timeout failures (default 0).
    ``backoff``
        Base sleep before retry ``k`` (``backoff * 2**(k-1)`` seconds).
    """

    on_error: str = "raise"
    timeout: float | None = None
    retries: int = 0
    backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_POLICIES}, "
                f"got {self.on_error!r}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")

    @property
    def isolates(self) -> bool:
        """True when failures are absorbed instead of re-raised."""
        return self.on_error != "raise"

    @property
    def keeps_records(self) -> bool:
        return self.on_error == "record"


@dataclass(frozen=True)
class FailureRecord:
    """One failed evaluation, carried alongside successful results.

    ``heuristic`` is ``None`` for whole-graph failures (a crashed worker
    takes every heuristic of the graph down with it).  ``kind`` is one of
    ``"error"`` (the heuristic or validation raised), ``"timeout"`` (the
    per-call budget was exceeded twice) or ``"crash"`` (the worker process
    died).
    """

    graph_id: str
    heuristic: str | None
    kind: str
    exc_type: str
    message: str
    seed: int | None = None
    traceback: str = ""
    elapsed: float = 0.0
    attempts: int = 1

    def signature(self) -> tuple:
        """The policy-determined identity of the failure.

        Excludes traceback text, elapsed time and seed so serial and
        parallel runs of the same suite produce comparable failures.
        """
        return (self.graph_id, self.heuristic, self.kind, self.exc_type)

    def to_dict(self) -> dict:
        return {
            "graph_id": self.graph_id,
            "heuristic": self.heuristic,
            "kind": self.kind,
            "exc_type": self.exc_type,
            "message": self.message,
            "seed": self.seed,
            "traceback": self.traceback,
            "elapsed": self.elapsed,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailureRecord":
        return cls(
            graph_id=data["graph_id"],
            heuristic=data.get("heuristic"),
            kind=data["kind"],
            exc_type=data["exc_type"],
            message=data["message"],
            seed=data.get("seed"),
            traceback=data.get("traceback", ""),
            elapsed=data.get("elapsed", 0.0),
            attempts=data.get("attempts", 1),
        )

    @classmethod
    def from_exception(
        cls,
        exc: BaseException,
        *,
        graph_id: str,
        heuristic: str | None,
        kind: str,
        seed: int | None = None,
        elapsed: float = 0.0,
        attempts: int = 1,
    ) -> "FailureRecord":
        return cls(
            graph_id=graph_id,
            heuristic=heuristic,
            kind=kind,
            exc_type=type(exc).__name__,
            message=str(exc),
            seed=seed,
            traceback="".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
            elapsed=elapsed,
            attempts=attempts,
        )


@contextmanager
def deadline(seconds: float | None):
    """Raise :class:`GraphTimeoutError` if the ``with`` body outlives
    ``seconds``.

    Best-effort enforcement via ``SIGALRM``: active only on the main thread
    of a POSIX process (worker processes of the parallel runner qualify —
    they execute tasks on their main thread).  Elsewhere the body runs
    unbudgeted and the parallel runner's parent-side watchdog is the
    backstop.  ``seconds=None`` disables the budget.
    """
    if (
        seconds is None
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise GraphTimeoutError(f"schedule call exceeded {seconds:g}s budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def graph_key(graph) -> str:
    """Deterministic structural fingerprint of a :class:`TaskGraph`.

    Schedulers never see suite graph ids, so fault injection targets graphs
    by structure; the fingerprint is stable across pickling and identical
    in parent and worker processes.
    """
    import hashlib
    import json

    payload = json.dumps(graph.to_dict(), sort_keys=True, default=str)
    return hashlib.sha1(payload.encode()).hexdigest()


# Injection modes understood by FaultInjectingScheduler.
_INJECT_MODES = ("raise", "hang", "wrong", "crash")


class FaultInjectingScheduler:
    """Deterministic failure injection around a real scheduler.

    Delegates to the registered heuristic ``delegate`` except on graphs
    whose :func:`graph_key` is in ``fail``, where it misbehaves per
    ``mode``:

    * ``"raise"`` — raise :class:`~repro.core.exceptions.ReproError`;
    * ``"hang"``  — sleep ``hang_seconds`` (exercises timeout budgets);
    * ``"wrong"`` — return a schedule with a corrupted task start time
      (caught only when the caller validates);
    * ``"crash"`` — ``os._exit(1)`` (kills the worker process; parallel
      runner crash-recovery tests only — never use in-process).

    ``fail_attempts`` limits how many times a target graph fails before the
    delegate is used (simulating transient failures for retry tests);
    ``None`` means always fail.  Instances are picklable; per-process
    attempt counts start fresh in each worker, which keeps serial and
    parallel behaviour identical for ``fail_attempts=None`` and for
    single-dispatch retry scenarios.
    """

    def __init__(
        self,
        delegate: str = "HU",
        *,
        fail: Iterable[str] = (),
        mode: str = "raise",
        hang_seconds: float = 60.0,
        fail_attempts: int | None = None,
    ) -> None:
        if mode not in _INJECT_MODES:
            raise ValueError(f"mode must be one of {_INJECT_MODES}, got {mode!r}")
        from ..schedulers.base import get_scheduler

        self._delegate_name = delegate
        self._impl = get_scheduler(delegate)
        self.name = self._impl.name
        self.fail = frozenset(fail)
        self.mode = mode
        self.hang_seconds = hang_seconds
        self.fail_attempts = fail_attempts
        self._attempts: dict[str, int] = {}

    # Delegate the observed wrapper so timing/obs plumbing behaves like a
    # real scheduler (the runner calls _schedule_observed directly).
    def schedule(self, graph):
        from ..obs.metrics import get_registry
        from ..obs.trace import get_tracer

        return self._schedule_observed(graph, get_tracer(), get_registry())

    def _schedule_observed(self, graph, tracer, registry):
        key = graph_key(graph)
        if key in self.fail:
            seen = self._attempts.get(key, 0)
            if self.fail_attempts is None or seen < self.fail_attempts:
                self._attempts[key] = seen + 1
                return self._misbehave(graph, tracer, registry)
        return self._impl._schedule_observed(graph, tracer, registry)

    def _misbehave(self, graph, tracer, registry):
        if self.mode == "raise":
            raise ReproError(
                f"injected failure ({self.name} on {graph.n_tasks}-task graph)"
            )
        if self.mode == "hang":
            import time

            time.sleep(self.hang_seconds)
            raise ReproError("injected hang outlived its sleep")
        if self.mode == "crash":
            import os

            os._exit(1)
        # mode == "wrong": produce a real schedule, then corrupt one start
        # time so validation (and only validation) catches it.
        schedule = self._impl._schedule_observed(graph, tracer, registry)
        return _corrupt_schedule(schedule)

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_attempts"] = {}  # per-process transient-failure counters
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def __repr__(self) -> str:
        return (
            f"FaultInjectingScheduler({self._delegate_name!r}, mode={self.mode!r}, "
            f"targets={len(self.fail)})"
        )


def _corrupt_schedule(schedule):
    """Stretch one task's duration so it no longer matches its weight —
    guaranteed to fail ``Schedule.validate`` while passing unvalidated use."""
    from ..core.schedule import Schedule

    bad = Schedule()
    for i, item in enumerate(schedule):
        stretch = 1.0 if i == 0 else 0.0
        bad.place(
            item.task, item.processor, item.start, item.finish - item.start + stretch
        )
    return bad


@dataclass
class FailureSummary:
    """Aggregated view of a run's failures (one row per heuristic+kind)."""

    n_failures: int = 0
    by_heuristic_kind: dict[tuple[str, str], int] = field(default_factory=dict)


def summarize_failures(failures: Sequence[FailureRecord]) -> FailureSummary:
    summary = FailureSummary(n_failures=len(failures))
    for fr in failures:
        key = (fr.heuristic or "*", fr.kind)
        summary.by_heuristic_kind[key] = summary.by_heuristic_kind.get(key, 0) + 1
    return summary


def format_failure_report(
    failures: Sequence[FailureRecord], *, max_detail: int = 10
) -> str:
    """Human-readable failure report (printed by the CLI after the run).

    An aggregate table (heuristic × kind × count) followed by up to
    ``max_detail`` per-failure lines with exception type and message.
    """
    if not failures:
        return "no failures recorded"
    summary = summarize_failures(failures)
    lines = [f"{summary.n_failures} failure(s) recorded"]
    width = max(len(h) for h, _ in summary.by_heuristic_kind)
    for (heuristic, kind), count in sorted(summary.by_heuristic_kind.items()):
        lines.append(f"  {heuristic:<{width}s}  {kind:<8s} {count:5d}")
    lines.append("details:")
    for fr in failures[:max_detail]:
        lines.append(
            f"  {fr.graph_id} [{fr.heuristic or '*'}] {fr.kind}: "
            f"{fr.exc_type}: {fr.message} "
            f"({fr.attempts} attempt(s), {fr.elapsed:.3f}s)"
        )
    if len(failures) > max_detail:
        lines.append(f"  ... and {len(failures) - max_detail} more")
    return "\n".join(lines)
