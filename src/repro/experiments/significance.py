"""Paired statistical comparison of heuristics.

The paper compares heuristics by class-wise *means*; means alone cannot say
whether a difference is systematic or noise.  This module adds the missing
statistics for the "numerical comparison technique" (paper section 5.2):
for a pair of heuristics over one set of graphs it reports

* win / loss / tie counts (paired per graph),
* mean and median makespan ratio,
* a Wilcoxon signed-rank test (via scipy) on the paired makespans, whose
  p-value bounds the probability that a difference this one-sided arises
  from symmetric noise.

:func:`comparison_matrix` runs all pairs and renders the familiar
dominance table.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from scipy import stats as _scipy_stats

from .measures import GraphResult
from .reporting import ResultTable

__all__ = ["PairedComparison", "compare_heuristics", "comparison_matrix"]

_EPS = 1e-9


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of comparing heuristic ``a`` against ``b`` over n graphs."""

    a: str
    b: str
    n_graphs: int
    wins: int  # graphs where a is strictly faster
    losses: int  # graphs where b is strictly faster
    ties: int
    mean_ratio: float  # mean of makespan(a) / makespan(b)
    median_ratio: float
    p_value: float  # Wilcoxon signed-rank; 1.0 when all pairs tie

    @property
    def a_dominates(self) -> bool:
        """True when a wins more often and the difference is significant."""
        return self.wins > self.losses and self.p_value < 0.05

    def summary(self) -> str:
        return (
            f"{self.a} vs {self.b}: {self.wins}W/{self.losses}L/{self.ties}T "
            f"over {self.n_graphs} graphs, median ratio "
            f"{self.median_ratio:.3f}, p={self.p_value:.2g}"
        )


def compare_heuristics(
    results: Sequence[GraphResult], a: str, b: str
) -> PairedComparison:
    """Paired comparison of two heuristics over the same graphs."""
    if not results:
        raise ValueError("no results to compare")
    xs, ys = [], []
    wins = losses = ties = 0
    for r in results:
        ta = r.results[a].parallel_time
        tb = r.results[b].parallel_time
        xs.append(ta)
        ys.append(tb)
        if ta < tb - _EPS:
            wins += 1
        elif tb < ta - _EPS:
            losses += 1
        else:
            ties += 1
    ratios = sorted(x / y for x, y in zip(xs, ys))
    n = len(ratios)
    median = (
        ratios[n // 2]
        if n % 2
        else 0.5 * (ratios[n // 2 - 1] + ratios[n // 2])
    )
    diffs = [x - y for x, y in zip(xs, ys)]
    if all(abs(d) <= _EPS for d in diffs):
        p_value = 1.0
    else:
        _, p_value = _scipy_stats.wilcoxon(xs, ys, zero_method="zsplit")
    return PairedComparison(
        a=a,
        b=b,
        n_graphs=n,
        wins=wins,
        losses=losses,
        ties=ties,
        mean_ratio=sum(ratios) / n,
        median_ratio=median,
        p_value=float(p_value),
    )


def comparison_matrix(
    results: Sequence[GraphResult], names: Sequence[str] | None = None
) -> ResultTable:
    """Win-fraction matrix: cell (row, col) = share of graphs where *row*
    is strictly faster than *col* (diagonal blank as 0)."""
    if not results:
        raise ValueError("no results to compare")
    if names is None:
        names = sorted(results[0].results)
    table = ResultTable(
        "Pairwise win fraction (row beats column)",
        "heuristic",
        list(names),
        fmt="{:.2f}",
    )
    for a in names:
        row = []
        for b in names:
            if a == b:
                row.append(0.0)
                continue
            cmp_result = compare_heuristics(results, a, b)
            row.append(cmp_result.wins / cmp_result.n_graphs)
        table.add_row(a, row)
    return table
