"""The campaign journal: the coordinator's single source of durable truth.

Append-only JSONL, fsync'd per record via
:func:`repro.experiments.persistence.append_jsonl_line` (which also
self-heals after a torn trailing line).  Four record types::

    {"type": "campaign",   "v": 1, "spec": {...}, "digest": "..."}
    {"type": "grant",      "v": 1, "unit_id": "u00003", "worker": "w1",
                           "attempt": 2}
    {"type": "unit",       "v": 1, "unit_id": "u00003", "digest": "...",
                           "worker": "w1", "results": [...],
                           "failures": [...]}
    {"type": "quarantine", "v": 1, "unit_id": "u00003", "attempts": 3,
                           "worker": "w1"}

``campaign`` is written once at creation and pins the spec (and its
digest) so ``repro campaign resume`` needs nothing but the journal path.
``grant`` is written *before* a lease is handed out, making attempt
counts survive coordinator crashes — a poison unit cannot dodge
quarantine by rebooting the coordinator.  ``unit`` is written exactly
once per unit — the first accepted delivery; later duplicates are
acknowledged but never journaled, which is the whole exactly-once merge
argument (see DESIGN.md §16).  ``quarantine`` retires a unit that burned
``max_attempts`` grants without a delivery.

Load tolerates torn trailing lines exactly like the checkpoint journal:
a record that fails to parse is discarded with a warning and loading
continues, because a resumed coordinator appends *after* the fragment.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..experiments.faults import FailureRecord
from ..experiments.measures import GraphResult
from ..experiments.persistence import (
    append_jsonl_line,
    result_from_dict,
    result_to_dict,
)
from ..obs.log import get_logger
from .spec import CampaignSpec

__all__ = ["UnitDelivery", "CampaignJournal", "CampaignState"]


class UnitDelivery:
    """One accepted unit result: the graphs' results plus absorbed failures."""

    __slots__ = ("unit_id", "digest", "worker", "results", "failures")

    def __init__(
        self,
        unit_id: str,
        digest: str,
        worker: str,
        results: list[GraphResult],
        failures: list[FailureRecord],
    ) -> None:
        self.unit_id = unit_id
        self.digest = digest
        self.worker = worker
        self.results = results
        self.failures = failures

    def to_dict(self) -> dict:
        return {
            "unit_id": self.unit_id,
            "digest": self.digest,
            "worker": self.worker,
            "results": [result_to_dict(r) for r in self.results],
            "failures": [fr.to_dict() for fr in self.failures],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UnitDelivery":
        return cls(
            unit_id=data["unit_id"],
            digest=data["digest"],
            worker=data.get("worker", "?"),
            results=[result_from_dict(r) for r in data["results"]],
            failures=[FailureRecord.from_dict(f) for f in data["failures"]],
        )


class CampaignState:
    """Everything :meth:`CampaignJournal.load` recovers from disk."""

    __slots__ = (
        "spec",
        "digest",
        "completed",
        "attempts",
        "quarantined",
        "last_worker",
    )

    def __init__(self) -> None:
        self.spec: CampaignSpec | None = None
        self.digest: str | None = None
        #: unit_id -> first accepted delivery.
        self.completed: dict[str, UnitDelivery] = {}
        #: unit_id -> lease grants so far (attempt counter for poison).
        self.attempts: dict[str, int] = {}
        #: unit ids retired as poison.
        self.quarantined: set[str] = set()
        #: unit_id -> worker of the most recent grant (quarantine forensics).
        self.last_worker: dict[str, str] = {}


class CampaignJournal:
    """Durable append-only record of one campaign's coordination events."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def write_header(self, spec: CampaignSpec) -> None:
        append_jsonl_line(
            self.path,
            {
                "type": "campaign",
                "v": 1,
                "spec": spec.to_dict(),
                "digest": spec.digest(),
            },
        )

    def write_grant(self, unit_id: str, worker: str, attempt: int) -> None:
        append_jsonl_line(
            self.path,
            {
                "type": "grant",
                "v": 1,
                "unit_id": unit_id,
                "worker": worker,
                "attempt": attempt,
            },
        )

    def write_unit(self, delivery: UnitDelivery) -> None:
        append_jsonl_line(self.path, {"type": "unit", "v": 1, **delivery.to_dict()})

    def write_quarantine(self, unit_id: str, attempts: int, worker: str) -> None:
        append_jsonl_line(
            self.path,
            {
                "type": "quarantine",
                "v": 1,
                "unit_id": unit_id,
                "attempts": attempts,
                "worker": worker,
            },
        )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def load(self) -> CampaignState:
        """Replay the journal into a :class:`CampaignState`.

        Torn or malformed lines are discarded with a warning (the resumed
        coordinator appends after them — see :func:`append_jsonl_line`).
        A duplicate ``unit`` record (possible if a crash landed between
        journaling and acking, then the worker redelivered to a resumed
        coordinator) keeps the *first* occurrence, matching the live
        coordinator's first-delivery-wins rule.  A ``unit`` record after
        a ``quarantine`` record (a straggler delivery accepted post-
        quarantine) wins over the quarantine, again matching the live
        state machine.
        """
        state = CampaignState()
        if not self.path.exists():
            return state
        log = get_logger("campaign")
        for lineno, line in enumerate(self.path.read_text().splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                kind = obj.get("type") if isinstance(obj, dict) else None
                if kind == "campaign":
                    state.spec = CampaignSpec.from_dict(obj["spec"])
                    state.digest = obj["digest"]
                elif kind == "grant":
                    uid = obj["unit_id"]
                    state.attempts[uid] = max(
                        state.attempts.get(uid, 0), int(obj["attempt"])
                    )
                    state.last_worker[uid] = obj.get("worker", "?")
                elif kind == "unit":
                    delivery = UnitDelivery.from_dict(obj)
                    state.completed.setdefault(delivery.unit_id, delivery)
                    # A straggler delivery accepted *after* quarantine
                    # un-quarantines the unit in the live coordinator
                    # (submit accepts any incomplete unit); replay must
                    # agree, or the unit counts as both completed and
                    # quarantined and a resumed campaign declares done
                    # with other units never computed.
                    state.quarantined.discard(delivery.unit_id)
                elif kind == "quarantine":
                    state.quarantined.add(obj["unit_id"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                log.warning(
                    "%s:%d: torn campaign journal line (crash mid-append?); "
                    "discarding the partial record",
                    self.path,
                    lineno,
                )
        return state
