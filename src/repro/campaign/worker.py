"""Campaign worker: lease → regenerate → execute → heartbeat → submit.

A worker is deliberately dumb and disposable.  It carries no state a
crash could lose beyond its current in-flight unit, which the
coordinator's lease expiry reclaims; ``kill -9`` mid-unit costs exactly
one unit's compute time and nothing else.  Everything it needs arrives
in the ``campaign.register`` response — the spec to regenerate graphs
from (bit-identically, see :func:`repro.campaign.spec.unit_graphs`) and
the lease TTL to heartbeat against.

Execution reuses the suite runner verbatim (``run_suite`` with
``on_error="record"`` and the spec's timeout/retry fault policy), so a
unit's results and failure records are the *same objects* a serial run
would produce — the byte-identity of the merged campaign is inherited,
not re-implemented.  That includes the batch layer: a worker's
regenerated graph slice is pre-analyzed in vectorized chunks by the
runner's :func:`~repro.core.batch.batch_analyze` pass (and falls back
per-graph under ``REPRO_BATCH=0`` / ``REPRO_KERNELS=0``), with no
campaign-side code.

Heartbeats run on their own thread **and their own connection**: the
main connection blocks for a unit's whole compute time inside
``campaign.result``/``campaign.lease`` turnarounds, and a heartbeat
queued behind that would defeat its purpose.  Losing the lease (the
heartbeat answer ``ok: false``) does not abort the unit — the work is
nearly done and first-delivery-wins dedup makes the redundant submit
harmless.

Submission failures (coordinator crashed or restarting) are retried
with the SDK's full-jitter backoff under a ``patience`` budget, so a
fleet of workers rides out a coordinator restart without losing
completed work and without stampeding the resumed coordinator.

Test hook: ``REPRO_CAMPAIGN_UNIT_DELAY`` (seconds, float) sleeps after
each lease grant, giving crash tests a deterministic window in which the
worker holds a lease but has not yet submitted.
"""

from __future__ import annotations

import os
import threading
import time
import uuid

from ..experiments.persistence import result_to_dict
from ..experiments.runner import run_suite
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..schedulers.base import get_scheduler
from ..service.client import ServiceClient, ServiceError
from .spec import CampaignSpec, WorkUnit, unit_graphs

__all__ = ["run_worker"]

#: How long a worker keeps retrying `wait` polls and unreachable
#: coordinators before giving up (seconds).
DEFAULT_PATIENCE = 60.0


def _heartbeat_loop(
    address,
    worker_id: str,
    unit_id: str,
    interval: float,
    stop: threading.Event,
) -> None:
    """Renew one lease until told to stop; errors are ignored (a missed
    heartbeat at worst expires the lease, which dedup already covers)."""
    client = ServiceClient(address, retries=0)
    try:
        while not stop.wait(interval):
            try:
                client.call(
                    "campaign.heartbeat",
                    {"worker": worker_id, "unit_id": unit_id},
                )
            except ServiceError:
                pass
    finally:
        client.close()


def run_worker(
    address,
    *,
    worker_id: "str | None" = None,
    jobs: int = 1,
    patience: float = DEFAULT_PATIENCE,
    poll: float = 0.25,
    max_units: "int | None" = None,
) -> int:
    """Process campaign units until the campaign is done.

    Returns the number of units this worker completed.  ``max_units``
    stops early after that many completions (tests use it to leave work
    for a resume).  ``patience`` bounds how long ``wait`` polling and
    coordinator outages are tolerated before giving up.
    """
    worker_id = worker_id or f"w-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    log = get_logger("campaign")
    registry = get_registry()
    unit_delay = float(os.environ.get("REPRO_CAMPAIGN_UNIT_DELAY", "0") or 0)

    client = ServiceClient(address, retries=3, backoff=0.05)
    try:
        info = _with_patience(
            lambda: client.call("campaign.register", {"worker": worker_id}),
            patience,
            "register",
        )
        spec = CampaignSpec.from_dict(info["spec"])
        lease_ttl = float(info["lease_ttl"])
        schedulers = (
            None
            if spec.heuristics is None
            else [get_scheduler(n) for n in spec.heuristics]
        )
        log.info(
            "worker %s joined campaign %s (%d units)",
            worker_id,
            info["campaign"][:12],
            info["n_units"],
        )
        completed = 0
        idle_since: "float | None" = None
        while max_units is None or completed < max_units:
            try:
                grant = _with_patience(
                    lambda: client.call("campaign.lease", {"worker": worker_id}),
                    patience,
                    "lease",
                )
            except ServiceError as exc:
                if exc.status != "unavailable":
                    raise
                log.warning(
                    "worker %s: coordinator gone for %.0fs; assuming the "
                    "campaign ended and shutting down",
                    worker_id,
                    patience,
                )
                break
            if grant["status"] == "done":
                break
            if grant["status"] == "wait":
                # Someone else holds the remaining units; poll until the
                # campaign finishes or a lease expires back into the pool.
                if idle_since is None:
                    idle_since = time.monotonic()
                elif time.monotonic() - idle_since > patience:
                    log.warning(
                        "worker %s idle for %.0fs with campaign unfinished; "
                        "giving up",
                        worker_id,
                        patience,
                    )
                    break
                time.sleep(poll)
                continue
            idle_since = None
            unit = WorkUnit.from_dict(grant["unit"])
            registry.inc("campaign.worker.units.leased")
            if unit_delay > 0:
                time.sleep(unit_delay)  # test hook: widen the crash window
            stop = threading.Event()
            hb = threading.Thread(
                target=_heartbeat_loop,
                args=(client.address, worker_id, unit.unit_id, lease_ttl / 3.0, stop),
                name=f"hb-{unit.unit_id}",
                daemon=True,
            )
            hb.start()
            try:
                result = run_suite(
                    unit_graphs(spec, unit),
                    schedulers,
                    validate=spec.validate,
                    seed=spec.seed,
                    jobs=jobs,
                    on_error="record",
                    timeout=spec.timeout,
                    retries=spec.retries,
                )
            finally:
                stop.set()
                hb.join(timeout=1.0)
            payload = {
                "worker": worker_id,
                "unit_id": unit.unit_id,
                "digest": unit.digest,
                "results": [result_to_dict(r) for r in result],
                "failures": [fr.to_dict() for fr in result.failures],
            }
            try:
                ack = _with_patience(
                    lambda: client.call("campaign.result", payload),
                    patience,
                    f"submit {unit.unit_id}",
                )
            except ServiceError as exc:
                if exc.status != "unavailable":
                    raise
                # Nothing is lost: the unit's lease will expire on the
                # (eventually resumed) coordinator and be recomputed, or
                # the journal already holds a pre-crash delivery of it.
                log.warning(
                    "worker %s: could not deliver %s after %.0fs; lease "
                    "expiry will reschedule it — shutting down",
                    worker_id,
                    unit.unit_id,
                    patience,
                )
                break
            completed += 1
            registry.inc("campaign.worker.units.done")
            if ack.get("duplicate"):
                registry.inc("campaign.worker.units.redundant")
            if ack.get("done"):
                break
        log.info("worker %s finished: %d units", worker_id, completed)
        return completed
    finally:
        client.close()


def _with_patience(call, patience: float, what: str):
    """Run ``call`` retrying ``unavailable`` errors until ``patience`` runs
    out.  The SDK already retries with full-jitter backoff inside one
    ``call``; this outer loop covers a coordinator that stays down longer
    — e.g. the operator restarting it with ``repro campaign resume``."""
    deadline = time.monotonic() + patience
    while True:
        try:
            return call()
        except ServiceError as exc:
            if exc.status != "unavailable" or time.monotonic() >= deadline:
                raise
            get_logger("campaign").warning(
                "coordinator unreachable during %s; retrying (%.0fs of "
                "patience left)",
                what,
                deadline - time.monotonic(),
            )
            time.sleep(min(1.0, max(0.05, patience / 20.0)))
