"""Distributed resumable campaigns (lease-based coordinator/worker tier).

A *campaign* runs the paper's testbed — or any sliced variant of it —
across many worker processes or hosts, surviving worker crashes,
network partitions and coordinator restarts, while producing a merged
:class:`~repro.experiments.measures.SuiteResult` byte-identical to a
serial ``run_suite`` of the same spec.

Layout:

* :mod:`~repro.campaign.spec` — campaign specs and their deterministic
  sharding into digest-keyed work units;
* :mod:`~repro.campaign.journal` — the coordinator's fsync'd append-only
  JSONL journal (spec header, lease grants, first deliveries,
  quarantines);
* :mod:`~repro.campaign.coordinator` — the lease state machine, the
  exactly-once merge and the threaded NDJSON server;
* :mod:`~repro.campaign.worker` — the lease/execute/heartbeat/submit
  loop (``repro campaign worker``).

CLI: ``repro campaign run | worker | status | resume``.  Architecture
and invariants: DESIGN.md §16.
"""

from .coordinator import (
    DEFAULT_LEASE_TTL,
    CampaignCoordinator,
    CampaignServer,
    Lease,
)
from .journal import CampaignJournal, CampaignState, UnitDelivery
from .spec import CampaignSpec, WorkUnit, campaign_suite, unit_graphs
from .worker import run_worker

__all__ = [
    "CampaignSpec",
    "WorkUnit",
    "unit_graphs",
    "campaign_suite",
    "CampaignJournal",
    "CampaignState",
    "UnitDelivery",
    "CampaignCoordinator",
    "CampaignServer",
    "Lease",
    "DEFAULT_LEASE_TTL",
    "run_worker",
]
