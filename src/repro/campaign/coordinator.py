"""Campaign coordinator: lease table, exactly-once merge, NDJSON server.

The coordinator owns a campaign's full unit table and hands out
time-limited **leases** over the service wire protocol
(:mod:`repro.service.protocol`, verb family ``campaign.*``).  Workers are
stateless and anonymous — they register, lease, heartbeat, execute,
submit, repeat — so the coordinator's in-memory table plus its journal
(:mod:`repro.campaign.journal`) are the only coordination state in the
system, and both survive any single failure:

* **Worker crash / partition** — heartbeats stop, the lease expires
  (``lease_ttl`` seconds), and the unit silently returns to the pending
  pool.  Nothing is lost but the dead worker's in-flight unit, which the
  next ``campaign.lease`` re-grants.
* **Coordinator crash** — ``repro campaign resume`` replays the journal:
  completed units are final (never re-granted), grant counts persist (a
  poison unit cannot reset its attempt budget by crashing the
  coordinator), and in-flight leases are simply forgotten — the worker's
  eventual delivery is still accepted, because *submit accepts any
  incomplete unit whether or not a live lease backs it* (see below).

Execution is therefore **at-least-once**; the merge is **exactly-once**:
a unit result is journaled and counted the first time it arrives, and
every later delivery of the same unit — duplicate submit after a lost
ack, a rescheduled twin finishing second — is acknowledged as
``duplicate`` and discarded.  Since every accepted delivery is keyed and
digest-checked against the deterministic unit table, and units are
concatenated in unit order at merge time, the merged result equals the
serial ``run_suite`` output byte for byte (DESIGN.md §16 has the
argument in full).

A unit granted ``max_attempts`` times with no delivery is **poison**
(some graph in it reliably kills workers): it is quarantined — journaled,
excluded from scheduling, and carried in the merged result as one
``kind="poison"`` :class:`~repro.experiments.faults.FailureRecord` per
covered graph, so a campaign with a pathological unit still terminates
with a complete, explicit account of what was not computed.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..experiments.faults import FailureRecord
from ..experiments.measures import SuiteResult
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..service.protocol import (
    INTERNAL,
    MAX_FRAME_BYTES,
    ProtocolError,
    QUEUED_OPS,
    Request,
    decode_request,
    encode_response,
    error_response,
    ok_response,
)
from .journal import CampaignJournal, CampaignState, UnitDelivery
from .spec import CampaignSpec, WorkUnit

__all__ = [
    "DEFAULT_LEASE_TTL",
    "Lease",
    "CampaignCoordinator",
    "CampaignServer",
]

#: Default lease time-to-live in seconds.  Generous relative to one
#: unit's compute time so healthy workers never lose a lease to a missed
#: heartbeat, small enough that a crashed worker's unit is rescheduled
#: promptly.
DEFAULT_LEASE_TTL = 15.0


@dataclass
class Lease:
    """One outstanding grant: who holds which unit until when."""

    unit_id: str
    worker: str
    expires_at: float
    attempt: int


class CampaignCoordinator:
    """The campaign state machine (transport-free; see :class:`CampaignServer`).

    All public methods are thread-safe (one re-entrant lock — the state is
    tiny and every transition is O(1) or O(units), so a single lock is
    simpler and plenty fast next to multi-second unit compute times).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        journal: CampaignJournal,
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        state: "CampaignState | None" = None,
        clock=time.monotonic,
    ) -> None:
        self.spec = spec
        self.journal = journal
        self.lease_ttl = lease_ttl
        self._clock = clock
        self._lock = threading.RLock()
        self._log = get_logger("campaign")
        self.digest = spec.digest()
        self.units: list[WorkUnit] = spec.units()
        self._by_id: dict[str, WorkUnit] = {u.unit_id: u for u in self.units}
        state = state or CampaignState()
        self.completed: dict[str, UnitDelivery] = dict(state.completed)
        self.attempts: dict[str, int] = dict(state.attempts)
        self.quarantined: set[str] = set(state.quarantined)
        # Completion always wins over quarantine (journal replay already
        # enforces this; re-assert it here so a hand-built state cannot
        # double-count a unit in _done_locked()).
        self.quarantined -= set(self.completed)
        #: unit_id -> worker holding the most recent grant (forensics for
        #: quarantine records: the worker whose lease last burned).
        self.last_worker: dict[str, str] = dict(state.last_worker)
        self.leases: dict[str, Lease] = {}
        self.workers: set[str] = set()
        # Journal replay may reference units that no longer exist only if
        # the journal belongs to a different campaign — refuse early.
        for uid in list(self.completed) + list(self.quarantined):
            if uid not in self._by_id:
                raise ValueError(
                    f"journal {journal.path} references unknown unit {uid}: "
                    "it belongs to a different campaign spec"
                )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        spec: CampaignSpec,
        journal_path: "str | Path",
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> "CampaignCoordinator":
        """Start a fresh campaign: write the journal header, empty state."""
        journal = CampaignJournal(journal_path)
        if journal.exists():
            raise ValueError(
                f"{journal.path} already exists; use resume() to continue it"
            )
        journal.write_header(spec)
        return cls(spec, journal, lease_ttl=lease_ttl)

    @classmethod
    def resume(
        cls,
        journal_path: "str | Path",
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> "CampaignCoordinator":
        """Rebuild a coordinator from its journal after a crash or stop."""
        journal = CampaignJournal(journal_path)
        state = journal.load()
        if state.spec is None:
            raise ValueError(
                f"{journal.path}: no campaign header record; not a campaign "
                "journal (or its header append was torn)"
            )
        coord = cls(state.spec, journal, lease_ttl=lease_ttl, state=state)
        coord._log.info(
            "resumed campaign %s: %d/%d units complete, %d quarantined",
            coord.digest[:12],
            len(coord.completed),
            len(coord.units),
            len(coord.quarantined),
        )
        return coord

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def register(self, worker: str) -> dict:
        """``campaign.register``: hand the worker everything it needs."""
        with self._lock:
            if worker not in self.workers:
                self.workers.add(worker)
                get_registry().inc("campaign.workers.registered")
            return {
                "campaign": self.digest,
                "spec": self.spec.to_dict(),
                "lease_ttl": self.lease_ttl,
                "n_units": len(self.units),
            }

    def lease(self, worker: str) -> dict:
        """``campaign.lease``: grant the next pending unit.

        Returns ``{"status": "granted", "unit": ..., "attempt": n}``, or
        ``{"status": "wait"}`` when everything pending is currently leased
        (the worker should poll again), or ``{"status": "done"}`` when no
        work will ever remain.  Quarantine happens here, at grant time:
        a unit that already burned ``max_attempts`` grants is retired
        instead of handed out again.
        """
        registry = get_registry()
        with self._lock:
            self._expire_leases_locked()
            for unit in self.units:
                uid = unit.unit_id
                if (
                    uid in self.completed
                    or uid in self.quarantined
                    or uid in self.leases
                ):
                    continue
                attempts = self.attempts.get(uid, 0)
                if attempts >= self.spec.max_attempts:
                    self._quarantine_locked(unit, attempts)
                    continue
                attempt = attempts + 1
                self.attempts[uid] = attempt
                self.last_worker[uid] = worker
                self.journal.write_grant(uid, worker, attempt)
                self.leases[uid] = Lease(
                    unit_id=uid,
                    worker=worker,
                    expires_at=self._clock() + self.lease_ttl,
                    attempt=attempt,
                )
                registry.inc("campaign.leases.granted")
                if attempt > 1:
                    self._log.info(
                        "unit %s re-granted to %s (attempt %d)", uid, worker, attempt
                    )
                return {
                    "status": "granted",
                    "unit": unit.to_dict(),
                    "attempt": attempt,
                }
            if self._done_locked():
                return {"status": "done"}
            return {"status": "wait"}

    def heartbeat(self, worker: str, unit_id: str) -> dict:
        """``campaign.heartbeat``: renew a held lease.

        ``{"ok": false}`` tells the worker its lease is gone (expired and
        possibly re-granted elsewhere); it may still submit — first
        delivery wins — but should not rely on holding the unit.
        """
        with self._lock:
            get_registry().inc("campaign.heartbeats")
            lease = self.leases.get(unit_id)
            if lease is None or lease.worker != worker:
                return {"ok": False}
            lease.expires_at = self._clock() + self.lease_ttl
            return {"ok": True}

    def submit(
        self,
        worker: str,
        unit_id: str,
        digest: str,
        results: list,
        failures: list,
    ) -> dict:
        """``campaign.result``: accept (or dedup) one unit delivery.

        Accepts deliveries for any incomplete unit, **leased or not** —
        covering the lost-ack resubmit, the expired-lease straggler and
        the delivery that raced a coordinator restart.  The digest check
        pins the delivery to this campaign's unit table; a mismatch is a
        protocol error, not a dedup.
        """
        registry = get_registry()
        with self._lock:
            unit = self._by_id.get(unit_id)
            if unit is None:
                raise ProtocolError(f"unknown unit {unit_id!r}")
            if digest != unit.digest:
                raise ProtocolError(
                    f"unit {unit_id} digest mismatch: delivery is for a "
                    "different campaign spec"
                )
            if unit_id in self.completed:
                registry.inc("campaign.units.duplicate")
                return {"accepted": False, "duplicate": True, "done": self._done_locked()}
            try:
                delivery = UnitDelivery.from_dict(
                    {
                        "unit_id": unit_id,
                        "digest": digest,
                        "worker": worker,
                        "results": results,
                        "failures": failures,
                    }
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ProtocolError(f"malformed unit delivery: {exc}") from None
            # Every unit graph must be accounted for — by a result or a
            # whole-graph failure record — and by nothing else.  Matching
            # exact graph-id sets (not just cardinality) keeps a buggy
            # worker's duplicated or wrong-graph delivery from silently
            # corrupting the byte-identical merge the digest check exists
            # to guarantee.
            delivered = {r.graph_id for r in delivery.results}
            covered = delivered | {fr.graph_id for fr in delivery.failures}
            expected = set(unit.graph_ids())
            if len(delivery.results) != len(delivered) or covered != expected:
                raise ProtocolError(
                    f"unit {unit_id} delivery graphs do not match the unit: "
                    f"missing={sorted(expected - covered)} "
                    f"unexpected={sorted(covered - expected)} "
                    f"duplicates={len(delivery.results) - len(delivered)}"
                )
            # Journal before acking: if we crash between the two, the
            # worker resubmits and lands in the duplicate branch above.
            self.journal.write_unit(delivery)
            self.completed[unit_id] = delivery
            self.leases.pop(unit_id, None)
            self.quarantined.discard(unit_id)
            registry.inc("campaign.units.completed")
            registry.inc("campaign.graphs.completed", float(len(delivery.results)))
            return {"accepted": True, "duplicate": False, "done": self._done_locked()}

    def status(self) -> dict:
        """``campaign.status``: one self-describing progress snapshot."""
        with self._lock:
            self._expire_leases_locked()
            return {
                "campaign": self.digest,
                "n_units": len(self.units),
                "n_graphs": self.spec.n_graphs,
                "completed": len(self.completed),
                "quarantined": len(self.quarantined),
                "leased": len(self.leases),
                "workers": len(self.workers),
                "attempts": sum(self.attempts.values()),
                "done": self._done_locked(),
            }

    # ------------------------------------------------------------------
    # lease expiry / quarantine
    # ------------------------------------------------------------------
    def expire_leases(self) -> int:
        """Drop expired leases; returns how many were reclaimed."""
        with self._lock:
            return self._expire_leases_locked()

    def _expire_leases_locked(self) -> int:
        now = self._clock()
        expired = [l for l in self.leases.values() if l.expires_at <= now]
        for lease in expired:
            del self.leases[lease.unit_id]
            get_registry().inc("campaign.leases.expired")
            self._log.warning(
                "lease on %s (worker %s, attempt %d) expired; rescheduling",
                lease.unit_id,
                lease.worker,
                lease.attempt,
            )
        return len(expired)

    def _quarantine_locked(self, unit: WorkUnit, attempts: int) -> None:
        # Attribute the quarantine to the worker whose lease last burned,
        # not whichever worker's lease request happened to trigger
        # retirement — the latter is misleading forensics.
        last_worker = self.last_worker.get(unit.unit_id, "?")
        self.journal.write_quarantine(unit.unit_id, attempts, last_worker)
        self.quarantined.add(unit.unit_id)
        get_registry().inc("campaign.units.quarantined")
        self._log.error(
            "unit %s quarantined as poison after %d attempts "
            "(last lease held by %s; graphs %s..%s)",
            unit.unit_id,
            attempts,
            last_worker,
            unit.graph_ids()[0],
            unit.graph_ids()[-1],
        )

    def _done_locked(self) -> bool:
        return len(self.completed) + len(self.quarantined) == len(self.units)

    @property
    def done(self) -> bool:
        with self._lock:
            return self._done_locked()

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def merge(self) -> SuiteResult:
        """Concatenate accepted deliveries in unit order.

        The exactly-once argument: every unit appears at most once in
        ``completed`` (first delivery wins, enforced under the lock and
        in journal replay), every completed unit contributes its results
        in its own deterministic order, and units are visited here in the
        spec's unit order — which is the serial suite order.  Hence the
        merged list is byte-identical to a serial ``run_suite`` over the
        same spec.  Quarantined units contribute one ``kind="poison"``
        whole-graph failure per graph instead of silently shrinking the
        result.
        """
        with self._lock:
            results = []
            failures: list[FailureRecord] = []
            for unit in self.units:
                uid = unit.unit_id
                if uid in self.completed:
                    delivery = self.completed[uid]
                    results.extend(delivery.results)
                    failures.extend(delivery.failures)
                elif uid in self.quarantined:
                    attempts = self.attempts.get(uid, self.spec.max_attempts)
                    for graph_id in unit.graph_ids():
                        failures.append(
                            FailureRecord(
                                graph_id=graph_id,
                                heuristic=None,
                                kind="poison",
                                exc_type="PoisonUnitError",
                                message=(
                                    f"unit {uid} quarantined after "
                                    f"{attempts} lease grants with no delivery"
                                ),
                                seed=self.spec.seed,
                                attempts=attempts,
                            )
                        )
            return SuiteResult(results, failures=failures)


class CampaignServer:
    """Thread-per-connection NDJSON server wrapping a coordinator.

    Threads (not asyncio, unlike the scheduling daemon): a coordinator
    serves a handful of workers making a request every few seconds, so
    connection concurrency is tiny and the blocking style keeps the
    failure-handling paths — the whole point of this tier — obvious.  A
    background reaper expires leases every ``lease_ttl / 4`` so crashed
    workers are detected even when no one calls ``lease``.
    """

    def __init__(
        self,
        coordinator: CampaignCoordinator,
        address: "tuple[str, int] | str",
    ) -> None:
        self.coordinator = coordinator
        self.address = address
        self._sock: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._log = get_logger("campaign")
        self._started = time.time()

    @property
    def bound_address(self) -> "tuple[str, int] | str":
        """The actual listen address (resolves port 0 after :meth:`start`)."""
        assert self._sock is not None, "server not started"
        if isinstance(self.address, str):
            return self.address
        host, port = self._sock.getsockname()[:2]
        return (host, port)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if isinstance(self.address, str):
            # Same live-endpoint probe as `repro serve`: a coordinator
            # killed -9 leaves its socket file behind, and `campaign
            # resume` must rebind it — but never steal a live one.
            from ..service.server import guard_unix_socket_path

            guard_unix_socket_path(self.address)
            try:
                Path(self.address).unlink()
            except OSError:
                pass
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(self.address)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(self.address)
        sock.listen(64)
        sock.settimeout(0.2)  # so the accept loop notices stop()
        self._sock = sock
        accept = threading.Thread(
            target=self._accept_loop, name="campaign-accept", daemon=True
        )
        reaper = threading.Thread(
            target=self._reaper_loop, name="campaign-reaper", daemon=True
        )
        self._threads = [accept, reaper]
        accept.start()
        reaper.start()
        self._log.info(
            "campaign coordinator listening on %r (%d units)",
            self.address,
            len(self.coordinator.units),
        )

    def stop(self) -> None:
        self._stop.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        for t in self._threads:
            t.join(timeout=2.0)
        if isinstance(self.address, str):
            try:
                Path(self.address).unlink()
            except OSError:
                pass

    def serve_until_done(self, poll: float = 0.2, grace: float = 0.0) -> None:
        """Block until every unit is completed or quarantined.

        ``grace`` keeps the server answering for that many more seconds
        after completion, so straggler workers — e.g. one retrying a
        delivery whose ack a coordinator crash swallowed — get their
        ``duplicate``/``done`` answer and exit promptly instead of
        burning their whole patience budget against a vanished socket.
        """
        while not self._stop.is_set() and not self.coordinator.done:
            time.sleep(poll)
        if grace > 0 and not self._stop.is_set():
            self._stop.wait(grace)

    # ------------------------------------------------------------------
    # loops
    # ------------------------------------------------------------------
    def _reaper_loop(self) -> None:
        interval = max(0.05, self.coordinator.lease_ttl / 4.0)
        while not self._stop.wait(interval):
            self.coordinator.expire_leases()

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            t = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            t.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(None)
        file = conn.makefile("rwb")
        try:
            while not self._stop.is_set():
                line = file.readline(MAX_FRAME_BYTES + 1)
                if not line:
                    return
                response = self._handle_line(line)
                file.write(encode_response(response))
                file.flush()
        except (OSError, ValueError):
            pass  # client went away mid-frame; its lease will expire
        finally:
            try:
                file.close()
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _handle_line(self, line: bytes) -> dict:
        registry = get_registry()
        registry.inc("service.requests")
        req_id = None
        try:
            request = decode_request(line)
            req_id = request.id
            return ok_response(req_id, self._dispatch(request))
        except ProtocolError as exc:
            registry.inc("service.errors")
            return error_response(req_id, exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001 - server must not die
            registry.inc("service.errors")
            self._log.exception("internal error handling campaign request")
            return error_response(req_id, INTERNAL, f"internal error: {exc}")

    def _dispatch(self, request: Request) -> dict:
        op, params = request.op, request.params
        coord = self.coordinator
        if op in QUEUED_OPS or op == "control":
            raise ProtocolError(
                f"{op} requires a scheduling daemon (`repro serve`); this is "
                "a campaign coordinator"
            )
        if op == "health":
            return {
                "status": "ok",
                "role": "campaign",
                "campaign": coord.digest,
                "done": coord.done,
            }
        if op == "stats":
            status = coord.status()
            return {
                "role": "campaign",
                "uptime_s": time.time() - self._started,
                "counters": get_registry().counters(),
                "campaign": status,
            }
        if op == "metrics":
            from ..obs.prom import to_prometheus

            return {
                "content_type": "text/plain; version=0.0.4; charset=utf-8",
                "text": to_prometheus(get_registry().snapshot()),
            }
        if op == "campaign.status":
            return coord.status()
        worker = params.get("worker")
        if not isinstance(worker, str) or not worker:
            raise ProtocolError(f"{op} requires a non-empty 'worker' string")
        if op == "campaign.register":
            return coord.register(worker)
        if op == "campaign.lease":
            return coord.lease(worker)
        if op == "campaign.heartbeat":
            unit_id = params.get("unit_id")
            if not isinstance(unit_id, str):
                raise ProtocolError("campaign.heartbeat requires 'unit_id'")
            return coord.heartbeat(worker, unit_id)
        if op == "campaign.result":
            unit_id = params.get("unit_id")
            digest = params.get("digest")
            if not isinstance(unit_id, str) or not isinstance(digest, str):
                raise ProtocolError(
                    "campaign.result requires 'unit_id' and 'digest'"
                )
            results = params.get("results")
            failures = params.get("failures", [])
            if not isinstance(results, list) or not isinstance(failures, list):
                raise ProtocolError(
                    "campaign.result requires list 'results' (and 'failures')"
                )
            return coord.submit(worker, unit_id, digest, results, failures)
        raise ProtocolError(f"unknown campaign op {op!r}")
