"""Campaign specs and their deterministic sharding into work units.

A *campaign* is a suite run described by data instead of by a live process:
which graph classes (suite cells), how many graphs per cell, the master
seed and size range, which heuristics, and the worker-side fault policy.
Because :func:`repro.generation.suites.generate_suite` derives every
cell's RNG from the cell identity and the master seed alone, any process
holding the spec can regenerate any slice of the campaign bit-identically
— which is what lets workers on other hosts receive a few hundred bytes
of JSON instead of megabytes of graphs.

Sharding: :meth:`CampaignSpec.units` splits the campaign into
:class:`WorkUnit` objects — contiguous index ranges within one cell, in
the exact order the serial suite generator yields graphs.  Concatenating
unit results in unit order therefore reproduces the serial
``run_suite`` result *byte for byte* (the campaign tier's core
invariant).  Every unit carries a digest binding it to the spec digest
plus its coordinates, so a result delivery can be verified against the
exact work it claims to answer — the exactly-once merge key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from itertools import islice

from ..core import wire
from ..generation.suites import SuiteCell, SuiteGraph, generate_suite, suite_cells

__all__ = [
    "CampaignSpec",
    "WorkUnit",
    "unit_graphs",
    "campaign_suite",
]


@dataclass(frozen=True)
class WorkUnit:
    """One leasable slice of a campaign: cell × ``[start, stop)`` indices.

    ``index`` is the unit's position in the campaign's deterministic unit
    order (also the merge order).  ``digest`` binds the unit to its spec:
    two campaigns sharing a cell never produce interchangeable units.
    """

    index: int
    band: int
    anchor: int
    weight_range: tuple[int, int]
    start: int
    stop: int
    digest: str

    @property
    def unit_id(self) -> str:
        return f"u{self.index:05d}"

    @property
    def cell(self) -> SuiteCell:
        return SuiteCell(self.band, self.anchor, self.weight_range)

    @property
    def n_graphs(self) -> int:
        return self.stop - self.start

    def graph_ids(self) -> list[str]:
        """The suite graph ids this unit covers (derivable without
        generating the graphs — ids encode only cell and index)."""
        lo, hi = self.weight_range
        return [
            f"b{self.band}-a{self.anchor}-w{lo}_{hi}-#{i}"
            for i in range(self.start, self.stop)
        ]

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "cell": [self.band, self.anchor, list(self.weight_range)],
            "start": self.start,
            "stop": self.stop,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkUnit":
        band, anchor, wr = data["cell"]
        return cls(
            index=data["index"],
            band=band,
            anchor=anchor,
            weight_range=tuple(wr),
            start=data["start"],
            stop=data["stop"],
            digest=data["digest"],
        )


@dataclass(frozen=True)
class CampaignSpec:
    """Everything needed to regenerate and execute a campaign anywhere.

    ``cells=None`` means the paper's full 60-cell Table-1 grid.
    ``heuristics=None`` means the paper's five (in paper order).
    ``unit_size`` graphs per work unit balances lease granularity (a crash
    loses at most one unit's work) against coordination overhead.
    ``timeout``/``retries`` are the worker-side per-schedule-call fault
    policy (always run under ``on_error="record"`` so per-heuristic
    failures travel back as data).  ``max_attempts`` lease grants without
    a completed delivery quarantine the unit as poison.
    """

    graphs_per_cell: int = 35
    seed: int = 19940815
    n_tasks_range: tuple[int, int] = (40, 100)
    cells: "tuple[tuple[int, int, tuple[int, int]], ...] | None" = None
    heuristics: "tuple[str, ...] | None" = None
    validate: bool = False
    unit_size: int = 5
    timeout: "float | None" = None
    retries: int = 0
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.graphs_per_cell < 1:
            raise ValueError("graphs_per_cell must be positive")
        if self.unit_size < 1:
            raise ValueError("unit_size must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")

    # ------------------------------------------------------------------
    # serialization / identity
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "graphs_per_cell": self.graphs_per_cell,
            "seed": self.seed,
            "n_tasks_range": list(self.n_tasks_range),
            "cells": (
                None
                if self.cells is None
                else [[b, a, list(wr)] for b, a, wr in self.cells]
            ),
            "heuristics": None if self.heuristics is None else list(self.heuristics),
            "validate": self.validate,
            "unit_size": self.unit_size,
            "timeout": self.timeout,
            "retries": self.retries,
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        cells = data.get("cells")
        heuristics = data.get("heuristics")
        return cls(
            graphs_per_cell=data["graphs_per_cell"],
            seed=data["seed"],
            n_tasks_range=tuple(data["n_tasks_range"]),
            cells=(
                None
                if cells is None
                else tuple((b, a, tuple(wr)) for b, a, wr in cells)
            ),
            heuristics=None if heuristics is None else tuple(heuristics),
            validate=data.get("validate", False),
            unit_size=data.get("unit_size", 5),
            timeout=data.get("timeout"),
            retries=data.get("retries", 0),
            max_attempts=data.get("max_attempts", 3),
        )

    def digest(self) -> str:
        """SHA-256 of the canonical spec encoding — the campaign identity.

        Uses the wire codec's canonical ``dumps`` so two processes always
        agree on the digest of the same spec.
        """
        return hashlib.sha256(
            wire.dumps(self.to_dict()).encode("utf-8")
        ).hexdigest()

    # ------------------------------------------------------------------
    # sharding
    # ------------------------------------------------------------------
    def suite_cells(self) -> list[SuiteCell]:
        """The campaign's cells, in deterministic (serial suite) order."""
        if self.cells is None:
            return suite_cells()
        return [SuiteCell(b, a, tuple(wr)) for b, a, wr in self.cells]

    def units(self) -> list[WorkUnit]:
        """The campaign's work units in merge order.

        Each cell is chunked into ``unit_size`` index ranges; cells appear
        in serial suite order, so unit order == serial graph order.
        """
        spec_digest = self.digest()
        units: list[WorkUnit] = []
        for cell in self.suite_cells():
            for start in range(0, self.graphs_per_cell, self.unit_size):
                stop = min(start + self.unit_size, self.graphs_per_cell)
                index = len(units)
                coords = wire.dumps(
                    {
                        "spec": spec_digest,
                        "cell": [cell.band, cell.anchor, list(cell.weight_range)],
                        "start": start,
                        "stop": stop,
                    }
                )
                units.append(
                    WorkUnit(
                        index=index,
                        band=cell.band,
                        anchor=cell.anchor,
                        weight_range=cell.weight_range,
                        start=start,
                        stop=stop,
                        digest=hashlib.sha256(coords.encode("utf-8")).hexdigest(),
                    )
                )
        return units

    @property
    def n_graphs(self) -> int:
        return self.graphs_per_cell * len(self.suite_cells())


def unit_graphs(spec: CampaignSpec, unit: WorkUnit) -> list[SuiteGraph]:
    """Regenerate exactly the graphs of ``unit``, bit-identical anywhere.

    A cell's graphs are a deterministic sequence of its cell RNG, so
    indices ``[start, stop)`` are reached by generating the cell's prefix
    and keeping the tail — cheap at suite graph sizes, and the only way to
    honour the generator's sequential-draw semantics.
    """
    gen = generate_suite(
        graphs_per_cell=unit.stop,
        seed=spec.seed,
        n_tasks_range=spec.n_tasks_range,
        cells=[unit.cell],
    )
    return list(islice(gen, unit.start, unit.stop))


def campaign_suite(spec: CampaignSpec) -> list[SuiteGraph]:
    """The whole campaign's suite in serial order (the merge baseline)."""
    return list(
        generate_suite(
            graphs_per_cell=spec.graphs_per_cell,
            seed=spec.seed,
            n_tasks_range=spec.n_tasks_range,
            cells=spec.suite_cells(),
        )
    )
