"""Clan decomposition: the graph-parsing substrate behind CLANS."""

from .decomposition import clan_parse_tree, decompose, is_clan
from .parse_tree import ClanKind, ClanNode
from .properties import (
    ClanTreeStats,
    enumerate_clans,
    tree_statistics,
    verify_parse_tree,
)
from .relations import ABOVE, BELOW, UNRELATED, RelationMatrix

__all__ = [
    "decompose",
    "clan_parse_tree",
    "is_clan",
    "ClanKind",
    "ClanNode",
    "RelationMatrix",
    "enumerate_clans",
    "verify_parse_tree",
    "tree_statistics",
    "ClanTreeStats",
    "ABOVE",
    "BELOW",
    "UNRELATED",
]
