"""Clan-theoretic utilities: enumeration oracle, verification, statistics.

* :func:`enumerate_clans` — all clans of a (small) graph by direct
  application of the definition; the brute-force oracle the decomposition
  is tested against.
* :func:`verify_parse_tree` — full structural audit of a parse tree
  against its graph (used by property tests and available to users who
  build trees by other means).
* :func:`tree_statistics` — shape summary of a clan parse tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..core.exceptions import DecompositionError
from ..core.taskgraph import Task, TaskGraph
from .decomposition import is_clan
from .parse_tree import ClanKind, ClanNode
from .relations import RelationMatrix, UNRELATED

__all__ = ["enumerate_clans", "verify_parse_tree", "ClanTreeStats", "tree_statistics"]

#: Enumeration is exponential; refuse beyond this size.
MAX_ENUMERATION_TASKS = 12


def enumerate_clans(
    graph: TaskGraph, *, include_trivial: bool = False
) -> list[frozenset[Task]]:
    """All clans of ``graph`` by brute force (test oracle; n <= 12).

    ``include_trivial`` adds the singletons and the full vertex set.
    Results are sorted by (size, repr) for determinism.
    """
    n = graph.n_tasks
    if n > MAX_ENUMERATION_TASKS:
        raise DecompositionError(
            f"enumeration is exponential; refusing {n} tasks "
            f"(max {MAX_ENUMERATION_TASKS})"
        )
    tasks = graph.tasks()
    rm = RelationMatrix(graph)
    found: list[frozenset[Task]] = []
    sizes = range(1 if include_trivial else 2, n + (1 if include_trivial else 0))
    for k in sizes:
        for combo in combinations(tasks, k):
            cand = set(combo)
            if _is_clan_fast(rm, cand, tasks):
                found.append(frozenset(cand))
    if include_trivial and n >= 1:
        found.append(frozenset(tasks))
    return sorted(found, key=lambda c: (len(c), sorted(map(repr, c))))


def _is_clan_fast(rm: RelationMatrix, cand: set[Task], tasks: list[Task]) -> bool:
    members = list(cand)
    x0 = members[0]
    for z in tasks:
        if z in cand:
            continue
        r0 = rm.rel(z, x0)
        for x in members[1:]:
            if rm.rel(z, x) != r0:
                return False
    return True


def verify_parse_tree(graph: TaskGraph, tree: ClanNode) -> None:
    """Audit a clan parse tree against its graph.

    Checks: leaves are exactly the tasks; children partition each node;
    every node is a clan; LINEAR children are totally ordered; INDEPENDENT
    children are pairwise unrelated; PRIMITIVE nodes have >= 3 children and
    no two children merge into a clan.  Raises
    :class:`DecompositionError` on the first violation.
    """
    leaves = sorted(map(repr, (leaf.task for leaf in tree.leaves())))
    if leaves != sorted(map(repr, graph.tasks())):
        raise DecompositionError("parse-tree leaves do not match graph tasks")
    rm = RelationMatrix(graph)
    for node in tree.walk():
        if not is_clan(graph, node.members):
            raise DecompositionError(f"{node!r} is not a clan")
        if node.is_leaf:
            continue
        union: set[Task] = set()
        for child in node.children:
            if union & child.members:
                raise DecompositionError(f"overlapping children in {node!r}")
            union |= child.members
        if union != set(node.members):
            raise DecompositionError(f"children do not cover {node!r}")
        reps = [next(iter(c.members)) for c in node.children]
        if node.kind is ClanKind.LINEAR:
            for a, b in zip(reps, reps[1:]):
                if not rm.is_ancestor(a, b):
                    raise DecompositionError(
                        f"LINEAR children out of order in {node!r}"
                    )
        elif node.kind is ClanKind.INDEPENDENT:
            for a, b in combinations(reps, 2):
                if rm.rel(a, b) != UNRELATED:
                    raise DecompositionError(
                        f"INDEPENDENT children related in {node!r}"
                    )
        else:  # PRIMITIVE
            if len(node.children) < 3:
                raise DecompositionError(
                    f"PRIMITIVE node with {len(node.children)} children"
                )
            for a, b in combinations(node.children, 2):
                if is_clan(graph, a.members | b.members):
                    raise DecompositionError(
                        f"two children of primitive {node!r} merge into a clan"
                    )


@dataclass(frozen=True)
class ClanTreeStats:
    """Shape summary of a clan parse tree."""

    n_leaves: int
    n_linear: int
    n_independent: int
    n_primitive: int
    depth: int
    max_children: int
    largest_primitive: int  # members of the biggest primitive clan (0 if none)

    @property
    def n_internal(self) -> int:
        return self.n_linear + self.n_independent + self.n_primitive


def tree_statistics(tree: ClanNode) -> ClanTreeStats:
    """Compute :class:`ClanTreeStats` for a parse tree."""
    biggest_prim = 0
    max_children = 0
    for node in tree.walk():
        if node.children:
            max_children = max(max_children, len(node.children))
        if node.kind is ClanKind.PRIMITIVE:
            biggest_prim = max(biggest_prim, node.size)
    return ClanTreeStats(
        n_leaves=tree.count(ClanKind.LEAF),
        n_linear=tree.count(ClanKind.LINEAR),
        n_independent=tree.count(ClanKind.INDEPENDENT),
        n_primitive=tree.count(ClanKind.PRIMITIVE),
        depth=tree.depth(),
        max_children=max_children,
        largest_primitive=biggest_prim,
    )
