"""Ancestor/descendant relation matrices for clan decomposition.

A clan (paper, appendix A.5) is defined through the *transitive* ancestor and
descendant relations of the DAG.  This module computes, for a task graph, the
three-valued relation every pair of vertices stands in:

* ``ABOVE``   — u is a (strict) ancestor of v,
* ``BELOW``   — u is a (strict) descendant of v,
* ``UNRELATED`` — neither (the vertices are incomparable).

The matrix is the "2-structure" whose modules are exactly the clans.
Computed with a numpy boolean reachability closure: O(n * e / word) time,
n <= a few hundred in this testbed.
"""

from __future__ import annotations

import numpy as np

from ..core.taskgraph import Task, TaskGraph

__all__ = ["Relation", "RelationMatrix", "ABOVE", "BELOW", "UNRELATED"]

UNRELATED: int = 0
ABOVE: int = 1
BELOW: int = 2

Relation = int


class RelationMatrix:
    """Pairwise ancestor/descendant relations of a DAG's vertices."""

    def __init__(self, graph: TaskGraph) -> None:
        self.tasks: list[Task] = graph.topological_order()
        self.index: dict[Task, int] = {t: i for i, t in enumerate(self.tasks)}
        n = len(self.tasks)
        # reach[i, j] == True iff there is a nonempty path i -> j.
        reach = np.zeros((n, n), dtype=bool)
        adj = np.zeros((n, n), dtype=bool)
        for u in self.tasks:
            iu = self.index[u]
            for v in graph.successors(u):
                adj[iu, self.index[v]] = True
        # Sweep in reverse topological order: reach(u) = succ(u) + reach(succ).
        for i in range(n - 1, -1, -1):
            row = adj[i].copy()
            for j in np.flatnonzero(adj[i]):
                row |= reach[j]
            reach[i] = row
        self._reach = reach
        rel = np.zeros((n, n), dtype=np.int8)
        rel[reach] = ABOVE
        rel[reach.T] = BELOW  # reach is antisymmetric on a DAG, no overlap
        self._rel = rel

    @property
    def n(self) -> int:
        return len(self.tasks)

    def rel(self, u: Task, v: Task) -> Relation:
        """Relation of ``u`` to ``v``: ABOVE if u is an ancestor of v, etc."""
        return int(self._rel[self.index[u], self.index[v]])

    def rel_idx(self, i: int, j: int) -> Relation:
        return int(self._rel[i, j])

    @property
    def matrix(self) -> np.ndarray:
        """The full int8 relation matrix (rows/cols in topological order)."""
        return self._rel

    def is_ancestor(self, u: Task, v: Task) -> bool:
        return bool(self._reach[self.index[u], self.index[v]])

    def comparable_idx(self, i: int, j: int) -> bool:
        return self._rel[i, j] != UNRELATED
