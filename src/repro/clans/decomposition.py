"""Clan decomposition of a DAG (the parse used by CLANS).

A set of vertices ``C`` is a **clan** iff every vertex outside ``C`` relates
identically — ancestor, descendant, or unrelated, in the transitive closure —
to all members of ``C`` (appendix A.5).  That makes clans exactly the
*modules* of the 2-structure captured by
:class:`~repro.clans.relations.RelationMatrix`, and the unique clan parse
tree is its modular decomposition:

* If the **comparability graph** of a clan is disconnected, the clan is
  INDEPENDENT and its children are the components (pairwise unrelated sets).
* Else if the **incomparability graph** is disconnected, the clan is LINEAR
  and its children are the co-components; for a partial order these are
  always totally ordered (orientation between two co-components is uniform:
  mixed orientations would contradict transitivity along incomparability
  paths).
* Else the clan is PRIMITIVE; its children are its maximal proper strong
  modules, computed with smallest-module closures:  the smallest module
  containing ``{v, u}`` either is the whole clan or lies inside the (unique)
  maximal strong module containing ``v``, so the union of all proper
  closures from ``v`` *is* that child.

Complexity is O(n^3) worst case, comfortably fast for the testbed's graph
sizes; all inner loops on the primitive path are vectorized over the numpy
relation matrix.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import DecompositionError
from ..core.taskgraph import Task, TaskGraph
from .parse_tree import ClanKind, ClanNode
from .relations import UNRELATED, RelationMatrix

__all__ = ["decompose", "is_clan", "clan_parse_tree"]


def clan_parse_tree(graph: TaskGraph) -> ClanNode:
    """The unique clan parse tree of ``graph`` (alias of :func:`decompose`)."""
    return decompose(graph)


def decompose(graph: TaskGraph) -> ClanNode:
    """Compute the clan parse tree of a DAG.

    Raises :class:`DecompositionError` for an empty graph (no parse exists).
    """
    if graph.n_tasks == 0:
        raise DecompositionError("cannot decompose an empty graph")
    rm = RelationMatrix(graph)
    indices = np.arange(rm.n)
    return _decompose(rm, indices)


def _decompose(rm: RelationMatrix, idx: np.ndarray) -> ClanNode:
    """Recursive modular decomposition on the vertex subset ``idx``.

    ``idx`` holds positions into ``rm.tasks`` in ascending topological order.
    """
    if len(idx) == 1:
        task = rm.tasks[int(idx[0])]
        return ClanNode(ClanKind.LEAF, frozenset([task]), task=task)

    sub = rm.matrix[np.ix_(idx, idx)]
    comparable = sub != UNRELATED  # symmetric boolean matrix

    comp_labels = _components(comparable)
    if comp_labels.max() > 0:
        children = [
            _decompose(rm, idx[comp_labels == label])
            for label in range(comp_labels.max() + 1)
        ]
        children.sort(key=lambda c: min(rm.index[t] for t in c.members))
        return _make_internal(ClanKind.INDEPENDENT, children)

    incomparable = ~comparable
    np.fill_diagonal(incomparable, False)
    co_labels = _components(incomparable)
    if co_labels.max() > 0:
        children = [
            _decompose(rm, idx[co_labels == label])
            for label in range(co_labels.max() + 1)
        ]
        # Total order between co-components: ascending minimum topological
        # index orders them (the earliest vertex of the earlier component is
        # an ancestor of the later component).
        children.sort(key=lambda c: min(rm.index[t] for t in c.members))
        _check_linear_order(rm, children)
        return _make_internal(ClanKind.LINEAR, children)

    children = [_decompose(rm, part) for part in _primitive_children(sub, idx)]
    children.sort(key=lambda c: min(rm.index[t] for t in c.members))
    return _make_internal(ClanKind.PRIMITIVE, children)


def _make_internal(kind: ClanKind, children: list[ClanNode]) -> ClanNode:
    members = frozenset().union(*(c.members for c in children))
    return ClanNode(kind, members, children)


def _components(adj: np.ndarray) -> np.ndarray:
    """Connected-component labels of a symmetric boolean adjacency matrix."""
    n = adj.shape[0]
    labels = np.full(n, -1, dtype=int)
    current = 0
    for start in range(n):
        if labels[start] != -1:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            u = stack.pop()
            for v in np.flatnonzero(adj[u]):
                if labels[v] == -1:
                    labels[v] = current
                    stack.append(int(v))
        current += 1
    return labels


def _check_linear_order(rm: RelationMatrix, children: list[ClanNode]) -> None:
    """Sanity check: consecutive linear children are uniformly ordered."""
    for a, b in zip(children, children[1:]):
        ra = next(iter(a.members))
        rb = next(iter(b.members))
        if not rm.is_ancestor(ra, rb):
            raise DecompositionError(
                "linear clan children are not totally ordered (internal error)"
            )


def _primitive_children(sub: np.ndarray, idx: np.ndarray) -> list[np.ndarray]:
    """Maximal proper strong modules of a primitive 2-structure.

    ``sub`` is the relation matrix restricted to the clan; returns global
    index arrays, one per child, partitioning ``idx``.
    """
    n = sub.shape[0]
    assigned = np.full(n, -1, dtype=int)
    parts: list[np.ndarray] = []
    for v in range(n):
        if assigned[v] != -1:
            continue
        member = np.zeros(n, dtype=bool)
        member[v] = True
        for u in range(n):
            if u == v or member[u] or assigned[u] != -1:
                continue
            closure = _smallest_module(sub, v, u)
            if not closure.all():  # proper: lies inside v's maximal module
                member |= closure
        label = len(parts)
        assigned[np.flatnonzero(member)] = label
        parts.append(idx[member])
    if len(parts) < 2:
        raise DecompositionError(
            "primitive clan produced fewer than two children (internal error)"
        )
    return parts


def _smallest_module(rel: np.ndarray, v: int, u: int) -> np.ndarray:
    """Boolean mask of the smallest module containing vertices ``v`` and ``u``.

    Wave-batched closure: whenever vertices join the module, every outside
    vertex whose relation to any of them differs from its (uniform) relation
    to the module becomes a splitter and joins in the next wave.  Each wave
    is one vectorized comparison against the batch of new columns, so the
    closure costs O(waves * k * n) numpy work for a module of size k — and
    modules that blow up to the full set do so in very few waves.
    """
    n = rel.shape[0]
    member = np.zeros(n, dtype=bool)
    member[v] = True
    member[u] = True
    # ref[z] = relation of z to the module (uniform by the closure invariant)
    ref = rel[:, v]
    new = np.array([u], dtype=np.intp)
    count = 2
    while new.size:
        splits = (rel[:, new] != ref[:, None]).any(axis=1)
        splits &= ~member
        new = np.flatnonzero(splits)
        member[new] = True
        count += new.size
        if count == n:
            break
    return member


def is_clan(graph: TaskGraph, candidate: set[Task] | frozenset[Task]) -> bool:
    """Check the paper's clan condition directly (used as a test oracle).

    ``candidate`` must be a non-empty subset of the graph's tasks.
    """
    cand = set(candidate)
    tasks = set(graph.tasks())
    if not cand or not cand <= tasks:
        raise DecompositionError("candidate must be a non-empty subset of tasks")
    rm = RelationMatrix(graph)
    outside = tasks - cand
    members = list(cand)
    x0 = members[0]
    for z in outside:
        r0 = rm.rel(z, x0)
        for x in members[1:]:
            if rm.rel(z, x) != r0:
                return False
    return True
