"""Clan decomposition of a DAG (the parse used by CLANS).

A set of vertices ``C`` is a **clan** iff every vertex outside ``C`` relates
identically — ancestor, descendant, or unrelated, in the transitive closure —
to all members of ``C`` (appendix A.5).  That makes clans exactly the
*modules* of the 2-structure captured by
:class:`~repro.clans.relations.RelationMatrix`, and the unique clan parse
tree is its modular decomposition:

* If the **comparability graph** of a clan is disconnected, the clan is
  INDEPENDENT and its children are the components (pairwise unrelated sets).
* Else if the **incomparability graph** is disconnected, the clan is LINEAR
  and its children are the co-components; for a partial order these are
  always totally ordered (orientation between two co-components is uniform:
  mixed orientations would contradict transitivity along incomparability
  paths).
* Else the clan is PRIMITIVE; its children are its maximal proper strong
  modules, computed with smallest-module closures:  the smallest module
  containing ``{v, u}`` either is the whole clan or lies inside the (unique)
  maximal strong module containing ``v``, so the union of all proper
  closures from ``v`` *is* that child.

Complexity is O(n^3) worst case, comfortably fast for the testbed's graph
sizes.  Two interchangeable backends produce the identical tree:

* the original numpy implementation, whose inner loops are vectorized over
  the int8 relation matrix; and
* an integer-bitset implementation (one Python int per vertex row) used when
  the compiled kernels are enabled — at testbed sizes (n of order 100) the
  closure waves fit in a few machine words each, and big-int and/or/xor
  beats the per-call overhead of many tiny numpy ops by a wide margin.

Both order vertices topologically, discover components in ascending
first-vertex order and seed smallest-module closures in the same (v, u)
order, so the recursion shapes — not just the final trees — coincide.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import DecompositionError
from ..core.kernels import kernels_enabled
from ..core.taskgraph import Task, TaskGraph
from .parse_tree import ClanKind, ClanNode
from .relations import UNRELATED, RelationMatrix

__all__ = ["decompose", "is_clan", "clan_parse_tree"]


def clan_parse_tree(graph: TaskGraph) -> ClanNode:
    """The unique clan parse tree of ``graph`` (alias of :func:`decompose`)."""
    return decompose(graph)


def decompose(graph: TaskGraph) -> ClanNode:
    """Compute the clan parse tree of a DAG.

    Raises :class:`DecompositionError` for an empty graph (no parse exists).
    """
    if graph.n_tasks == 0:
        raise DecompositionError("cannot decompose an empty graph")
    if kernels_enabled():
        br = _BitRelations(graph)
        return _decompose_bits(br, br.full)
    rm = RelationMatrix(graph)
    indices = np.arange(rm.n)
    return _decompose(rm, indices)


def _decompose(rm: RelationMatrix, idx: np.ndarray) -> ClanNode:
    """Recursive modular decomposition on the vertex subset ``idx``.

    ``idx`` holds positions into ``rm.tasks`` in ascending topological order.
    """
    if len(idx) == 1:
        task = rm.tasks[int(idx[0])]
        return ClanNode(ClanKind.LEAF, frozenset([task]), task=task)

    sub = rm.matrix[np.ix_(idx, idx)]
    comparable = sub != UNRELATED  # symmetric boolean matrix

    comp_labels = _components(comparable)
    if comp_labels.max() > 0:
        children = [
            _decompose(rm, idx[comp_labels == label])
            for label in range(comp_labels.max() + 1)
        ]
        children.sort(key=lambda c: min(rm.index[t] for t in c.members))
        return _make_internal(ClanKind.INDEPENDENT, children)

    incomparable = ~comparable
    np.fill_diagonal(incomparable, False)
    co_labels = _components(incomparable)
    if co_labels.max() > 0:
        children = [
            _decompose(rm, idx[co_labels == label])
            for label in range(co_labels.max() + 1)
        ]
        # Total order between co-components: ascending minimum topological
        # index orders them (the earliest vertex of the earlier component is
        # an ancestor of the later component).
        children.sort(key=lambda c: min(rm.index[t] for t in c.members))
        _check_linear_order(rm, children)
        return _make_internal(ClanKind.LINEAR, children)

    children = [_decompose(rm, part) for part in _primitive_children(sub, idx)]
    children.sort(key=lambda c: min(rm.index[t] for t in c.members))
    return _make_internal(ClanKind.PRIMITIVE, children)


def _make_internal(kind: ClanKind, children: list[ClanNode]) -> ClanNode:
    members = frozenset().union(*(c.members for c in children))
    return ClanNode(kind, members, children)


def _components(adj: np.ndarray) -> np.ndarray:
    """Connected-component labels of a symmetric boolean adjacency matrix."""
    n = adj.shape[0]
    labels = np.full(n, -1, dtype=int)
    current = 0
    for start in range(n):
        if labels[start] != -1:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            u = stack.pop()
            for v in np.flatnonzero(adj[u]):
                if labels[v] == -1:
                    labels[v] = current
                    stack.append(int(v))
        current += 1
    return labels


def _check_linear_order(rm: RelationMatrix, children: list[ClanNode]) -> None:
    """Sanity check: consecutive linear children are uniformly ordered."""
    for a, b in zip(children, children[1:]):
        ra = next(iter(a.members))
        rb = next(iter(b.members))
        if not rm.is_ancestor(ra, rb):
            raise DecompositionError(
                "linear clan children are not totally ordered (internal error)"
            )


def _primitive_children(sub: np.ndarray, idx: np.ndarray) -> list[np.ndarray]:
    """Maximal proper strong modules of a primitive 2-structure.

    ``sub`` is the relation matrix restricted to the clan; returns global
    index arrays, one per child, partitioning ``idx``.
    """
    n = sub.shape[0]
    assigned = np.full(n, -1, dtype=int)
    parts: list[np.ndarray] = []
    for v in range(n):
        if assigned[v] != -1:
            continue
        member = np.zeros(n, dtype=bool)
        member[v] = True
        for u in range(n):
            if u == v or member[u] or assigned[u] != -1:
                continue
            closure = _smallest_module(sub, v, u)
            if not closure.all():  # proper: lies inside v's maximal module
                member |= closure
        label = len(parts)
        assigned[np.flatnonzero(member)] = label
        parts.append(idx[member])
    if len(parts) < 2:
        raise DecompositionError(
            "primitive clan produced fewer than two children (internal error)"
        )
    return parts


def _smallest_module(rel: np.ndarray, v: int, u: int) -> np.ndarray:
    """Boolean mask of the smallest module containing vertices ``v`` and ``u``.

    Wave-batched closure: whenever vertices join the module, every outside
    vertex whose relation to any of them differs from its (uniform) relation
    to the module becomes a splitter and joins in the next wave.  Each wave
    is one vectorized comparison against the batch of new columns, so the
    closure costs O(waves * k * n) numpy work for a module of size k — and
    modules that blow up to the full set do so in very few waves.
    """
    n = rel.shape[0]
    member = np.zeros(n, dtype=bool)
    member[v] = True
    member[u] = True
    # ref[z] = relation of z to the module (uniform by the closure invariant)
    ref = rel[:, v]
    new = np.array([u], dtype=np.intp)
    count = 2
    while new.size:
        splits = (rel[:, new] != ref[:, None]).any(axis=1)
        splits &= ~member
        new = np.flatnonzero(splits)
        member[new] = True
        count += new.size
        if count == n:
            break
    return member


# ----------------------------------------------------------------------
# bitset backend
#
# One Python int per vertex row: bit j of ``desc[i]`` marks a strict
# descendant, etc.  Vertex numbering is the same ascending topological order
# as RelationMatrix, so "lowest set bit" == "minimum topological index" and
# the child orderings match the numpy backend exactly.
# ----------------------------------------------------------------------


class _BitRelations:
    """Transitive ancestor/descendant relations as per-vertex bitmasks."""

    __slots__ = ("tasks", "n", "full", "desc", "anc", "comp", "unrel")

    def __init__(self, graph: TaskGraph) -> None:
        tasks = graph.topological_order()
        index = {t: i for i, t in enumerate(tasks)}
        n = len(tasks)
        desc = [0] * n
        for i in range(n - 1, -1, -1):
            m = 0
            for s in graph.successors(tasks[i]):
                j = index[s]
                m |= (1 << j) | desc[j]
            desc[i] = m
        anc = [0] * n
        for i in range(n):
            m = desc[i]
            while m:
                lsb = m & -m
                anc[lsb.bit_length() - 1] |= 1 << i
                m ^= lsb
        self.tasks = tasks
        self.n = n
        self.full = (1 << n) - 1
        self.desc = desc
        self.anc = anc
        self.comp = [desc[i] | anc[i] for i in range(n)]
        self.unrel = [self.full & ~self.comp[i] & ~(1 << i) for i in range(n)]


def _mask_components(subset: int, adj: list[int]) -> list[int]:
    """Connected components of ``subset`` under symmetric adjacency ``adj``.

    Components come out in ascending order of their smallest vertex, matching
    the start-vertex scan of the numpy :func:`_components`.
    """
    comps: list[int] = []
    rest = subset
    while rest:
        comp = rest & -rest
        frontier = comp
        while frontier:
            nxt = 0
            m = frontier
            while m:
                lsb = m & -m
                nxt |= adj[lsb.bit_length() - 1]
                m ^= lsb
            frontier = nxt & rest & ~comp
            comp |= frontier
        comps.append(comp)
        rest &= ~comp
    return comps


def _decompose_bits(br: _BitRelations, subset: int) -> ClanNode:
    """Recursive modular decomposition on the vertex bitmask ``subset``."""
    if subset & (subset - 1) == 0:
        task = br.tasks[subset.bit_length() - 1]
        return ClanNode(ClanKind.LEAF, frozenset([task]), task=task)

    comps = _mask_components(subset, br.comp)
    if len(comps) > 1:
        children = [_decompose_bits(br, c) for c in comps]
        return _make_internal(ClanKind.INDEPENDENT, children)

    cocomps = _mask_components(subset, br.unrel)
    if len(cocomps) > 1:
        children = [_decompose_bits(br, c) for c in cocomps]
        # Total order between co-components: ascending minimum topological
        # index (== ascending lowest bit) orders them; verify consecutive
        # representatives are uniformly oriented.
        for a, b in zip(cocomps, cocomps[1:]):
            ra = (a & -a).bit_length() - 1
            if not br.desc[ra] & (b & -b):
                raise DecompositionError(
                    "linear clan children are not totally ordered (internal error)"
                )
        return _make_internal(ClanKind.LINEAR, children)

    parts = _primitive_children_bits(br, subset)
    children = [_decompose_bits(br, part) for part in parts]
    return _make_internal(ClanKind.PRIMITIVE, children)


def _primitive_children_bits(br: _BitRelations, subset: int) -> list[int]:
    """Maximal proper strong modules of a primitive 2-structure (as masks).

    Same (v, u) seeding order as the numpy :func:`_primitive_children`; each
    part's smallest vertex is its seed, so parts come out ascending.

    For each seed ``v`` (one per part) the splitter masks are hoisted:
    ``diffs[w]`` is the set of vertices whose relation to ``w`` differs from
    their relation to ``v`` — the vertices that agree on both are
    ``(anc[w] & anc[v]) | (desc[w] & desc[v]) | (unrel[w] & unrel[v])``.
    The closures for every ``u`` under the same ``v`` then reduce to one OR
    per newly joined vertex per wave.
    """
    parts: list[int] = []
    assigned = 0
    anc = br.anc
    desc = br.desc
    unrel = br.unrel
    diffs = [0] * br.n
    sv = subset
    while sv:
        vbit = sv & -sv
        sv ^= vbit
        if assigned & vbit:
            continue
        v = vbit.bit_length() - 1
        av, dv, uv = anc[v], desc[v], unrel[v]
        m = subset
        while m:
            lsb = m & -m
            z = lsb.bit_length() - 1
            diffs[z] = ~((anc[z] & av) | (desc[z] & dv) | (unrel[z] & uv))
            m ^= lsb
        member = vbit
        su = subset
        while su:
            ubit = su & -su
            su ^= ubit
            if ubit == vbit or member & ubit or assigned & ubit:
                continue
            closure = _smallest_module_bits(subset, vbit, ubit, diffs)
            if closure != subset:  # proper: lies inside v's maximal module
                member |= closure
        parts.append(member)
        assigned |= member
    if len(parts) < 2:
        raise DecompositionError(
            "primitive clan produced fewer than two children (internal error)"
        )
    return parts


def _smallest_module_bits(subset: int, vbit: int, ubit: int, diffs: list[int]) -> int:
    """Smallest module (within ``subset``) containing ``vbit`` and ``ubit``.

    Same wave-batched closure as the numpy :func:`_smallest_module`:
    whenever vertices join, every outside vertex whose relation to any of
    them differs from its (uniform) relation to the seed becomes a splitter
    and joins in the next wave.  ``diffs`` holds the precomputed per-vertex
    splitter masks (see :func:`_primitive_children_bits`).
    """
    member = vbit | ubit
    new = ubit
    while new:
        splitters = 0
        m = new
        while m:
            lsb = m & -m
            splitters |= diffs[lsb.bit_length() - 1]
            m ^= lsb
        add = splitters & subset & ~member
        member |= add
        new = add
        if member == subset:
            break
    return member


def is_clan(graph: TaskGraph, candidate: set[Task] | frozenset[Task]) -> bool:
    """Check the paper's clan condition directly (used as a test oracle).

    ``candidate`` must be a non-empty subset of the graph's tasks.
    """
    cand = set(candidate)
    tasks = set(graph.tasks())
    if not cand or not cand <= tasks:
        raise DecompositionError("candidate must be a non-empty subset of tasks")
    rm = RelationMatrix(graph)
    outside = tasks - cand
    members = list(cand)
    x0 = members[0]
    for z in outside:
        r0 = rm.rel(z, x0)
        for x in members[1:]:
            if rm.rel(z, x) != r0:
                return False
    return True
