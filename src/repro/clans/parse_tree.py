"""Clan parse-tree node structures.

The clan decomposition of a DAG is a rooted tree whose leaves are the graph's
tasks and whose internal nodes are clans classified as

* **LINEAR** — the children are totally ordered by the ancestor relation and
  must execute sequentially;
* **INDEPENDENT** — the children are pairwise incomparable and may execute
  concurrently;
* **PRIMITIVE** — the clan admits no linear/independent split; its children
  are its maximal proper sub-clans (strong modules).

(Appendix A.5 of the paper; "linear"/"independent"/"primitive" are the
paper's terms for what modular-decomposition literature calls series,
parallel and prime nodes.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from ..core.taskgraph import Task

__all__ = ["ClanKind", "ClanNode"]


class ClanKind(Enum):
    """Classification of a parse-tree node (appendix A.5)."""

    LEAF = "leaf"
    LINEAR = "linear"
    INDEPENDENT = "independent"
    PRIMITIVE = "primitive"


@dataclass
class ClanNode:
    """One clan in the parse tree.

    ``members`` is the frozen set of graph tasks in this clan.  For LINEAR
    nodes the children are stored in execution (ancestor-to-descendant)
    order; for INDEPENDENT nodes the order is arbitrary but deterministic;
    for PRIMITIVE nodes the children are stored in a topological order of the
    quotient.
    """

    kind: ClanKind
    members: frozenset[Task]
    children: list["ClanNode"] = field(default_factory=list)
    task: Task | None = None  # set iff kind == LEAF

    @property
    def is_leaf(self) -> bool:
        return self.kind is ClanKind.LEAF

    @property
    def size(self) -> int:
        return len(self.members)

    def leaves(self) -> Iterator["ClanNode"]:
        """All leaf descendants (including self if a leaf), left to right."""
        if self.is_leaf:
            yield self
            return
        for child in self.children:
            yield from child.leaves()

    def walk(self) -> Iterator["ClanNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def depth(self) -> int:
        """Height of the subtree (a leaf has depth 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(c.depth() for c in self.children)

    def count(self, kind: ClanKind) -> int:
        return sum(1 for node in self.walk() if node.kind is kind)

    def to_text(self, indent: str = "") -> str:
        """Human-readable rendering of the parse tree."""
        if self.is_leaf:
            return f"{indent}leaf({self.task!r})"
        label = self.kind.value.upper()
        lines = [f"{indent}{label} {{{', '.join(map(repr, sorted(self.members, key=repr)))}}}"]
        for child in self.children:
            lines.append(child.to_text(indent + "  "))
        return "\n".join(lines)

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"ClanNode(leaf, task={self.task!r})"
        return (
            f"ClanNode({self.kind.value}, size={self.size}, "
            f"n_children={len(self.children)})"
        )
