"""Path analysis on weighted task graphs.

These are the shared quantities the heuristics are built from:

* **t-level** (top level): longest path length from any source to a task,
  *excluding* the task's own execution time.  With communication, edge weights
  are counted on the path; without, only node weights.
* **b-level** (bottom level): longest path length from the start of a task to
  any sink, *including* the task's own execution time.  The paper (appendix)
  calls the communication-inclusive b-level simply ``level`` ("the length of
  the longest path from the start of n_x to an exit node"); the
  communication-free b-level is the classical Hu level.
* **ALAP time**: latest start time that does not stretch the critical path,
  used by MCP.
* **critical path**: a path realizing ``max(t-level + b-level)``.
"""

from __future__ import annotations

from collections.abc import Mapping

from .exceptions import GraphError
from .taskgraph import Task, TaskGraph

__all__ = [
    "t_levels",
    "b_levels",
    "hu_levels",
    "alap_times",
    "asap_times",
    "critical_path",
    "critical_path_length",
    "dominant_path_length",
]


def t_levels(graph: TaskGraph, *, communication: bool = True) -> dict[Task, float]:
    """Longest source-to-task path length excluding the task's own weight.

    ``communication=True`` counts edge weights along paths (the model where
    every edge crosses processors); ``False`` counts node weights only.
    """
    tl: dict[Task, float] = {}
    for t in graph.topological_order():
        best = 0.0
        for p, c in graph.in_edges(t).items():
            cand = tl[p] + graph.weight(p) + (c if communication else 0.0)
            if cand > best:
                best = cand
        tl[t] = best
    return tl


def b_levels(graph: TaskGraph, *, communication: bool = True) -> dict[Task, float]:
    """Longest task-to-sink path length including the task's own weight."""
    bl: dict[Task, float] = {}
    for t in reversed(graph.topological_order()):
        best = 0.0
        for s, c in graph.out_edges(t).items():
            cand = bl[s] + (c if communication else 0.0)
            if cand > best:
                best = cand
        bl[t] = best + graph.weight(t)
    return bl


def hu_levels(graph: TaskGraph) -> dict[Task, float]:
    """Classical Hu levels: communication-free b-levels (appendix A.4)."""
    return b_levels(graph, communication=False)


def critical_path_length(graph: TaskGraph, *, communication: bool = True) -> float:
    """Weight of the heaviest source-to-sink path (0 for an empty graph)."""
    bl = b_levels(graph, communication=communication)
    return max((bl[s] for s in graph.sources()), default=0.0)


def dominant_path_length(graph: TaskGraph) -> float:
    """Alias used in the DSC literature: communication-inclusive CP length."""
    return critical_path_length(graph, communication=True)


def critical_path(graph: TaskGraph, *, communication: bool = True) -> list[Task]:
    """One maximal-weight source-to-sink path, in execution order.

    Ties are broken deterministically by following the first maximal
    successor in iteration order.
    """
    if graph.n_tasks == 0:
        return []
    bl = b_levels(graph, communication=communication)
    node = max(graph.sources(), key=lambda s: (bl[s],))
    path = [node]
    while graph.out_degree(node):
        best_s, best_val = None, -1.0
        for s, c in graph.out_edges(node).items():
            val = bl[s] + (c if communication else 0.0)
            if val > best_val:
                best_s, best_val = s, val
        assert best_s is not None
        path.append(best_s)
        node = best_s
    return path


def asap_times(graph: TaskGraph, *, communication: bool = True) -> dict[Task, float]:
    """Earliest start times assuming unlimited processors.

    Identical to :func:`t_levels`; provided under the scheduling-literature
    name for readability at call sites.
    """
    return t_levels(graph, communication=communication)


def alap_times(
    graph: TaskGraph,
    *,
    communication: bool = True,
    deadline: float | None = None,
) -> dict[Task, float]:
    """Latest start times that keep every path within ``deadline``.

    ``deadline`` defaults to the critical-path length, which makes the ALAP
    time of every critical task equal to its ASAP time.  MCP (appendix A.2)
    computes these with all communication costs assumed incurred.
    """
    bl = b_levels(graph, communication=communication)
    cp = max(bl.values(), default=0.0)
    if deadline is None:
        deadline = cp
    elif deadline < cp:
        raise GraphError(f"deadline {deadline} below critical path length {cp}")
    return {t: deadline - bl[t] for t in graph.tasks()}


def validate_levels(graph: TaskGraph, tl: Mapping[Task, float], bl: Mapping[Task, float]) -> None:
    """Debug helper: check the defining recurrences of t/b-levels (with comm)."""
    for t in graph.tasks():
        expect_t = max(
            (tl[p] + graph.weight(p) + c for p, c in graph.in_edges(t).items()),
            default=0.0,
        )
        if abs(expect_t - tl[t]) > 1e-9:
            raise GraphError(f"t-level recurrence violated at {t!r}")
        expect_b = graph.weight(t) + max(
            (bl[s] + c for s, c in graph.out_edges(t).items()), default=0.0
        )
        if abs(expect_b - bl[t]) > 1e-9:
            raise GraphError(f"b-level recurrence violated at {t!r}")
