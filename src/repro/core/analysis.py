"""Path analysis on weighted task graphs.

These are the shared quantities the heuristics are built from:

* **t-level** (top level): longest path length from any source to a task,
  *excluding* the task's own execution time.  With communication, edge weights
  are counted on the path; without, only node weights.
* **b-level** (bottom level): longest path length from the start of a task to
  any sink, *including* the task's own execution time.  The paper (appendix)
  calls the communication-inclusive b-level simply ``level`` ("the length of
  the longest path from the start of n_x to an exit node"); the
  communication-free b-level is the classical Hu level.
* **ALAP time**: latest start time that does not stretch the critical path,
  used by MCP.
* **critical path**: a path realizing ``max(t-level + b-level)``.
"""

from __future__ import annotations

from collections.abc import Mapping
from types import MappingProxyType

from .exceptions import GraphError
from .kernels import (
    b_levels_arr,
    critical_path_idx,
    graph_index,
    kernels_enabled,
    t_levels_arr,
)
from .taskgraph import Task, TaskGraph

__all__ = [
    "t_levels",
    "b_levels",
    "hu_levels",
    "alap_times",
    "asap_times",
    "critical_path",
    "critical_path_length",
    "dominant_path_length",
    "t_levels_view",
    "b_levels_view",
    "hu_levels_view",
    "alap_times_view",
    "GraphAnalysis",
]

# ----------------------------------------------------------------------
# cached kernels
#
# The public functions below memoize their results on the graph itself
# (:meth:`TaskGraph.cached`), keyed by (quantity, communication flag), so a
# suite run that schedules one graph with five heuristics computes each
# traversal once instead of once per heuristic.  The memo table is dropped
# by any graph mutation.  ``_raw`` helpers return the *shared* cached dict:
# internal read-only consumers (and :class:`GraphAnalysis`) use them
# directly, while the public functions hand out fresh copies so existing
# callers may keep mutating their results.
# ----------------------------------------------------------------------


def _t_levels_raw(graph: TaskGraph, communication: bool) -> dict[Task, float]:
    def compute() -> dict[Task, float]:
        if kernels_enabled():
            # Same arithmetic on the compiled index; the dict is rebuilt in
            # the traversal's insertion order so iteration is unchanged.
            arr = t_levels_arr(graph, communication=communication)
            gi = graph_index(graph)
            tasks = gi.tasks
            return {tasks[i]: arr[i] for i in gi.topo_list}
        tl: dict[Task, float] = {}
        weight = graph.weight
        for t in graph.topological_order():
            best = 0.0
            for p, c in graph.in_edges(t).items():
                cand = tl[p] + weight(p) + (c if communication else 0.0)
                if cand > best:
                    best = cand
            tl[t] = best
        return tl

    return graph.cached(("t_levels", communication), compute)


def _b_levels_raw(graph: TaskGraph, communication: bool) -> dict[Task, float]:
    def compute() -> dict[Task, float]:
        if kernels_enabled():
            arr = b_levels_arr(graph, communication=communication)
            gi = graph_index(graph)
            tasks = gi.tasks
            return {tasks[i]: arr[i] for i in reversed(gi.topo_list)}
        bl: dict[Task, float] = {}
        weight = graph.weight
        for t in reversed(graph.topological_order()):
            best = 0.0
            for s, c in graph.out_edges(t).items():
                cand = bl[s] + (c if communication else 0.0)
                if cand > best:
                    best = cand
            bl[t] = best + weight(t)
        return bl

    return graph.cached(("b_levels", communication), compute)


def _alap_times_raw(graph: TaskGraph, communication: bool) -> dict[Task, float]:
    """Shared memoized ALAP dict (critical-path deadline); treat as read-only."""

    def compute() -> dict[Task, float]:
        bl = _b_levels_raw(graph, communication)
        cp = max(bl.values(), default=0.0)
        return {t: cp - bl[t] for t in graph.tasks()}

    return graph.cached(("alap_times", communication), compute)


def t_levels(graph: TaskGraph, *, communication: bool = True) -> dict[Task, float]:
    """Longest source-to-task path length excluding the task's own weight.

    ``communication=True`` counts edge weights along paths (the model where
    every edge crosses processors); ``False`` counts node weights only.
    The traversal is memoized per graph version; each call returns a fresh
    dict.
    """
    return dict(_t_levels_raw(graph, communication))


def b_levels(graph: TaskGraph, *, communication: bool = True) -> dict[Task, float]:
    """Longest task-to-sink path length including the task's own weight.

    Memoized per graph version; each call returns a fresh dict.
    """
    return dict(_b_levels_raw(graph, communication))


def hu_levels(graph: TaskGraph) -> dict[Task, float]:
    """Classical Hu levels: communication-free b-levels (appendix A.4)."""
    return b_levels(graph, communication=False)


def critical_path_length(graph: TaskGraph, *, communication: bool = True) -> float:
    """Weight of the heaviest source-to-sink path (0 for an empty graph)."""
    bl = _b_levels_raw(graph, communication)
    return max((bl[s] for s in graph.sources()), default=0.0)


def dominant_path_length(graph: TaskGraph) -> float:
    """Alias used in the DSC literature: communication-inclusive CP length."""
    return critical_path_length(graph, communication=True)


def critical_path(graph: TaskGraph, *, communication: bool = True) -> list[Task]:
    """One maximal-weight source-to-sink path, in execution order.

    Ties are broken deterministically by following the first maximal
    successor in iteration order.
    """
    if graph.n_tasks == 0:
        return []
    if kernels_enabled():
        gi = graph_index(graph)
        tasks = gi.tasks
        return [tasks[i] for i in critical_path_idx(graph, communication=communication)]
    bl = _b_levels_raw(graph, communication)
    node = max(graph.sources(), key=lambda s: (bl[s],))
    path = [node]
    while graph.out_degree(node):
        best_s, best_val = None, -1.0
        for s, c in graph.out_edges(node).items():
            val = bl[s] + (c if communication else 0.0)
            if val > best_val:
                best_s, best_val = s, val
        assert best_s is not None
        path.append(best_s)
        node = best_s
    return path


def asap_times(graph: TaskGraph, *, communication: bool = True) -> dict[Task, float]:
    """Earliest start times assuming unlimited processors.

    Identical to :func:`t_levels`; provided under the scheduling-literature
    name for readability at call sites.
    """
    return t_levels(graph, communication=communication)


def alap_times(
    graph: TaskGraph,
    *,
    communication: bool = True,
    deadline: float | None = None,
) -> dict[Task, float]:
    """Latest start times that keep every path within ``deadline``.

    ``deadline`` defaults to the critical-path length, which makes the ALAP
    time of every critical task equal to its ASAP time.  MCP (appendix A.2)
    computes these with all communication costs assumed incurred.
    """
    if deadline is None:
        return dict(_alap_times_raw(graph, communication))
    bl = _b_levels_raw(graph, communication)
    cp = max(bl.values(), default=0.0)
    if deadline < cp:
        raise GraphError(f"deadline {deadline} below critical path length {cp}")
    return {t: deadline - bl[t] for t in graph.tasks()}


def t_levels_view(
    graph: TaskGraph, *, communication: bool = True
) -> Mapping[Task, float]:
    """Read-only view of the memoized t-levels — no per-call copy.

    Hot-path variant of :func:`t_levels` for callers that only read the
    mapping; the view is backed by the graph's memo table and must not be
    mutated or held across graph mutations.
    """
    return MappingProxyType(_t_levels_raw(graph, communication))


def b_levels_view(
    graph: TaskGraph, *, communication: bool = True
) -> Mapping[Task, float]:
    """Read-only view of the memoized b-levels — no per-call copy."""
    return MappingProxyType(_b_levels_raw(graph, communication))


def hu_levels_view(graph: TaskGraph) -> Mapping[Task, float]:
    """Read-only view of the memoized Hu levels (communication-free b-levels)."""
    return b_levels_view(graph, communication=False)


def alap_times_view(
    graph: TaskGraph, *, communication: bool = True
) -> Mapping[Task, float]:
    """Read-only view of the memoized ALAP times (critical-path deadline)."""
    return MappingProxyType(_alap_times_raw(graph, communication))


class GraphAnalysis:
    """Zero-copy memoized path analyses of one graph.

    Wraps a :class:`TaskGraph` and serves ``t_levels`` / ``b_levels`` /
    ``alap_times`` / the topological order as **read-only mappings/tuples**
    backed by the graph's own memo table — no per-call copies, unlike the
    module-level functions.  The wrapper stamps the graph's
    :attr:`~TaskGraph.version` at construction and refuses to serve after a
    mutation (use :meth:`refresh` or build a new instance), so a scheduler
    holding one across a run can never read stale levels.
    """

    __slots__ = ("graph", "_stamp")

    def __init__(self, graph: TaskGraph) -> None:
        self.graph = graph
        self._stamp = graph.version

    def _check(self) -> TaskGraph:
        if self.graph.version != self._stamp:
            raise GraphError(
                "GraphAnalysis is stale: the graph was mutated "
                f"(version {self.graph.version} != stamped {self._stamp}); "
                "call refresh() after mutating"
            )
        return self.graph

    def refresh(self) -> "GraphAnalysis":
        """Re-stamp after a deliberate mutation; memos rebuild lazily."""
        self._stamp = self.graph.version
        return self

    @property
    def stale(self) -> bool:
        """Whether the underlying graph has mutated since stamping."""
        return self.graph.version != self._stamp

    def topological_order(self) -> tuple[Task, ...]:
        graph = self._check()
        return graph.cached(
            "topological_order_t", lambda: tuple(graph.topological_order())
        )

    def t_levels(self, *, communication: bool = True) -> Mapping[Task, float]:
        return MappingProxyType(_t_levels_raw(self._check(), communication))

    def b_levels(self, *, communication: bool = True) -> Mapping[Task, float]:
        return MappingProxyType(_b_levels_raw(self._check(), communication))

    def hu_levels(self) -> Mapping[Task, float]:
        return self.b_levels(communication=False)

    def critical_path_length(self, *, communication: bool = True) -> float:
        return critical_path_length(self._check(), communication=communication)

    def alap_times(self, *, communication: bool = True) -> Mapping[Task, float]:
        return MappingProxyType(_alap_times_raw(self._check(), communication))

    def __repr__(self) -> str:
        state = "stale" if self.stale else "fresh"
        return f"GraphAnalysis({self.graph!r}, {state})"


def validate_levels(graph: TaskGraph, tl: Mapping[Task, float], bl: Mapping[Task, float]) -> None:
    """Debug helper: check the defining recurrences of t/b-levels (with comm)."""
    for t in graph.tasks():
        expect_t = max(
            (tl[p] + graph.weight(p) + c for p, c in graph.in_edges(t).items()),
            default=0.0,
        )
        if abs(expect_t - tl[t]) > 1e-9:
            raise GraphError(f"t-level recurrence violated at {t!r}")
        expect_b = graph.weight(t) + max(
            (bl[s] + c for s, c in graph.out_edges(t).items()), default=0.0
        )
        if abs(expect_b - bl[t]) > 1e-9:
            raise GraphError(f"b-level recurrence violated at {t!r}")
