"""Shared execution-timing simulator.

The paper's testbed judges every heuristic under one execution model
(section 2).  The clustering heuristics (DSC, CLANS) produce *clusters* —
processor assignments with a per-processor execution order — and this module
turns such a clustering into a timed :class:`~repro.core.schedule.Schedule`
using the shared model:

    start(t) = max( processor free time,
                    max over predecessors p of
                        finish(p) + c(p, t) * [proc(p) != proc(t)] )

Communication overlaps computation (assumption 4): producers are never
blocked by sends, and multicasts are free.

Two entry points:

* :func:`simulate_ordered` — the caller supplies per-processor task orders.
* :func:`simulate_clustering` — the caller supplies only the assignment;
  orders are derived from a priority (b-level by default), which is the
  convention in the clustering literature.

Both run on the compiled :class:`~repro.core.kernels.GraphIndex` when the
kernels are enabled (the default), falling back to the original dict
implementation when they are disabled or the graph is cyclic (the kernels
need a topological order to compile, while the dict path reports cycles as
clustering deadlocks — the fallback preserves that error).  ``validate``
(default True) checks that the clustering covers exactly the graph's task
set; internal callers that construct clusterings from the graph itself pass
``validate=False`` to skip the per-call set rebuilds.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..obs.metrics import get_registry
from .analysis import _b_levels_raw
from .exceptions import CycleError, ScheduleError
from .kernels import (
    GraphIndex,
    b_levels_arr,
    graph_index,
    kernels_enabled,
    priority_topo_order_idx,
    simulate_ordered_idx,
)
from .schedule import Schedule
from .taskgraph import Task, TaskGraph

__all__ = ["simulate_ordered", "simulate_clustering", "serial_schedule"]


def _compiled(graph: TaskGraph) -> GraphIndex | None:
    """The graph's index when the kernel path applies, else None.

    Cyclic graphs return None: compilation needs a topological order, and
    the dict path must keep reporting cycles as clustering deadlocks.
    """
    if not kernels_enabled():
        return None
    try:
        return graph_index(graph)
    except CycleError:
        return None


def _validate_clusters(graph: TaskGraph, clusters: Sequence[Sequence[Task]]) -> None:
    """Check that ``clusters`` partitions exactly the graph's task set."""
    seen: dict[Task, int] = {}
    for i, cluster in enumerate(clusters):
        for t in cluster:
            if t in seen:
                raise ScheduleError(f"task {t!r} appears in more than one cluster")
            seen[t] = i
    missing = set(graph.tasks()) - set(seen)
    if missing:
        raise ScheduleError(f"tasks not clustered: {sorted(map(repr, missing))}")
    extra = set(seen) - set(graph.tasks())
    if extra:
        raise ScheduleError(f"unknown tasks clustered: {sorted(map(repr, extra))}")


def _count_run(events: int) -> None:
    registry = get_registry()
    registry.inc("simulator.runs")
    registry.inc("simulator.events", events)


def simulate_ordered(
    graph: TaskGraph,
    clusters: Sequence[Sequence[Task]],
    *,
    validate: bool = True,
) -> Schedule:
    """Time a clustering whose per-processor execution order is fixed.

    ``clusters[i]`` is the ordered task list of processor ``i``.  Every task
    must appear exactly once (checked when ``validate`` is True, the
    default; internal callers that construct the clustering from the graph's
    own task set pass ``validate=False``).  The combined constraints (DAG
    precedence plus cluster order) must be acyclic, otherwise the clustering
    deadlocks and a :class:`ScheduleError` is raised.
    """
    if validate:
        _validate_clusters(graph, clusters)

    gi = _compiled(graph)
    if gi is not None:
        index_of = gi.index_of
        clusters_idx = [[index_of[t] for t in cluster] for cluster in clusters]
        schedule, done = simulate_ordered_idx(gi, clusters_idx)
        _count_run(done)
        return schedule

    proc_of: dict[Task, int] = {}
    position: dict[Task, int] = {}
    for i, cluster in enumerate(clusters):
        for j, t in enumerate(cluster):
            proc_of[t] = i
            position[t] = j

    # Count unmet constraints per task: DAG predecessors + cluster predecessor.
    waiting: dict[Task, int] = {}
    for t in graph.tasks():
        waiting[t] = graph.in_degree(t) + (1 if position[t] > 0 else 0)
    ready = [t for t, w in waiting.items() if w == 0]

    schedule = Schedule()
    proc_free = [0.0] * len(clusters)
    done = 0
    while ready:
        t = ready.pop()
        p = proc_of[t]
        start = proc_free[p]
        for pred, c in graph.in_edges(t).items():
            arrival = schedule.finish(pred) + (c if proc_of[pred] != p else 0.0)
            if arrival > start:
                start = arrival
        schedule.place(t, p, start, graph.weight(t))
        proc_free[p] = schedule.finish(t)
        done += 1
        # release DAG successors and the next task in this cluster
        for s in graph.successors(t):
            waiting[s] -= 1
            if waiting[s] == 0:
                ready.append(s)
        nxt_pos = position[t] + 1
        if nxt_pos < len(clusters[p]):
            nxt = clusters[p][nxt_pos]
            waiting[nxt] -= 1
            if waiting[nxt] == 0:
                ready.append(nxt)
    if done != graph.n_tasks:
        raise ScheduleError(
            "clustering deadlocks: cluster orders conflict with precedence"
        )
    _count_run(done)
    return schedule


def simulate_clustering(
    graph: TaskGraph,
    assignment: Mapping[Task, int],
    *,
    priority: Mapping[Task, float] | None = None,
    validate: bool = True,
) -> Schedule:
    """Time a processor assignment, deriving per-processor execution orders.

    Tasks are laid out in a global topological order sorted by descending
    ``priority`` (communication-inclusive b-level when omitted); each
    processor executes its tasks in that order.  Because each cluster order
    is a subsequence of one global topological order, the result never
    deadlocks.  ``validate=False`` skips the assignment-coverage check for
    internal callers that assign from the graph's own task set.
    """
    if validate:
        tasks = set(graph.tasks())
        if set(assignment) != tasks:
            raise ScheduleError("assignment does not cover exactly the graph's tasks")

    gi = _compiled(graph)
    if gi is not None:
        if priority is None:
            prio = b_levels_arr(graph, communication=True)
        else:
            prio = [priority[t] for t in gi.tasks]
        order = priority_topo_order_idx(gi, prio)
        procs = sorted(set(assignment.values()))
        remap = {p: i for i, p in enumerate(procs)}
        proc_arr = [0] * gi.n
        index_of = gi.index_of
        for t, p in assignment.items():
            proc_arr[index_of[t]] = remap[p]
        clusters_idx: list[list[int]] = [[] for _ in procs]
        for i in order:
            clusters_idx[proc_arr[i]].append(i)
        schedule, done = simulate_ordered_idx(gi, clusters_idx)
        _count_run(done)
        return schedule

    if priority is None:
        priority = _b_levels_raw(graph, True)  # shared memo; read-only here

    procs = sorted(set(assignment.values()))
    remap = {p: i for i, p in enumerate(procs)}
    clusters: list[list[Task]] = [[] for _ in procs]
    for t in _priority_topological_order(graph, priority):
        clusters[remap[assignment[t]]].append(t)
    return simulate_ordered(graph, clusters, validate=False)


def serial_schedule(graph: TaskGraph) -> Schedule:
    """All tasks on processor 0 in topological order — the serial baseline."""
    return simulate_ordered(graph, [graph.topological_order()], validate=False)


def _priority_topological_order(
    graph: TaskGraph, priority: Mapping[Task, float]
) -> list[Task]:
    """Topological order breaking ties by larger priority first.

    Deterministic: secondary tie-break is insertion order via a stable sort
    on each extraction batch.
    """
    import heapq

    indeg = {t: graph.in_degree(t) for t in graph.tasks()}
    seq = {t: i for i, t in enumerate(graph.tasks())}
    heap = [(-priority[t], seq[t], t) for t in graph.tasks() if indeg[t] == 0]
    heapq.heapify(heap)
    order: list[Task] = []
    while heap:
        _, _, t = heapq.heappop(heap)
        order.append(t)
        for s in graph.successors(t):
            indeg[s] -= 1
            if indeg[s] == 0:
                heapq.heappush(heap, (-priority[s], seq[s], s))
    if len(order) != graph.n_tasks:
        raise ScheduleError("graph contains a cycle")
    return order
