"""Shared execution-timing simulator.

The paper's testbed judges every heuristic under one execution model
(section 2).  The clustering heuristics (DSC, CLANS) produce *clusters* —
processor assignments with a per-processor execution order — and this module
turns such a clustering into a timed :class:`~repro.core.schedule.Schedule`
using the shared model:

    start(t) = max( processor free time,
                    max over predecessors p of
                        finish(p) + c(p, t) * [proc(p) != proc(t)] )

Communication overlaps computation (assumption 4): producers are never
blocked by sends, and multicasts are free.

Two entry points:

* :func:`simulate_ordered` — the caller supplies per-processor task orders.
* :func:`simulate_clustering` — the caller supplies only the assignment;
  orders are derived from a priority (b-level by default), which is the
  convention in the clustering literature.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..obs.metrics import get_registry
from .analysis import b_levels
from .exceptions import ScheduleError
from .schedule import Schedule
from .taskgraph import Task, TaskGraph

__all__ = ["simulate_ordered", "simulate_clustering", "serial_schedule"]


def simulate_ordered(graph: TaskGraph, clusters: Sequence[Sequence[Task]]) -> Schedule:
    """Time a clustering whose per-processor execution order is fixed.

    ``clusters[i]`` is the ordered task list of processor ``i``.  Every task
    must appear exactly once.  The combined constraints (DAG precedence plus
    cluster order) must be acyclic, otherwise the clustering deadlocks and a
    :class:`ScheduleError` is raised.
    """
    proc_of: dict[Task, int] = {}
    position: dict[Task, int] = {}
    for i, cluster in enumerate(clusters):
        for j, t in enumerate(cluster):
            if t in proc_of:
                raise ScheduleError(f"task {t!r} appears in more than one cluster")
            proc_of[t] = i
            position[t] = j
    missing = set(graph.tasks()) - set(proc_of)
    if missing:
        raise ScheduleError(f"tasks not clustered: {sorted(map(repr, missing))}")
    extra = set(proc_of) - set(graph.tasks())
    if extra:
        raise ScheduleError(f"unknown tasks clustered: {sorted(map(repr, extra))}")

    # Count unmet constraints per task: DAG predecessors + cluster predecessor.
    waiting: dict[Task, int] = {}
    for t in graph.tasks():
        waiting[t] = graph.in_degree(t) + (1 if position[t] > 0 else 0)
    ready = [t for t, w in waiting.items() if w == 0]

    schedule = Schedule()
    proc_free = [0.0] * len(clusters)
    done = 0
    while ready:
        t = ready.pop()
        p = proc_of[t]
        start = proc_free[p]
        for pred, c in graph.in_edges(t).items():
            arrival = schedule.finish(pred) + (c if proc_of[pred] != p else 0.0)
            if arrival > start:
                start = arrival
        schedule.place(t, p, start, graph.weight(t))
        proc_free[p] = schedule.finish(t)
        done += 1
        # release DAG successors and the next task in this cluster
        for s in graph.successors(t):
            waiting[s] -= 1
            if waiting[s] == 0:
                ready.append(s)
        nxt_pos = position[t] + 1
        if nxt_pos < len(clusters[p]):
            nxt = clusters[p][nxt_pos]
            waiting[nxt] -= 1
            if waiting[nxt] == 0:
                ready.append(nxt)
    if done != graph.n_tasks:
        raise ScheduleError(
            "clustering deadlocks: cluster orders conflict with precedence"
        )
    registry = get_registry()
    registry.inc("simulator.runs")
    registry.inc("simulator.events", done)
    return schedule


def simulate_clustering(
    graph: TaskGraph,
    assignment: Mapping[Task, int],
    *,
    priority: Mapping[Task, float] | None = None,
) -> Schedule:
    """Time a processor assignment, deriving per-processor execution orders.

    Tasks are laid out in a global topological order sorted by descending
    ``priority`` (communication-inclusive b-level when omitted); each
    processor executes its tasks in that order.  Because each cluster order
    is a subsequence of one global topological order, the result never
    deadlocks.
    """
    tasks = set(graph.tasks())
    if set(assignment) != tasks:
        raise ScheduleError("assignment does not cover exactly the graph's tasks")
    if priority is None:
        priority = b_levels(graph, communication=True)

    procs = sorted(set(assignment.values()))
    remap = {p: i for i, p in enumerate(procs)}
    clusters: list[list[Task]] = [[] for _ in procs]
    for t in _priority_topological_order(graph, priority):
        clusters[remap[assignment[t]]].append(t)
    return simulate_ordered(graph, clusters)


def serial_schedule(graph: TaskGraph) -> Schedule:
    """All tasks on processor 0 in topological order — the serial baseline."""
    return simulate_ordered(graph, [graph.topological_order()])


def _priority_topological_order(
    graph: TaskGraph, priority: Mapping[Task, float]
) -> list[Task]:
    """Topological order breaking ties by larger priority first.

    Deterministic: secondary tie-break is insertion order via a stable sort
    on each extraction batch.
    """
    import heapq

    indeg = {t: graph.in_degree(t) for t in graph.tasks()}
    seq = {t: i for i, t in enumerate(graph.tasks())}
    heap = [(-priority[t], seq[t], t) for t in graph.tasks() if indeg[t] == 0]
    heapq.heapify(heap)
    order: list[Task] = []
    while heap:
        _, _, t = heapq.heappop(heap)
        order.append(t)
        for s in graph.successors(t):
            indeg[s] -= 1
            if indeg[s] == 0:
                heapq.heappush(heap, (-priority[s], seq[s], s))
    if len(order) != graph.n_tasks:
        raise ScheduleError("graph contains a cycle")
    return order
