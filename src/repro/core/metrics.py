"""Graph classification metrics from section 3 of the paper.

Three properties classify the 2100 test graphs:

* :func:`granularity` — section 3.1's formula: the mean, over non-sink tasks,
  of ``node weight / heaviest outgoing edge weight``.
* :func:`anchor_out_degree` — section 3.2: the mode of the out-degrees.
* :func:`node_weight_range` — section 3.3: ``(w_min, w_max)`` of node weights.
"""

from __future__ import annotations

import math
from collections import Counter

from .exceptions import GraphError
from .taskgraph import TaskGraph

__all__ = [
    "granularity",
    "anchor_out_degree",
    "node_weight_range",
    "GRANULARITY_BANDS",
    "granularity_band",
]

#: The paper's five granularity classes (section 3.1), as (low, high) bounds.
#: ``low <= G < high``; the outer bands are open-ended.
GRANULARITY_BANDS: tuple[tuple[float, float], ...] = (
    (0.0, 0.08),
    (0.08, 0.2),
    (0.2, 0.8),
    (0.8, 2.0),
    (2.0, math.inf),
)


def granularity(graph: TaskGraph) -> float:
    """Section 3.1 granularity: mean over non-sinks of ``w_i / max_j w_e(i,j)``.

    Sink tasks send no messages and are excluded from the average, as in the
    paper.  A non-sink task whose heaviest outgoing edge has zero weight would
    make the ratio infinite; since the generator never produces zero-weight
    edges we treat it as an error rather than returning ``inf`` silently.

    Memoized per graph version under ``"metrics.granularity"`` — the key
    :func:`repro.core.batch.batch_analyze` primes with a bitwise-identical
    vectorized computation (graphs where the value is undefined are never
    primed, so the errors above still raise here on demand).
    """
    return graph.cached("metrics.granularity", lambda: _granularity(graph))


def _granularity(graph: TaskGraph) -> float:
    terms: list[float] = []
    for t in graph.tasks():
        out = graph.out_edges(t)
        if not out:
            continue
        max_edge = max(out.values())
        if max_edge <= 0.0:
            raise GraphError(
                f"task {t!r} has only zero-weight outgoing edges; "
                "granularity is undefined"
            )
        terms.append(graph.weight(t) / max_edge)
    if not terms:
        raise GraphError("granularity undefined: graph has no edges")
    return sum(terms) / len(terms)


def granularity_band(g: float) -> int:
    """Index into :data:`GRANULARITY_BANDS` for granularity value ``g``."""
    if g < 0:
        raise GraphError(f"granularity cannot be negative: {g}")
    for i, (lo, hi) in enumerate(GRANULARITY_BANDS):
        if lo <= g < hi:
            return i
    return len(GRANULARITY_BANDS) - 1  # pragma: no cover - inf band catches all


def anchor_out_degree(graph: TaskGraph, *, include_sinks: bool = False) -> int:
    """Section 3.2: the mode of the out-degrees (the "anchor").

    Sinks have out-degree zero; since the anchor is meant to measure program
    *branching*, sinks are excluded by default.  Ties between equally common
    degrees are broken toward the smaller degree, deterministically.
    """
    degrees = [
        graph.out_degree(t)
        for t in graph.tasks()
        if include_sinks or graph.out_degree(t) > 0
    ]
    if not degrees:
        raise GraphError("anchor out-degree undefined: no qualifying tasks")
    counts = Counter(degrees)
    best = max(counts.values())
    return min(d for d, c in counts.items() if c == best)


def node_weight_range(graph: TaskGraph) -> tuple[float, float]:
    """Section 3.3: ``(min, max)`` task weight in the graph."""
    if graph.n_tasks == 0:
        raise GraphError("node weight range undefined: empty graph")
    ws = [graph.weight(t) for t in graph.tasks()]
    return (min(ws), max(ws))
