"""Descriptive statistics for task graphs and schedules.

The paper classifies graphs by three metrics (section 3); this module adds
the wider set of descriptive statistics a testbed report needs: shape
measures for graphs (height, width, inherent parallelism, communication
ratio) and quality measures for schedules (idle fractions, cross-processor
traffic, load balance).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .analysis import critical_path_length
from .exceptions import GraphError
from .schedule import Schedule
from .taskgraph import TaskGraph

__all__ = ["GraphStats", "ScheduleStats", "graph_stats", "schedule_stats"]


@dataclass(frozen=True)
class GraphStats:
    """Structural summary of a weighted DAG."""

    n_tasks: int
    n_edges: int
    n_sources: int
    n_sinks: int
    serial_time: float
    cp_length: float  # communication-inclusive critical path
    cp_length_comm_free: float
    inherent_parallelism: float  # serial_time / comm-free CP
    height: int  # number of precedence levels
    width: int  # largest number of tasks on one level
    total_comm: float
    comm_to_comp: float
    out_degree_distribution: dict[int, int] = field(hash=False, default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.n_tasks} tasks / {self.n_edges} edges, "
            f"height {self.height}, width {self.width}, "
            f"parallelism {self.inherent_parallelism:.2f}, "
            f"comm/comp {self.comm_to_comp:.2f}"
        )


@dataclass(frozen=True)
class ScheduleStats:
    """Quality summary of a schedule under the paper's model."""

    makespan: float
    n_processors: int
    speedup: float
    efficiency: float
    mean_busy_fraction: float  # mean over used processors
    min_busy_fraction: float
    max_busy_fraction: float
    load_imbalance: float  # max proc work / mean proc work
    crossing_edges: int  # edges whose endpoints sit on different processors
    crossing_comm: float  # summed weight of those edges
    comm_fraction: float  # crossing comm / total comm (0 if no comm)

    def summary(self) -> str:
        return (
            f"makespan {self.makespan:g} on {self.n_processors} procs, "
            f"speedup {self.speedup:.2f}, eff {self.efficiency:.2f}, "
            f"busy {self.mean_busy_fraction:.0%}, "
            f"{self.crossing_edges} crossing edges "
            f"({self.comm_fraction:.0%} of comm weight)"
        )


def graph_stats(graph: TaskGraph) -> GraphStats:
    """Compute :class:`GraphStats`; raises on an empty graph."""
    if graph.n_tasks == 0:
        raise GraphError("no statistics for an empty graph")
    # precedence levels: longest hop-count path from any source
    level: dict = {}
    for t in graph.topological_order():
        preds = graph.predecessors(t)
        level[t] = 1 + max((level[p] for p in preds), default=-1)
    widths = Counter(level.values())
    total_comm = sum(graph.edge_weight(u, v) for u, v in graph.edges())
    serial = graph.serial_time()
    cp_free = critical_path_length(graph, communication=False)
    return GraphStats(
        n_tasks=graph.n_tasks,
        n_edges=graph.n_edges,
        n_sources=len(graph.sources()),
        n_sinks=len(graph.sinks()),
        serial_time=serial,
        cp_length=critical_path_length(graph, communication=True),
        cp_length_comm_free=cp_free,
        inherent_parallelism=serial / cp_free if cp_free else 1.0,
        height=max(level.values()) + 1,
        width=max(widths.values()),
        total_comm=total_comm,
        comm_to_comp=total_comm / serial if serial else 0.0,
        out_degree_distribution=dict(
            sorted(Counter(graph.out_degree(t) for t in graph.tasks()).items())
        ),
    )


def schedule_stats(graph: TaskGraph, schedule: Schedule) -> ScheduleStats:
    """Compute :class:`ScheduleStats` for a schedule of ``graph``.

    The schedule is validated first, so the statistics always describe a
    feasible execution.
    """
    schedule.validate(graph)
    span = schedule.makespan
    procs = schedule.processors
    busy = {
        p: sum(st.finish - st.start for st in schedule.tasks_on(p)) for p in procs
    }
    fractions = [busy[p] / span if span else 0.0 for p in procs]
    mean_work = sum(busy.values()) / len(procs)
    crossing = [
        (u, v)
        for u, v in graph.edges()
        if schedule.processor_of(u) != schedule.processor_of(v)
    ]
    crossing_comm = sum(graph.edge_weight(u, v) for u, v in crossing)
    total_comm = sum(graph.edge_weight(u, v) for u, v in graph.edges())
    return ScheduleStats(
        makespan=span,
        n_processors=len(procs),
        speedup=schedule.speedup(graph),
        efficiency=schedule.efficiency(graph),
        mean_busy_fraction=sum(fractions) / len(fractions),
        min_busy_fraction=min(fractions),
        max_busy_fraction=max(fractions),
        load_imbalance=max(busy.values()) / mean_work if mean_work else 1.0,
        crossing_edges=len(crossing),
        crossing_comm=crossing_comm,
        comm_fraction=crossing_comm / total_comm if total_comm else 0.0,
    )
