"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A task graph is malformed or an operation on it is invalid."""


class CycleError(GraphError):
    """The directed graph contains a cycle and therefore is not a DAG."""


class ScheduleError(ReproError):
    """A schedule is invalid under the paper's execution model."""


class DecompositionError(ReproError):
    """Clan (modular) decomposition failed an internal invariant."""


class GenerationError(ReproError):
    """Random graph generation could not satisfy the requested constraints."""


class AdversarialError(ReproError):
    """Adversarial search, replay or instance storage failed."""
