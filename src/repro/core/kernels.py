"""Indexed graph kernels: CSR-compiled hot paths.

The schedulers' inner loops — level computation, the simulator timing rule,
ready-list maintenance — originally walked ``dict[Task, dict[Task, float]]``
adjacency with hashable-object keys.  This module compiles a
:class:`~repro.core.taskgraph.TaskGraph` once per mutation version into a
:class:`GraphIndex`: dense integer task ids (insertion order, so id ``i``
equals the ``seq`` tie-break index the schedulers already use), CSR
predecessor/successor adjacency (``array('l')``/``array('d')``, no numpy
dependency), and node/edge cost vectors.  The kernels below then run on flat
lists of floats and ints — cache-friendly integer arithmetic instead of
hash-table churn — and translate back to ``Task``-keyed structures only at
the boundary.

Bit-exactness contract: every kernel performs the *same floating-point
operations in the same order* as the dict implementation it replaces
(associativity is not assumed — e.g. ``tl[p] + w[p] + c`` is never folded
into ``tl[p] + (w[p] + c)``), so levels, schedules and serialized suite
results are byte-identical between the two paths.  The equivalence is
enforced by ``tests/test_kernels.py`` and by ``benchmarks/bench_kernels.py``.

Fallback semantics: the kernels require a DAG (compilation topologically
orders the ids).  Callers that must preserve historical behaviour on cyclic
input (the public simulator entry points) catch :class:`CycleError` and fall
back to the dict path.  Setting ``REPRO_KERNELS=0`` in the environment — or
using :func:`use_kernels` in tests — disables the kernels globally; the dict
implementations are kept alongside and produce identical results, so the
switch is a debugging aid and an A/B lever for benchmarks, not a behaviour
change.

Observability: each compile is timed into the ``kernels.compile`` timer and
index reuse shows up as ``kernels.cache.hits`` / ``kernels.cache.misses``
counters, so ``repro stats`` reveals whether indexes are being recompiled
(e.g. a workload that mutates graphs between schedule calls).
"""

from __future__ import annotations

import os
from array import array
from bisect import insort
from contextlib import contextmanager
from heapq import heapify, heappop, heappush
from typing import Iterator

from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .exceptions import ScheduleError
from .schedule import Schedule, _LazySchedule
from .taskgraph import TaskGraph

__all__ = [
    "GraphIndex",
    "graph_index",
    "discard_index",
    "kernels_enabled",
    "use_kernels",
    "t_levels_arr",
    "b_levels_arr",
    "alap_arr",
    "critical_path_idx",
    "priority_topo_order_idx",
    "simulate_ordered_idx",
    "descendant_masks",
    "IndexedPool",
]

_ENV_FLAG = os.environ.get("REPRO_KERNELS", "1").strip().lower()
_enabled: bool = _ENV_FLAG not in ("0", "false", "off", "no")


def kernels_enabled() -> bool:
    """Whether the compiled-kernel paths are active (default: yes).

    Disabled by ``REPRO_KERNELS=0`` in the environment or temporarily by
    :func:`use_kernels`; when off, every caller runs its dict implementation
    and produces identical results.
    """
    return _enabled


@contextmanager
def use_kernels(flag: bool) -> Iterator[None]:
    """Force the kernel paths on/off within a ``with`` block (tests, benches)."""
    global _enabled
    prev = _enabled
    _enabled = bool(flag)
    try:
        yield
    finally:
        _enabled = prev


class GraphIndex:
    """A :class:`TaskGraph` compiled to topo-ordered integer ids + CSR arrays.

    Task ``tasks[i]`` has integer id ``i`` in graph insertion order — the
    same index the schedulers use as their deterministic tie-break — and
    ``topo`` lists the ids in the graph's (memoized) topological order.
    ``succ_ptr[i]:succ_ptr[i+1]`` slices ``succ_idx``/``succ_w`` to give
    task ``i``'s successors and edge costs in adjacency insertion order;
    ``pred_*`` mirrors that for predecessors.

    The compact CSR arrays (``array('l')``/``array('d')``) are the canonical
    storage; the ``*_rows`` attributes hold the same adjacency as per-node
    ``[(j, c), ...]`` lists, which CPython iterates measurably faster than
    indexed array reads — the kernels use the rows, interop uses the arrays.

    Instances are immutable snapshots: they are compiled for one graph
    version via :func:`graph_index` and never updated in place.
    """

    __slots__ = (
        "n",
        "m",
        "tasks",
        "index_of",
        "weight",
        "topo",
        "succ_ptr",
        "succ_idx",
        "succ_w",
        "pred_ptr",
        "pred_idx",
        "pred_w",
        "weights",
        "topo_list",
        "succ_rows",
        "pred_rows",
        "in_degree",
        "out_degree",
        "source_ids",
    )

    def __init__(self, graph: TaskGraph) -> None:
        tasks = graph.tasks()
        index_of = {t: i for i, t in enumerate(tasks)}
        n = len(tasks)
        self.n = n
        self.tasks = tasks
        self.index_of = index_of
        weights = [graph.weight(t) for t in tasks]
        self.weights = weights
        self.weight = array("d", weights)

        succ_ptr = array("l", [0] * (n + 1))
        pred_ptr = array("l", [0] * (n + 1))
        succ_idx: list[int] = []
        succ_w: list[float] = []
        pred_idx: list[int] = []
        pred_w: list[float] = []
        succ_rows: list[list[tuple[int, float]]] = []
        pred_rows: list[list[tuple[int, float]]] = []
        for i, t in enumerate(tasks):
            srow = [(index_of[s], c) for s, c in graph.out_edges(t).items()]
            prow = [(index_of[p], c) for p, c in graph.in_edges(t).items()]
            succ_rows.append(srow)
            pred_rows.append(prow)
            for j, c in srow:
                succ_idx.append(j)
                succ_w.append(c)
            for j, c in prow:
                pred_idx.append(j)
                pred_w.append(c)
            succ_ptr[i + 1] = len(succ_idx)
            pred_ptr[i + 1] = len(pred_idx)
        self.m = len(succ_idx)
        self.succ_ptr = succ_ptr
        self.succ_idx = array("l", succ_idx)
        self.succ_w = array("d", succ_w)
        self.pred_ptr = pred_ptr
        self.pred_idx = array("l", pred_idx)
        self.pred_w = array("d", pred_w)
        self.succ_rows = succ_rows
        self.pred_rows = pred_rows
        self.in_degree = [len(r) for r in pred_rows]
        self.out_degree = [len(r) for r in succ_rows]
        # raises CycleError on cyclic input — kernels require a DAG
        self.topo_list = [index_of[t] for t in graph.topological_order()]
        self.topo = array("l", self.topo_list)
        self.source_ids = [i for i in range(n) if not pred_rows[i]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphIndex(n={self.n}, m={self.m})"


_INDEX_KEY = "kernels.graph_index"


def graph_index(graph: TaskGraph) -> GraphIndex:
    """The compiled :class:`GraphIndex` of ``graph``, memoized per version.

    Compilation is keyed to the graph's mutation version through
    :meth:`TaskGraph.cached`, so a suite run that schedules one graph with
    five heuristics compiles once and the other calls are cache hits.
    Raises :class:`CycleError` on cyclic input.
    """
    registry = get_registry()
    hit = True

    def compute() -> GraphIndex:
        nonlocal hit
        hit = False
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span("kernels.compile", cat="kernels", n=graph.n_tasks):
                with registry.timer("kernels.compile"):
                    return GraphIndex(graph)
        with registry.timer("kernels.compile"):
            return GraphIndex(graph)

    gi = graph.cached(_INDEX_KEY, compute)
    registry.inc("kernels.cache.hits" if hit else "kernels.cache.misses")
    return gi


def discard_index(graph: TaskGraph) -> None:
    """Drop ``graph``'s memoized :class:`GraphIndex`, if any.

    Eviction hook for size-bounded caches (the service's LRU index cache):
    a long-lived graph object otherwise pins its compiled index for life.
    The next :func:`graph_index` call recompiles and counts a miss.
    """
    graph.uncache(_INDEX_KEY)


# ----------------------------------------------------------------------
# level kernels
#
# Mirrors of repro.core.analysis's dict traversals on flat arrays.  Each is
# memoized on the graph (same invalidation as the dict memos) and returns
# the shared list — callers must treat results as read-only.
# ----------------------------------------------------------------------


def _t_levels(gi: GraphIndex, communication: bool) -> list[float]:
    tl = [0.0] * gi.n
    w = gi.weights
    rows = gi.pred_rows
    if communication:
        for t in gi.topo_list:
            best = 0.0
            for j, c in rows[t]:
                cand = tl[j] + w[j] + c
                if cand > best:
                    best = cand
            tl[t] = best
    else:
        for t in gi.topo_list:
            best = 0.0
            for j, _ in rows[t]:
                cand = tl[j] + w[j] + 0.0
                if cand > best:
                    best = cand
            tl[t] = best
    return tl


def _b_levels(gi: GraphIndex, communication: bool) -> list[float]:
    bl = [0.0] * gi.n
    w = gi.weights
    rows = gi.succ_rows
    if communication:
        for t in reversed(gi.topo_list):
            best = 0.0
            for j, c in rows[t]:
                cand = bl[j] + c
                if cand > best:
                    best = cand
            bl[t] = best + w[t]
    else:
        for t in reversed(gi.topo_list):
            best = 0.0
            for j, _ in rows[t]:
                cand = bl[j] + 0.0
                if cand > best:
                    best = cand
            bl[t] = best + w[t]
    return bl


def t_levels_arr(graph: TaskGraph, *, communication: bool = True) -> list[float]:
    """T-levels as a read-only list indexed by task id (memoized per version)."""
    return graph.cached(
        ("kernels.t_levels", communication),
        lambda: _t_levels(graph_index(graph), communication),
    )


def b_levels_arr(graph: TaskGraph, *, communication: bool = True) -> list[float]:
    """B-levels as a read-only list indexed by task id (memoized per version)."""
    return graph.cached(
        ("kernels.b_levels", communication),
        lambda: _b_levels(graph_index(graph), communication),
    )


def alap_arr(graph: TaskGraph, *, communication: bool = True) -> list[float]:
    """ALAP start times (critical-path deadline) by task id, memoized."""

    def compute() -> list[float]:
        bl = b_levels_arr(graph, communication=communication)
        cp = max(bl, default=0.0)
        return [cp - b for b in bl]

    return graph.cached(("kernels.alap", communication), compute)


def critical_path_idx(graph: TaskGraph, *, communication: bool = True) -> list[int]:
    """One maximal-weight source-to-sink path as task ids.

    Same tie-breaking as :func:`repro.core.analysis.critical_path`: start at
    the first maximal source, follow the first maximal successor in
    adjacency order.
    """
    gi = graph_index(graph)
    if gi.n == 0:
        return []
    bl = b_levels_arr(graph, communication=communication)
    node = -1
    best = -1.0
    for s in gi.source_ids:
        if bl[s] > best:
            node, best = s, bl[s]
    path = [node]
    rows = gi.succ_rows
    while rows[node]:
        best_s, best_val = -1, -1.0
        if communication:
            for j, c in rows[node]:
                val = bl[j] + c
                if val > best_val:
                    best_s, best_val = j, val
        else:
            for j, _ in rows[node]:
                val = bl[j] + 0.0
                if val > best_val:
                    best_s, best_val = j, val
        path.append(best_s)
        node = best_s
    return path


def descendant_masks(gi: GraphIndex) -> list[int]:
    """Strict-descendant sets as int bitmasks, indexed by task id.

    Bit ``j`` of ``masks[i]`` is set iff there is a nonempty path
    ``i -> j``.  One reverse-topological sweep of cheap big-int ors; used by
    the MCP priority kernel in place of per-task hash-set DFS.
    """
    masks = [0] * gi.n
    rows = gi.succ_rows
    for i in reversed(gi.topo_list):
        m = 0
        for j, _ in rows[i]:
            m |= (1 << j) | masks[j]
        masks[i] = m
    return masks


# ----------------------------------------------------------------------
# simulator kernels
# ----------------------------------------------------------------------


def priority_topo_order_idx(gi: GraphIndex, priority: list[float]) -> list[int]:
    """Topological order of task ids, larger ``priority`` first.

    Ties break on the smaller id (= insertion order), matching the dict
    implementation's ``(-priority, seq)`` heap keys.
    """
    indeg = list(gi.in_degree)
    heap = [(-priority[i], i) for i in range(gi.n) if indeg[i] == 0]
    heapify(heap)
    order: list[int] = []
    rows = gi.succ_rows
    while heap:
        _, i = heappop(heap)
        order.append(i)
        for j, _ in rows[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                heappush(heap, (-priority[j], j))
    if len(order) != gi.n:
        raise ScheduleError("graph contains a cycle")
    return order


def simulate_ordered_idx(
    gi: GraphIndex, clusters: list[list[int]]
) -> tuple[Schedule, int]:
    """The shared timing rule on integer ids; ``clusters`` hold task ids.

    Returns ``(schedule, events)``.  Exactly mirrors the dict simulator's
    LIFO ready-stack processing so task placement order (and therefore
    serialized schedules) is unchanged.  Raises :class:`ScheduleError` when
    the cluster orders conflict with precedence (deadlock).  The caller is
    responsible for validating that ``clusters`` partitions the task set.
    """
    n = gi.n
    proc_of = [-1] * n
    position = [0] * n
    for p, cluster in enumerate(clusters):
        for j, i in enumerate(cluster):
            proc_of[i] = p
            position[i] = j

    indeg = gi.in_degree
    waiting = [indeg[i] + (1 if position[i] > 0 else 0) for i in range(n)]
    ready = [i for i in range(n) if waiting[i] == 0]

    rows: list[tuple[object, int, float, float]] = []
    append_row = rows.append
    tasks = gi.tasks
    weights = gi.weights
    pred_rows = gi.pred_rows
    succ_rows = gi.succ_rows
    finish = [0.0] * n
    proc_free = [0.0] * len(clusters)
    done = 0
    while ready:
        i = ready.pop()
        p = proc_of[i]
        start = proc_free[p]
        for j, c in pred_rows[i]:
            arrival = finish[j] + (c if proc_of[j] != p else 0.0)
            if arrival > start:
                start = arrival
        f = start + weights[i]
        append_row((tasks[i], p, start, f))
        finish[i] = f
        proc_free[p] = f
        done += 1
        for j, _ in succ_rows[i]:
            waiting[j] -= 1
            if waiting[j] == 0:
                ready.append(j)
        nxt_pos = position[i] + 1
        cluster = clusters[p]
        if nxt_pos < len(cluster):
            nxt = cluster[nxt_pos]
            waiting[nxt] -= 1
            if waiting[nxt] == 0:
                ready.append(nxt)
    if done != n:
        raise ScheduleError(
            "clustering deadlocks: cluster orders conflict with precedence"
        )
    return _LazySchedule(rows), done


# ----------------------------------------------------------------------
# indexed processor pool
# ----------------------------------------------------------------------


class IndexedPool:
    """Integer-id port of :class:`repro.schedulers._pool.ProcessorPool`.

    Identical placement semantics, tie-breaking and floating-point
    arithmetic; predecessor lookups go through the CSR rows and task finish
    times live in a flat list instead of the ``Schedule`` mapping.  The
    ``Schedule`` is still built incrementally (same insertion order as the
    dict pool), so translation back to ``Task`` keys is free.
    """

    __slots__ = (
        "gi",
        "max_processors",
        "_rows",
        "proc_of",
        "finish",
        "_intervals",
    )

    def __init__(self, gi: GraphIndex, *, max_processors: int | None = None) -> None:
        if max_processors is not None and max_processors < 1:
            raise ValueError(f"max_processors must be >= 1, got {max_processors}")
        self.gi = gi
        self.max_processors = max_processors
        self._rows: list[tuple[object, int, float, float]] = []
        self.proc_of = [-1] * gi.n
        self.finish = [0.0] * gi.n
        self._intervals: list[list[tuple[float, float, int]]] = []

    @property
    def schedule(self) -> Schedule:
        """The placements so far, in placement order (lazily materialized)."""
        return _LazySchedule(self._rows)

    @property
    def n_processors(self) -> int:
        return len(self._intervals)

    @property
    def can_grow(self) -> bool:
        return (
            self.max_processors is None
            or len(self._intervals) < self.max_processors
        )

    def avail(self, proc: int) -> float:
        if proc >= len(self._intervals) or not self._intervals[proc]:
            return 0.0
        return self._intervals[proc][-1][1]

    def ready_time(self, i: int, proc: int) -> float:
        ready = 0.0
        finish = self.finish
        proc_of = self.proc_of
        for j, c in self.gi.pred_rows[i]:
            arrival = finish[j]
            if proc_of[j] != proc:
                arrival += c
            if arrival > ready:
                ready = arrival
        return ready

    def est_append(self, i: int, proc: int) -> float:
        return max(self.avail(proc), self.ready_time(i, proc))

    def _arrival_bounds(self, i: int) -> tuple[dict[int, float], int, float, float]:
        """Per-processor arrival maxima in O(indeg); see ``ProcessorPool``."""
        local: dict[int, float] = {}
        comm: dict[int, float] = {}
        finish = self.finish
        proc_of = self.proc_of
        for j, c in self.gi.pred_rows[i]:
            f = finish[j]
            q = proc_of[j]
            if f > local.get(q, -1.0):
                local[q] = f
            a = f + c
            if a > comm.get(q, -1.0):
                comm[q] = a
        top_proc, top, second = -1, 0.0, 0.0
        for q, a in comm.items():
            if a > top:
                if top_proc != -1:
                    second = top
                top_proc, top = q, a
            elif a > second:
                second = a
        return local, top_proc, top, second

    def _insertion_start(self, proc: int, ready: float, duration: float) -> float:
        if proc >= len(self._intervals):
            return ready
        cursor = ready
        for start, finish, _ in self._intervals[proc]:
            if cursor + duration <= start + 1e-12:
                return cursor
            if finish > cursor:
                cursor = finish
        return max(cursor, ready)

    def est_insertion(self, i: int, proc: int) -> float:
        return self._insertion_start(
            proc, self.ready_time(i, proc), self.gi.weights[i]
        )

    def place(self, i: int, proc: int, start: float) -> None:
        if proc > len(self._intervals):
            raise ValueError("processor indices must be allocated contiguously")
        if proc == len(self._intervals):
            self._intervals.append([])
        f = start + self.gi.weights[i]
        self._rows.append((self.gi.tasks[i], proc, start, f))
        self.finish[i] = f
        intervals = self._intervals[proc]
        entry = (start, f, i)
        if not intervals or entry >= intervals[-1]:
            intervals.append(entry)
        else:
            insort(intervals, entry)
        self.proc_of[i] = proc

    def best_processor(self, i: int, *, insertion: bool = False) -> tuple[int, float]:
        local, top_proc, top, second = self._arrival_bounds(i)
        n = len(self._intervals)
        duration = self.gi.weights[i] if insertion else 0.0

        def start_on(proc: int) -> float:
            ready = local.get(proc, 0.0)
            cross = second if proc == top_proc else top
            if cross > ready:
                ready = cross
            if insertion:
                return self._insertion_start(proc, ready, duration)
            return max(self.avail(proc), ready)

        if self.can_grow:
            best_proc = n
            best_start = start_on(best_proc)
        else:
            best_proc = 0
            best_start = start_on(0)
        for proc in range(n):
            start = start_on(proc)
            if start < best_start - 1e-12 or (
                abs(start - best_start) <= 1e-12 and proc < best_proc
            ):
                best_proc, best_start = proc, start
        return best_proc, best_start

    def earliest_available_processor(self) -> tuple[int, float]:
        if self.can_grow:
            best_proc = len(self._intervals)
            best_avail = 0.0
        else:
            best_proc, best_avail = 0, self.avail(0)
        for proc in range(len(self._intervals)):
            avail = self.avail(proc)
            if avail < best_avail - 1e-12 or (
                abs(avail - best_avail) <= 1e-12 and proc < best_proc
            ):
                best_proc, best_avail = proc, avail
        return best_proc, best_avail
