"""Core substrate: task graphs, analysis, metrics, schedules, simulator."""

from .analysis import (
    GraphAnalysis,
    alap_times,
    asap_times,
    b_levels,
    critical_path,
    critical_path_length,
    dominant_path_length,
    hu_levels,
    t_levels,
)
from .exceptions import (
    CycleError,
    DecompositionError,
    GenerationError,
    GraphError,
    ReproError,
    ScheduleError,
)
from .lowerbounds import best_bound, cp_bound, density_bound, work_bound
from .metrics import (
    GRANULARITY_BANDS,
    anchor_out_degree,
    granularity,
    granularity_band,
    node_weight_range,
)
from .schedule import Schedule, ScheduledTask
from .stats import GraphStats, ScheduleStats, graph_stats, schedule_stats
from .simulator import serial_schedule, simulate_clustering, simulate_ordered
from .taskgraph import TaskGraph

__all__ = [
    "TaskGraph",
    "Schedule",
    "ScheduledTask",
    "simulate_ordered",
    "simulate_clustering",
    "serial_schedule",
    "GraphAnalysis",
    "t_levels",
    "b_levels",
    "hu_levels",
    "alap_times",
    "asap_times",
    "critical_path",
    "critical_path_length",
    "dominant_path_length",
    "granularity",
    "granularity_band",
    "anchor_out_degree",
    "node_weight_range",
    "GRANULARITY_BANDS",
    "cp_bound",
    "work_bound",
    "density_bound",
    "best_bound",
    "graph_stats",
    "schedule_stats",
    "GraphStats",
    "ScheduleStats",
    "ReproError",
    "GraphError",
    "CycleError",
    "ScheduleError",
    "DecompositionError",
    "GenerationError",
]
