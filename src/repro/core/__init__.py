"""Core substrate: task graphs, analysis, metrics, schedules, simulator."""

from .analysis import (
    GraphAnalysis,
    alap_times,
    alap_times_view,
    asap_times,
    b_levels,
    b_levels_view,
    critical_path,
    critical_path_length,
    dominant_path_length,
    hu_levels,
    hu_levels_view,
    t_levels,
    t_levels_view,
)
from .exceptions import (
    CycleError,
    DecompositionError,
    GenerationError,
    GraphError,
    ReproError,
    ScheduleError,
)
from .kernels import GraphIndex, graph_index, kernels_enabled, use_kernels
from .lowerbounds import best_bound, cp_bound, density_bound, work_bound
from .metrics import (
    GRANULARITY_BANDS,
    anchor_out_degree,
    granularity,
    granularity_band,
    node_weight_range,
)
from .schedule import Schedule, ScheduledTask
from .stats import GraphStats, ScheduleStats, graph_stats, schedule_stats
from .simulator import serial_schedule, simulate_clustering, simulate_ordered
from .taskgraph import TaskGraph

__all__ = [
    "TaskGraph",
    "Schedule",
    "ScheduledTask",
    "simulate_ordered",
    "simulate_clustering",
    "serial_schedule",
    "GraphAnalysis",
    "t_levels",
    "b_levels",
    "hu_levels",
    "alap_times",
    "asap_times",
    "critical_path",
    "critical_path_length",
    "dominant_path_length",
    "t_levels_view",
    "b_levels_view",
    "hu_levels_view",
    "alap_times_view",
    "GraphIndex",
    "graph_index",
    "kernels_enabled",
    "use_kernels",
    "granularity",
    "granularity_band",
    "anchor_out_degree",
    "node_weight_range",
    "GRANULARITY_BANDS",
    "cp_bound",
    "work_bound",
    "density_bound",
    "best_bound",
    "graph_stats",
    "schedule_stats",
    "GraphStats",
    "ScheduleStats",
    "ReproError",
    "GraphError",
    "CycleError",
    "ScheduleError",
    "DecompositionError",
    "GenerationError",
]
