"""Canonical JSON wire codec for graphs and schedules.

Graphs and schedules cross process boundaries in three places — suite/result
persistence (:mod:`repro.experiments.persistence`), the CLI's JSON output
(``repro schedule --json`` / ``repro submit --json``) and the service wire
protocol (:mod:`repro.service.protocol`).  Before this module each of those
serialized independently, which made "the same schedule" a fuzzy notion; now
they all round-trip through one codec, so byte-identity between a library
call and a service response is a checkable property rather than a hope.

Exactness guarantees:

* **Floats** round-trip exactly: :func:`dumps` uses :func:`repr`-based float
  formatting (the :mod:`json` default since Python 3.1), ``allow_nan=False``
  rejects non-finite values (they are not portable JSON), and decoding never
  re-derives a stored value from arithmetic.  Notably,
  :meth:`repro.core.schedule.Schedule.from_dict` used to rebuild ``finish``
  as ``start + (finish - start)``, which drifts by 1 ULP for many inputs —
  unified here, the stored ``finish`` is restored verbatim.
* **Ordering** is deterministic: task order is graph insertion order, edge
  order is per-source adjacency insertion order, and schedule rows are in
  placement order.  ``sort_keys`` is deliberately **not** used — key order is
  meaningful (it is the evaluation order the rest of the testbed preserves)
  and sorting would destroy byte-identity with it.
* **Tuples** (composite task ids) are stored as lists and restored by
  structural thawing — the single :func:`thaw_task` used everywhere.

:func:`graph_digest` hashes the canonical encoding, giving a stable identity
for "the same graph bytes" that the service uses as its micro-batching and
index-cache key.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from typing import Any

from .schedule import Schedule
from .taskgraph import Task, TaskGraph

__all__ = [
    "dumps",
    "loads",
    "thaw_task",
    "graph_to_wire",
    "graph_from_wire",
    "schedule_to_wire",
    "schedule_from_wire",
    "graph_digest",
]


def dumps(obj: Any) -> str:
    """Canonical JSON text: compact separators, insertion-order keys,
    non-finite floats rejected.  Two equal payloads always produce the
    same bytes, so digests and byte-identity assertions are meaningful."""
    return json.dumps(obj, separators=(",", ":"), allow_nan=False)


def loads(text: str | bytes) -> Any:
    """Inverse of :func:`dumps` (plain ``json.loads``)."""
    return json.loads(text)


def thaw_task(t: Any) -> Task:
    """Restore a JSON-encoded task id (nested lists become tuples)."""
    return tuple(thaw_task(x) for x in t) if isinstance(t, list) else t


def graph_to_wire(graph: TaskGraph) -> dict:
    """``{"tasks": [[id, weight], ...], "edges": [[u, v, weight], ...]}``
    in deterministic (insertion) order — :meth:`TaskGraph.to_dict`."""
    return graph.to_dict()


def graph_from_wire(data: Mapping[str, Any]) -> TaskGraph:
    """Rebuild a graph encoded by :func:`graph_to_wire`."""
    return TaskGraph.from_dict(data)


def schedule_to_wire(schedule: Schedule) -> dict:
    """``{"placements": [[task, processor, start, finish], ...]}`` in
    placement order — :meth:`Schedule.to_dict`."""
    return schedule.to_dict()


def schedule_from_wire(data: Mapping[str, Any]) -> Schedule:
    """Rebuild a schedule encoded by :func:`schedule_to_wire`, restoring
    every stored float verbatim."""
    return Schedule.from_dict(data)


def graph_digest(wire: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a graph's canonical wire encoding.

    Stable across processes for identical payloads; used by the service as
    the micro-batching and index-cache key.
    """
    return hashlib.sha256(dumps(wire).encode("utf-8")).hexdigest()
