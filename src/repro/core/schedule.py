"""Schedules and their validation under the paper's execution model.

A schedule maps every task to a (processor, start time) pair.  Section 2 of
the paper fixes the model all heuristics are judged under:

1. same-processor communication is free; cross-processor communication costs
   the edge weight, independent of which two processors are involved;
2. unbounded pool of homogeneous, fully connected processors;
3. no task duplication (each task appears exactly once);
4. communication is asynchronous and overlaps computation — the sender is not
   blocked, messages may be multicast, and a message sent at the producer's
   finish time arrives ``edge weight`` later;
5. the objective is the makespan (latest finish time), called *parallel time*.

:meth:`Schedule.validate` checks all of these.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass

from .exceptions import ScheduleError
from .taskgraph import Task, TaskGraph

__all__ = ["ScheduledTask", "Schedule"]

_EPS = 1e-9


@dataclass(frozen=True)
class ScheduledTask:
    """Placement of one task: processor index, start and finish times."""

    task: Task
    processor: int
    start: float
    finish: float

    def __post_init__(self) -> None:
        if self.processor < 0:
            raise ScheduleError(f"negative processor for {self.task!r}")
        if self.start < 0:
            raise ScheduleError(f"negative start time for {self.task!r}")
        if self.finish < self.start - _EPS:
            raise ScheduleError(f"finish before start for {self.task!r}")


class Schedule:
    """An immutable-by-convention mapping of tasks to placements."""

    def __init__(self, placements: Mapping[Task, ScheduledTask] | None = None) -> None:
        self._by_task: dict[Task, ScheduledTask] = dict(placements or {})

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def place(self, task: Task, processor: int, start: float, duration: float) -> None:
        """Record a placement; rejects double-placement (no duplication)."""
        if task in self._by_task:
            raise ScheduleError(f"task {task!r} already placed (duplication forbidden)")
        self._by_task[task] = ScheduledTask(task, processor, start, start + duration)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_task)

    def __contains__(self, task: Task) -> bool:
        return task in self._by_task

    def __iter__(self) -> Iterator[ScheduledTask]:
        return iter(self._by_task.values())

    def __getitem__(self, task: Task) -> ScheduledTask:
        try:
            return self._by_task[task]
        except KeyError:
            raise ScheduleError(f"task {task!r} not in schedule") from None

    def processor_of(self, task: Task) -> int:
        """Processor index ``task`` is placed on."""
        return self[task].processor

    def start(self, task: Task) -> float:
        """Start time of ``task``."""
        return self[task].start

    def finish(self, task: Task) -> float:
        """Finish time of ``task``."""
        return self[task].finish

    @property
    def makespan(self) -> float:
        """Parallel time: the latest finish over all tasks (0 if empty)."""
        return max((p.finish for p in self._by_task.values()), default=0.0)

    @property
    def processors(self) -> list[int]:
        """Sorted list of processor indices actually used."""
        return sorted({p.processor for p in self._by_task.values()})

    @property
    def n_processors(self) -> int:
        return len({p.processor for p in self._by_task.values()})

    def tasks_on(self, processor: int) -> list[ScheduledTask]:
        """Placements on one processor, ordered by start time."""
        return sorted(
            (p for p in self._by_task.values() if p.processor == processor),
            key=lambda p: (p.start, p.finish),
        )

    def clusters(self) -> list[list[Task]]:
        """Per-processor task lists in execution order, by processor index."""
        return [[p.task for p in self.tasks_on(proc)] for proc in self.processors]

    # ------------------------------------------------------------------
    # derived measures (paper section 4)
    # ------------------------------------------------------------------
    def speedup(self, graph: TaskGraph) -> float:
        """``serial time / parallel time``."""
        if self.makespan <= 0:
            raise ScheduleError("speedup undefined for zero-makespan schedule")
        return graph.serial_time() / self.makespan

    def efficiency(self, graph: TaskGraph) -> float:
        """``speedup / processors used``."""
        n = self.n_processors
        if n == 0:
            raise ScheduleError("efficiency undefined for empty schedule")
        return self.speedup(graph) / n

    def busy_fraction(self) -> float:
        """Mean fraction of [0, makespan] each used processor spends computing."""
        span = self.makespan
        if span <= 0 or not self._by_task:
            return 0.0
        per_proc: dict[int, float] = {}
        for p in self._by_task.values():
            per_proc[p.processor] = per_proc.get(p.processor, 0.0) + (p.finish - p.start)
        return sum(b / span for b in per_proc.values()) / len(per_proc)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, graph: TaskGraph) -> None:
        """Check the schedule against ``graph`` under the paper's model.

        Raises :class:`ScheduleError` on: missing/extra tasks, wrong
        durations, overlapping tasks on a processor, or a task starting
        before one of its inputs has arrived.
        """
        placed = set(self._by_task)
        tasks = set(graph.tasks())
        if placed != tasks:
            missing = tasks - placed
            extra = placed - tasks
            raise ScheduleError(
                f"task set mismatch: missing={sorted(map(repr, missing))}, "
                f"extra={sorted(map(repr, extra))}"
            )
        for p in self._by_task.values():
            expect = graph.weight(p.task)
            if abs((p.finish - p.start) - expect) > _EPS:
                raise ScheduleError(
                    f"task {p.task!r} runs {p.finish - p.start}, weight is {expect}"
                )
        for proc in self.processors:
            row = self.tasks_on(proc)
            for a, b in zip(row, row[1:]):
                if b.start < a.finish - _EPS:
                    raise ScheduleError(
                        f"tasks {a.task!r} and {b.task!r} overlap on processor {proc}"
                    )
        for u, v in graph.edges():
            pu, pv = self._by_task[u], self._by_task[v]
            arrival = pu.finish
            if pu.processor != pv.processor:
                arrival += graph.edge_weight(u, v)
            if pv.start < arrival - _EPS:
                raise ScheduleError(
                    f"task {v!r} starts at {pv.start} before its input from "
                    f"{u!r} arrives at {arrival}"
                )

    def is_valid(self, graph: TaskGraph) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(graph)
        except ScheduleError:
            return False
        return True

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serializable description (tuple task ids round-trip)."""
        return {
            "placements": [
                [p.task, p.processor, p.start, p.finish]
                for p in self._by_task.values()
            ]
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Schedule":
        """Rebuild a schedule written by :meth:`to_dict`.

        The stored ``finish`` is restored verbatim rather than recomputed as
        ``start + (finish - start)`` — that round trip drifts by 1 ULP for
        many float pairs, which would break the byte-identity contract of
        the shared wire codec (:mod:`repro.core.wire`).
        """

        def thaw(t):
            return tuple(thaw(x) for x in t) if isinstance(t, list) else t

        s = cls()
        for task, proc, start, finish in data["placements"]:
            task = thaw(task)
            if task in s._by_task:
                raise ScheduleError(
                    f"task {task!r} already placed (duplication forbidden)"
                )
            s._by_task[task] = ScheduledTask(task, proc, start, finish)
        return s

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_gantt(self, width: int = 72) -> str:
        """A coarse ASCII Gantt chart, one row per processor."""
        span = self.makespan
        if span <= 0:
            return "(empty schedule)"
        scale = (width - 1) / span
        lines = []
        for proc in self.processors:
            cells = [" "] * width
            for p in self.tasks_on(proc):
                lo = int(p.start * scale)
                hi = max(lo + 1, int(p.finish * scale))
                label = str(p.task)
                for i in range(lo, min(hi, width)):
                    cells[i] = "#"
                for i, ch in enumerate(label[: hi - lo]):
                    if lo + i < width:
                        cells[lo + i] = ch
            lines.append(f"P{proc:<3d}|{''.join(cells)}|")
        lines.append(f"     0{' ' * (width - len(f'{span:g}') - 1)}{span:g}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Schedule(n_tasks={len(self)}, n_processors={self.n_processors}, "
            f"makespan={self.makespan:g})"
        )


class _LazySchedule(Schedule):
    """A schedule backed by precomputed placement rows (kernel fast path).

    The indexed kernels (:mod:`repro.core.kernels`) produce placements as
    plain ``(task, processor, start, finish)`` tuples whose invariants are
    guaranteed by construction (non-negative weights, contiguous processor
    allocation), so per-placement :class:`ScheduledTask` validation is pure
    overhead.  This subclass stores the rows and materializes the
    ``ScheduledTask`` mapping on first access — in row order, so iteration,
    ``to_dict`` and every query behave exactly as if each row had been
    :meth:`Schedule.place`-d in sequence.  Consumers that only read
    :attr:`makespan` (acceptance tests in clustering loops, for example)
    never pay for object construction at all.
    """

    def __init__(self, rows: list[tuple[Task, int, float, float]]) -> None:
        # deliberately no super().__init__(): _by_task is a lazy property
        self._rows: list[tuple[Task, int, float, float]] | None = rows
        self._mat: dict[Task, ScheduledTask] | None = None

    @property  # type: ignore[override]
    def _by_task(self) -> dict[Task, ScheduledTask]:
        mat = self._mat
        if mat is None:
            new = ScheduledTask.__new__
            setattr_ = object.__setattr__
            mat = {}
            for task, proc, start, finish in self._rows or ():
                p = new(ScheduledTask)
                setattr_(p, "task", task)
                setattr_(p, "processor", proc)
                setattr_(p, "start", start)
                setattr_(p, "finish", finish)
                mat[task] = p
            self._mat = mat
            self._rows = None  # mutations (place) go to the live dict
        return mat

    @property
    def makespan(self) -> float:
        rows = self._rows
        if rows is not None:
            return max((r[3] for r in rows), default=0.0)
        return super().makespan
