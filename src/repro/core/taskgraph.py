"""Weighted task graphs (program dependence graphs).

The paper's input model (section 2) is a directed acyclic graph in which each
vertex is a task carrying a processing-time weight and each edge carries the
communication cost paid when its endpoints run on *different* processors.

:class:`TaskGraph` is a small, dependency-free adjacency-map structure tuned
for the access patterns of the schedulers (predecessor/successor sweeps in
topological order).  Conversion to and from :mod:`networkx` is provided for
interoperability and for the generators that lean on networkx utilities.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Hashable, Iterable, Iterator, Mapping
from types import MappingProxyType
from typing import Any

import networkx as nx

from .exceptions import CycleError, GraphError

Task = Hashable
Edge = tuple[Task, Task]


class TaskGraph:
    """A weighted DAG of tasks.

    Node weights are task execution times; edge weights are communication
    costs.  Weights must be non-negative finite numbers; execution weights are
    normally positive (zero-weight pseudo tasks are permitted because some
    heuristics, e.g. MH, insert a zero-cost exit node).

    The class does not *enforce* acyclicity on every mutation (that would make
    construction quadratic); call :meth:`validate` or :meth:`topological_order`
    to check.  All library entry points validate their inputs.

    Derived-value caching: expensive read-only analyses (topological order,
    validation, the path analyses of :mod:`repro.core.analysis`) are memoized
    per graph through :meth:`cached`.  Every mutation (:meth:`add_task`,
    :meth:`add_edge`, :meth:`remove_edge`, :meth:`remove_task`) bumps
    :attr:`version` and drops the memo table, so a stale value can never be
    observed — see DESIGN.md "Caching and invalidation".
    """

    __slots__ = ("_succ", "_pred", "_weight", "_version", "_scratch", "_cache_lock")

    def __init__(self) -> None:
        self._succ: dict[Task, dict[Task, float]] = {}
        self._pred: dict[Task, dict[Task, float]] = {}
        self._weight: dict[Task, float] = {}
        #: Mutation counter; bumped (and the memo table dropped) on any change.
        self._version: int = 0
        #: Memo table for derived values; keys are owned by the computing code.
        self._scratch: dict[Any, Any] = {}
        #: Serializes memo misses so concurrent readers never compute twice.
        self._cache_lock = threading.RLock()

    # ------------------------------------------------------------------
    # derived-value cache
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by every structural change).

        Equal versions on the same object guarantee identical structure, so
        externally-held analyses (:class:`repro.core.analysis.GraphAnalysis`)
        can stamp-check their memos.
        """
        return self._version

    def _mutated(self) -> None:
        self._version += 1
        if self._scratch:
            self._scratch.clear()

    def cached(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the memoized value for ``key``, computing it on first use.

        The memo table is invalidated wholesale by any mutation.  Values are
        returned by reference: callers must treat them as immutable (the
        analysis helpers copy before handing values out to user code).

        Thread safety: the hit path is a lock-free dict read; misses are
        serialized under a per-graph reentrant lock (reentrant because
        ``compute`` may itself call :meth:`cached` for a sub-analysis), so
        concurrent readers of an unmutated graph never compute the same
        (key, version) twice — the service's worker threads and the
        :class:`~repro.core.kernels.GraphIndex` compile cache rely on this.
        Mutating a graph while another thread reads it remains undefined, as
        for any mutable container.
        """
        try:
            return self._scratch[key]
        except KeyError:
            pass
        with self._cache_lock:
            try:
                return self._scratch[key]
            except KeyError:
                value = self._scratch[key] = compute()
                return value

    def has_cached(self, key: Hashable) -> bool:
        """Whether ``key`` is currently memoized (lock-free probe).

        Lets batch producers (:func:`repro.core.batch.batch_analyze`) skip
        graphs whose analyses are already primed without recomputing them.
        """
        return key in self._scratch

    def uncache(self, key: Hashable) -> None:
        """Drop one memoized entry (no-op if absent).

        Eviction hook for externally size-bounded caches — e.g. the service
        evicting a compiled :class:`~repro.core.kernels.GraphIndex` for a
        graph object that stays alive.
        """
        with self._cache_lock:
            self._scratch.pop(key, None)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, task: Task, weight: float = 1.0) -> None:
        """Add a task with the given execution weight.

        Re-adding an existing task updates its weight in place.
        """
        _check_weight(weight, "task weight")
        if task not in self._weight:
            self._succ[task] = {}
            self._pred[task] = {}
        self._weight[task] = float(weight)
        self._mutated()

    def add_edge(self, u: Task, v: Task, weight: float = 0.0) -> None:
        """Add a dependence edge ``u -> v`` with the given communication cost.

        Both endpoints must already exist.  Re-adding an edge updates its
        weight.  Self loops are rejected.
        """
        if u == v:
            raise GraphError(f"self loop on task {u!r}")
        if u not in self._weight:
            raise GraphError(f"unknown task {u!r}")
        if v not in self._weight:
            raise GraphError(f"unknown task {v!r}")
        _check_weight(weight, "edge weight")
        self._succ[u][v] = float(weight)
        self._pred[v][u] = float(weight)
        self._mutated()

    def remove_edge(self, u: Task, v: Task) -> None:
        """Remove the edge ``u -> v``; error if absent."""
        try:
            del self._succ[u][v]
            del self._pred[v][u]
        except KeyError:
            raise GraphError(f"no edge {u!r} -> {v!r}") from None
        self._mutated()

    def remove_task(self, task: Task) -> None:
        """Remove a task and all incident edges."""
        if task not in self._weight:
            raise GraphError(f"unknown task {task!r}")
        for v in list(self._succ[task]):
            del self._pred[v][task]
        for u in list(self._pred[task]):
            del self._succ[u][task]
        del self._succ[task]
        del self._pred[task]
        del self._weight[task]
        self._mutated()

    @classmethod
    def from_weights(
        cls,
        node_weights: Mapping[Task, float],
        edge_weights: Mapping[Edge, float],
    ) -> "TaskGraph":
        """Build a graph from ``{task: weight}`` and ``{(u, v): weight}`` maps."""
        g = cls()
        for task, w in node_weights.items():
            g.add_task(task, w)
        for (u, v), w in edge_weights.items():
            g.add_edge(u, v, w)
        return g

    def copy(self) -> "TaskGraph":
        """An independent deep copy."""
        g = TaskGraph()
        g._weight = dict(self._weight)
        g._succ = {u: dict(d) for u, d in self._succ.items()}
        g._pred = {u: dict(d) for u, d in self._pred.items()}
        return g

    def subgraph(self, tasks: Iterable[Task]) -> "TaskGraph":
        """The induced subgraph on ``tasks`` (edges internal to the set)."""
        keep = set(tasks)
        unknown = keep - set(self._weight)
        if unknown:
            raise GraphError(f"unknown tasks {sorted(map(repr, unknown))}")
        g = TaskGraph()
        for t in keep:
            g.add_task(t, self._weight[t])
        for u in keep:
            for v, w in self._succ[u].items():
                if v in keep:
                    g.add_edge(u, v, w)
        return g

    def relabeled(self, mapping: Mapping[Task, Task]) -> "TaskGraph":
        """A copy with tasks renamed through ``mapping`` (must be injective)."""
        if len(set(mapping.values())) != len(mapping):
            raise GraphError("relabel mapping is not injective")
        g = TaskGraph()
        for t, w in self._weight.items():
            g.add_task(mapping.get(t, t), w)
        for u, d in self._succ.items():
            for v, w in d.items():
                g.add_edge(mapping.get(u, u), mapping.get(v, v), w)
        return g

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self._weight)

    @property
    def n_edges(self) -> int:
        return sum(len(d) for d in self._succ.values())

    def __len__(self) -> int:
        return len(self._weight)

    def __contains__(self, task: Task) -> bool:
        return task in self._weight

    def __iter__(self) -> Iterator[Task]:
        return iter(self._weight)

    def tasks(self) -> list[Task]:
        """All tasks, in insertion order."""
        return list(self._weight)

    def edges(self) -> list[Edge]:
        """All edges as (u, v) pairs."""
        return [(u, v) for u, d in self._succ.items() for v in d]

    def weight(self, task: Task) -> float:
        """Execution weight of ``task``."""
        try:
            return self._weight[task]
        except KeyError:
            raise GraphError(f"unknown task {task!r}") from None

    def edge_weight(self, u: Task, v: Task) -> float:
        """Communication cost of edge ``u -> v``."""
        try:
            return self._succ[u][v]
        except KeyError:
            raise GraphError(f"no edge {u!r} -> {v!r}") from None

    def has_edge(self, u: Task, v: Task) -> bool:
        """Whether the edge ``u -> v`` exists."""
        return v in self._succ.get(u, ())

    def successors(self, task: Task) -> list[Task]:
        """Direct successors of ``task``."""
        try:
            return list(self._succ[task])
        except KeyError:
            raise GraphError(f"unknown task {task!r}") from None

    def predecessors(self, task: Task) -> list[Task]:
        """Direct predecessors of ``task``."""
        try:
            return list(self._pred[task])
        except KeyError:
            raise GraphError(f"unknown task {task!r}") from None

    def out_edges(self, task: Task) -> Mapping[Task, float]:
        """``{successor: edge weight}`` as a **read-only view**.

        The view is zero-copy (schedulers call this once per edge-relaxation
        on hot paths); writes raise ``TypeError``.  Call ``dict(...)`` on the
        result if you need a mutable copy.  The view reflects later graph
        mutations — snapshot it if you mutate while iterating.
        """
        return MappingProxyType(self._succ[task])

    def in_edges(self, task: Task) -> Mapping[Task, float]:
        """``{predecessor: edge weight}`` as a **read-only view**.

        Same contract as :meth:`out_edges`.
        """
        return MappingProxyType(self._pred[task])

    def out_degree(self, task: Task) -> int:
        """Number of outgoing edges."""
        return len(self._succ[task])

    def in_degree(self, task: Task) -> int:
        """Number of incoming edges."""
        return len(self._pred[task])

    def sources(self) -> list[Task]:
        """Tasks with no predecessors."""
        return [t for t in self._weight if not self._pred[t]]

    def sinks(self) -> list[Task]:
        """Tasks with no successors."""
        return [t for t in self._weight if not self._succ[t]]

    def serial_time(self) -> float:
        """Total work — execution time on a single processor (paper section 4).

        Memoized per graph version under ``"serial_time"`` — the key
        :func:`repro.core.batch.batch_analyze` primes with a per-graph
        Python left-fold sum, bitwise-identical to this one.
        """
        return self.cached("serial_time", lambda: sum(self._weight.values()))

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def topological_order(self) -> list[Task]:
        """Kahn's algorithm; raises :class:`CycleError` on a cycle.

        Deterministic for a given construction order (insertion order of the
        underlying dicts is preserved).  The order is computed once per graph
        version and memoized; callers receive a fresh list each call.
        """
        return list(self.cached("topological_order", self._topological_order))

    def _topological_order(self) -> list[Task]:
        indeg = {t: len(self._pred[t]) for t in self._weight}
        ready = [t for t in self._weight if indeg[t] == 0]
        order: list[Task] = []
        while ready:
            t = ready.pop()
            order.append(t)
            for v in self._succ[t]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    ready.append(v)
        if len(order) != len(self._weight):
            raise CycleError("graph contains a cycle")
        return order

    def is_dag(self) -> bool:
        """Whether the graph is acyclic."""
        try:
            self.topological_order()
        except CycleError:
            return False
        return True

    def validate(self) -> None:
        """Check structural invariants; raise :class:`GraphError` if violated.

        A successful validation is memoized per graph version, so repeated
        validation of an unmutated graph (every scheduler validates its
        input) is O(1) after the first call.
        """
        self.cached("validated", self._validate)

    def _validate(self) -> bool:
        for u, d in self._succ.items():
            for v, w in d.items():
                if self._pred[v].get(u) != w:
                    raise GraphError(f"succ/pred mismatch on edge {u!r}->{v!r}")
        n_back = sum(len(d) for d in self._pred.values())
        if n_back != self.n_edges:
            raise GraphError("succ/pred edge count mismatch")
        self.topological_order()  # raises CycleError on cycles
        return True

    def ancestors(self, task: Task) -> set[Task]:
        """All tasks with a directed path to ``task`` (excluding itself)."""
        seen: set[Task] = set()
        stack = list(self._pred[task])
        while stack:
            u = stack.pop()
            if u not in seen:
                seen.add(u)
                stack.extend(self._pred[u])
        return seen

    def descendants(self, task: Task) -> set[Task]:
        """All tasks reachable from ``task`` (excluding itself)."""
        seen: set[Task] = set()
        stack = list(self._succ[task])
        while stack:
            u = stack.pop()
            if u not in seen:
                seen.add(u)
                stack.extend(self._succ[u])
        return seen

    def transitive_reduction(self) -> "TaskGraph":
        """A copy with every redundant edge removed.

        An edge ``u -> v`` is redundant when a longer directed path from
        ``u`` to ``v`` exists.  Weights of surviving edges are preserved.
        """
        g = self.copy()
        for u in self.tasks():
            for v in self.successors(u):
                g.remove_edge(u, v)
                if v not in g.descendants(u):
                    g.add_edge(u, v, self.edge_weight(u, v))
        return g

    # ------------------------------------------------------------------
    # interop / serialization
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """A networkx DiGraph with ``weight`` node/edge attributes."""
        g = nx.DiGraph()
        for t, w in self._weight.items():
            g.add_node(t, weight=w)
        for u, d in self._succ.items():
            for v, w in d.items():
                g.add_edge(u, v, weight=w)
        return g

    @classmethod
    def from_networkx(cls, g: nx.DiGraph, default_weight: float = 1.0) -> "TaskGraph":
        """Build from a networkx DiGraph (``weight`` attributes, defaulted)."""
        tg = cls()
        for t, data in g.nodes(data=True):
            tg.add_task(t, data.get("weight", default_weight))
        for u, v, data in g.edges(data=True):
            tg.add_edge(u, v, data.get("weight", 0.0))
        return tg

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable description.

        Tasks must be built from str/int/tuple; tuples are stored as lists
        and restored by :meth:`from_dict` (JSON has no tuple type).
        """
        return {
            "tasks": [[t, w] for t, w in self._weight.items()],
            "edges": [[u, v, w] for u, d in self._succ.items() for v, w in d.items()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TaskGraph":
        def thaw(t: Any) -> Task:
            return tuple(thaw(x) for x in t) if isinstance(t, list) else t

        g = cls()
        for t, w in data["tasks"]:
            g.add_task(thaw(t), w)
        for u, v, w in data["edges"]:
            g.add_edge(thaw(u), thaw(v), w)
        return g

    def to_dot(self) -> str:
        """Graphviz dot source with weights as labels."""
        lines = ["digraph pdg {"]
        for t, w in self._weight.items():
            lines.append(f'  "{t}" [label="{t}\\n{w:g}"];')
        for u, d in self._succ.items():
            for v, w in d.items():
                lines.append(f'  "{u}" -> "{v}" [label="{w:g}"];')
        lines.append("}")
        return "\n".join(lines)

    def __getstate__(self) -> dict[str, Any]:
        """Pickle only the primary structure.

        The predecessor map is derivable and the memo table is process-local
        state, so both are dropped — this keeps the payloads the parallel
        suite runner ships to worker processes minimal.
        """
        return {"weight": self._weight, "succ": self._succ}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._weight = state["weight"]
        self._succ = state["succ"]
        self._pred = {t: {} for t in self._weight}
        for u, d in self._succ.items():
            for v, w in d.items():
                self._pred[v][u] = w
        self._version = 0
        self._scratch = {}
        self._cache_lock = threading.RLock()

    def __repr__(self) -> str:
        return f"TaskGraph(n_tasks={self.n_tasks}, n_edges={self.n_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskGraph):
            return NotImplemented
        return self._weight == other._weight and self._succ == other._succ

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("TaskGraph is unhashable (mutable)")


def _check_weight(w: float, what: str) -> None:
    try:
        wf = float(w)
    except (TypeError, ValueError):
        raise GraphError(f"{what} must be a number, got {w!r}") from None
    if wf < 0 or wf != wf or wf in (float("inf"), float("-inf")):
        raise GraphError(f"{what} must be finite and non-negative, got {w!r}")
