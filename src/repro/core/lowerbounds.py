"""Makespan lower bounds.

The paper's central difficulty (section 1) is that scheduling is NP-hard,
so heuristics can only be compared *relatively*.  Lower bounds give a
partial absolute footing: any valid schedule's makespan is at least

* :func:`cp_bound` — the communication-free critical path (no schedule can
  shorten a dependence chain, and same-processor placement erases all
  communication);
* :func:`work_bound` — total work divided by the processor count (with an
  unbounded pool this degenerates to the largest single task weight);
* :func:`density_bound` — Fernández & Bussell's refinement for bounded
  pools: for the time window [t1, t2] of the ASAP/ALAP corridor, at least
  the work that *must* execute inside every such window has to fit into
  ``p * (t2 - t1)``.

``best_bound`` combines them.  All bounds are exercised as test oracles:
every schedule produced anywhere in the library must dominate them.
"""

from __future__ import annotations

from .analysis import alap_times_view, critical_path_length, t_levels_view
from .exceptions import GraphError
from .taskgraph import TaskGraph

__all__ = ["cp_bound", "work_bound", "density_bound", "best_bound"]


def cp_bound(graph: TaskGraph) -> float:
    """Communication-free critical path length."""
    return critical_path_length(graph, communication=False)


def work_bound(graph: TaskGraph, n_processors: int | None = None) -> float:
    """``total work / p`` for a bounded pool; max task weight if unbounded."""
    if n_processors is None:
        return max((graph.weight(t) for t in graph.tasks()), default=0.0)
    if n_processors < 1:
        raise GraphError(f"need at least one processor, got {n_processors}")
    return graph.serial_time() / n_processors


def density_bound(graph: TaskGraph, n_processors: int) -> float:
    """Fernández-style interval-density bound for ``p`` processors.

    Using communication-free ASAP times and ALAP times relative to the
    communication-free critical path ``cp``: a task with ASAP ``a`` and
    ALAP ``l`` must execute entirely inside ``[a, l + w]``.  For any
    window ``[t1, t2]`` drawn from those event points, the work that
    cannot escape the window is ``sum over tasks of
    max(0, w - max(0, t1 - a) - max(0, (l + w) - t2))`` … simplified here
    to the standard overlap form.  If that mandatory work exceeds
    ``p * (t2 - t1)``, the deadline ``cp`` is infeasible and the bound
    rises by the overflow.

    Returns ``cp + max overflow / p`` over all windows — always >= cp.
    """
    if n_processors < 1:
        raise GraphError(f"need at least one processor, got {n_processors}")
    if graph.n_tasks == 0:
        return 0.0
    asap = t_levels_view(graph, communication=False)
    alap = alap_times_view(graph, communication=False)
    cp = cp_bound(graph)
    tasks = graph.tasks()
    points = sorted({asap[t] for t in tasks} | {alap[t] + graph.weight(t) for t in tasks})
    best_overflow = 0.0
    for i, t1 in enumerate(points):
        for t2 in points[i + 1 :]:
            window = t2 - t1
            mandatory = 0.0
            for t in tasks:
                w = graph.weight(t)
                lo, hi = asap[t], alap[t] + w
                # work that must lie inside [t1, t2] however the task slides
                slack_left = max(0.0, t1 - lo)
                slack_right = max(0.0, hi - t2)
                inside = w - slack_left - slack_right
                if inside > 0:
                    mandatory += min(inside, w, window)
            overflow = mandatory / n_processors - window
            if overflow > best_overflow:
                best_overflow = overflow
    return cp + best_overflow


def best_bound(graph: TaskGraph, n_processors: int | None = None) -> float:
    """The tightest of the applicable bounds."""
    bounds = [cp_bound(graph), work_bound(graph, n_processors)]
    if n_processors is not None and graph.n_tasks <= 60:
        bounds.append(density_bound(graph, n_processors))
    return max(bounds)
