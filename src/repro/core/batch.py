"""Batched structure-of-arrays analysis: one numpy pass per graph batch.

:mod:`repro.core.kernels` removed the per-*task* Python overhead by
compiling each :class:`~repro.core.taskgraph.TaskGraph` into a CSR
:class:`~repro.core.kernels.GraphIndex`; the remaining cost on suite-sized
workloads is the per-*graph* Python loop around those kernels.  This module
removes that loop: a :class:`GraphBatch` packs many compiled indexes into
pooled structure-of-arrays buffers — concatenated CSR adjacency with
per-graph node offsets, stacked node and edge weight vectors — and computes
t/b/hu/ALAP levels, critical-path lengths and the Table-1 classification
metrics for the whole batch in vectorized numpy.

The level sweeps are *levelized wavefronts*: nodes are grouped by
longest-path depth (computed once, by a vectorized Kahn wavefront over the
concatenated CSR), and one ``gather → add → maximum.reduceat`` pass per
depth level updates every node of every graph at that level at once.  A
graph batch of B graphs with maximum depth D needs D vectorized steps
instead of ``sum(n_k)`` Python loop iterations.  The same forward depth
grouping serves the backward (b-level) sweeps: edges strictly increase
depth, so processing depth groups in reverse is a valid reverse-topological
wavefront.

**Bit-exactness contract.**  Batched results are *float-identical* to the
per-graph kernels (and therefore to the dict reference paths), not merely
close: every per-node reduction is a max over IEEE doubles (order
independent, NaN-free inputs) and every accumulation preserves the scalar
kernels' operand order, e.g. ``(tl[j] + w[j]) + c`` is computed as a gather
followed by two vector adds in that association.  Mean-style reductions
(granularity, serial time) are deliberately *not* vectorized — numpy's
pairwise summation is not bitwise-equal to Python's left fold — and use
per-graph Python ``sum`` over the packed slices instead.

**Fallback contract.**  ``REPRO_BATCH=0`` (or :func:`use_batch`) disables
the batch layer; so does ``REPRO_KERNELS=0`` (the batch runs on compiled
indexes) and an absent numpy (the import is guarded; the module degrades to
inert no-ops).  :func:`batch_analyze` is an *optional accelerator*: it
primes the same per-graph memo entries the kernels would compute lazily
(``("kernels.t_levels", True)`` etc. via ``TaskGraph.cached``), so
consumers that never call it — or call it with batching disabled — get
identical results from the per-graph paths.

Observability: each pack-and-prime pass is timed into the
``batch.analyze`` timer with ``batch.batches`` / ``batch.graphs`` /
``batch.nodes`` counters; graphs skipped because their memos are already
primed count as ``batch.already_primed``, cyclic graphs refused at compile
time count as ``batch.skipped_cyclic`` and have their input positions
reported on the returned :class:`BatchReport` (the compile itself is cached
and counted by the existing ``kernels.cache.*`` wiring).
"""

from __future__ import annotations

import os
from contextlib import contextmanager, nullcontext
from typing import Any, Iterable, Iterator, Sequence

try:  # numpy is a declared dependency, but the batch layer degrades without it
    import numpy as _np
except ImportError:  # pragma: no cover - tests monkeypatch _np instead
    _np = None

from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .exceptions import CycleError
from .kernels import GraphIndex, graph_index, kernels_enabled
from .metrics import granularity_band
from .taskgraph import TaskGraph

__all__ = [
    "BatchReport",
    "GraphBatch",
    "batch_analyze",
    "batch_enabled",
    "numpy_available",
    "use_batch",
]

_ENV_FLAG = os.environ.get("REPRO_BATCH", "1").strip().lower()
_enabled: bool = _ENV_FLAG not in ("0", "false", "off", "no")


def numpy_available() -> bool:
    """Whether numpy imported successfully at module load."""
    return _np is not None


def batch_enabled() -> bool:
    """Whether the batched analysis paths are active (default: yes).

    Requires numpy *and* the kernel layer (the batch packs compiled
    ``GraphIndex`` objects, so ``REPRO_KERNELS=0`` disables batching too).
    Disabled independently by ``REPRO_BATCH=0`` or :func:`use_batch`.
    """
    return _enabled and _np is not None and kernels_enabled()


@contextmanager
def use_batch(flag: bool) -> Iterator[None]:
    """Force the batch layer on/off within a ``with`` block (tests, benches)."""
    global _enabled
    prev = _enabled
    _enabled = bool(flag)
    try:
        yield
    finally:
        _enabled = prev


# Memo keys primed into TaskGraph.cached — must match the lazy computations
# in repro.core.kernels / repro.core.metrics / TaskGraph.serial_time.
_KEY_T = ("kernels.t_levels", True)
_KEY_B = ("kernels.b_levels", True)
_KEY_HU = ("kernels.b_levels", False)
_KEY_ALAP = ("kernels.alap", True)
_KEY_GRAN = "metrics.granularity"
_KEY_SERIAL = "serial_time"
# Keys whose presence marks a graph as already primed.  Granularity is
# excluded: it is legitimately absent on graphs where it is undefined, and
# re-batching those forever would defeat the skip.
_LEVEL_KEYS = (_KEY_T, _KEY_B, _KEY_HU, _KEY_ALAP)


def _ragged(starts: "Any", lens: "Any") -> "Any":
    """Indices of the concatenated ranges ``[starts[i], starts[i]+lens[i])``.

    The classic cumsum-of-deltas trick: an all-ones array gets a corrective
    delta written at each range boundary so its running sum walks every
    range in order.  Zero-length ranges are filtered first — several empty
    ranges in a row would otherwise collapse their boundary deltas onto one
    position.
    """
    nz = lens > 0
    if not nz.all():
        starts = starts[nz]
        lens = lens[nz]
    total = int(lens.sum())
    if total == 0:
        return _np.zeros(0, dtype=_np.intp)
    out = _np.ones(total, dtype=_np.intp)
    out[0] = starts[0]
    if len(starts) > 1:
        cum = _np.cumsum(lens[:-1])
        out[cum] = starts[1:] - (starts[:-1] + lens[:-1]) + 1
    _np.cumsum(out, out=out)
    return out


class GraphBatch:
    """Many compiled :class:`GraphIndex` objects packed as one CSR pool.

    Node ``i`` of graph ``k`` has pooled id ``node_off[k] + i``; all level
    accessors return arrays in this pooled *natural* order (use
    :meth:`per_graph` to split them back out).  Internally the pool is also
    kept in longest-path-depth order for the wavefront sweeps; the
    permutation is private.

    Instances are immutable snapshots of their indexes, like the indexes
    themselves; sweeps are memoized per batch.  Requires numpy — construct
    only when :func:`numpy_available` (callers normally go through
    :func:`batch_analyze`, which checks :func:`batch_enabled`).
    """

    __slots__ = (
        "indexes",
        "n_graphs",
        "n_nodes",
        "n_edges",
        "n_levels",
        "node_off",
        "_n_per",
        "_w",
        "_scnt",
        "_sw",
        "_sptr",
        "_order",
        "_lvl",
        "_pptr_o",
        "_psrc_o",
        "_pw_o",
        "_pwsrc_o",
        "_w_o",
        "_sptr_o",
        "_sdst_o",
        "_sw_o",
        "_fnodes",
        "_fstarts",
        "_flvl",
        "_memo",
    )

    def __init__(self, indexes: Sequence[GraphIndex]) -> None:
        if _np is None:  # pragma: no cover - guarded by batch_enabled()
            raise RuntimeError("GraphBatch requires numpy")
        np = _np
        self.indexes = list(indexes)
        gis = self.indexes
        G = len(gis)
        self.n_graphs = G
        self._memo: dict[Any, Any] = {}

        n_per = np.array([gi.n for gi in gis], dtype=np.intp)
        m_per = np.array([gi.m for gi in gis], dtype=np.intp)
        self._n_per = n_per
        node_off = np.zeros(G + 1, dtype=np.intp)
        np.cumsum(n_per, out=node_off[1:])
        self.node_off = node_off
        N = int(node_off[-1])
        M = int(m_per.sum())
        self.n_nodes = N
        self.n_edges = M

        if N == 0:
            z = np.zeros(0, dtype=np.intp)
            self._w = self._sw = np.zeros(0)
            self._scnt = self._order = z
            self._sptr = np.zeros(1, dtype=np.intp)
            self.n_levels = 0
            self._lvl = np.zeros(1, dtype=np.intp)
            self._pptr_o = self._sptr_o = np.zeros(1, dtype=np.intp)
            self._psrc_o = self._sdst_o = self._fnodes = self._fstarts = z
            self._pw_o = self._pwsrc_o = self._w_o = self._sw_o = np.zeros(0)
            self._flvl = np.zeros(1, dtype=np.intp)
            return

        # ---- pooled natural-order buffers (one concatenate per field)
        w = np.concatenate([gi.weight for gi in gis])
        self._w = w
        # Per-node degree counts: concatenate the (n_k + 1)-long ptr arrays,
        # diff, then drop the G-1 junction artifacts between graphs.
        P = np.concatenate([gi.pred_ptr for gi in gis])
        S = np.concatenate([gi.succ_ptr for gi in gis])
        bounds = np.cumsum(n_per + 1)[:-1] - 1
        pcnt = np.delete(np.diff(P), bounds)
        scnt = np.delete(np.diff(S), bounds)
        self._scnt = scnt

        node_base = np.repeat(node_off[:-1], m_per)
        if M:
            psrc = np.concatenate([gi.pred_idx for gi in gis]) + node_base
            pw = np.concatenate([gi.pred_w for gi in gis])
            sdst = np.concatenate([gi.succ_idx for gi in gis]) + node_base
            sw = np.concatenate([gi.succ_w for gi in gis])
        else:
            psrc = sdst = np.zeros(0, dtype=np.intp)
            pw = sw = np.zeros(0)
        self._sw = sw
        pptr = np.zeros(N + 1, dtype=np.intp)
        np.cumsum(pcnt, out=pptr[1:])
        sptr = np.zeros(N + 1, dtype=np.intp)
        np.cumsum(scnt, out=sptr[1:])
        self._sptr = sptr

        # ---- longest-path depth via one vectorized Kahn wavefront.
        # Depth grouping serves both sweep directions: a node has depth 0
        # iff it has no predecessors, so every pred segment at depth >= 1
        # is non-empty, and edges strictly increase depth, so reverse depth
        # order is a valid reverse-topological order.
        depth = np.zeros(N, dtype=np.intp)
        indeg = pcnt.copy()
        frontier = np.flatnonzero(indeg == 0)
        d = 0
        while frontier.size:
            depth[frontier] = d
            eidx = _ragged(sptr[frontier], scnt[frontier])
            if eidx.size == 0:
                break
            dec = np.bincount(sdst[eidx], minlength=N)
            indeg -= dec
            touched = np.flatnonzero(dec)
            frontier = touched[indeg[touched] == 0]
            d += 1
        self.n_levels = d + 1

        order = np.argsort(depth, kind="stable")
        self._order = order
        rank = np.empty(N, dtype=np.intp)
        rank[order] = np.arange(N)
        self._lvl = np.searchsorted(depth[order], np.arange(self.n_levels + 1))

        # ---- pred CSR in depth order (t-level sweeps gather by target)
        pcnt_o = pcnt[order]
        eidx = _ragged(pptr[:-1][order], pcnt_o)
        self._psrc_o = rank[psrc[eidx]]
        self._pw_o = pw[eidx]
        pptr_o = np.zeros(N + 1, dtype=np.intp)
        np.cumsum(pcnt_o, out=pptr_o[1:])
        self._pptr_o = pptr_o
        w_o = w[order]
        self._w_o = w_o
        self._pwsrc_o = w_o[self._psrc_o]

        # ---- succ CSR in depth order (b-level sweeps gather by source).
        # Sinks appear at any depth, so the backward sweep walks the
        # filtered node list `fnodes` (>= 1 successor) — its reduceat
        # segments are then always non-empty.
        scnt_o = scnt[order]
        eidx = _ragged(sptr[:-1][order], scnt_o)
        self._sdst_o = rank[sdst[eidx]]
        self._sw_o = sw[eidx]
        sptr_o = np.zeros(N + 1, dtype=np.intp)
        np.cumsum(scnt_o, out=sptr_o[1:])
        self._sptr_o = sptr_o
        fn = np.flatnonzero(scnt_o)
        self._fnodes = fn
        self._fstarts = sptr_o[:-1][fn]
        self._flvl = np.searchsorted(fn, self._lvl)

    # ------------------------------------------------------------------
    # level sweeps
    # ------------------------------------------------------------------
    def _unpermute(self, arr: "Any") -> "Any":
        out = _np.empty(self.n_nodes)
        out[self._order] = arr
        return out

    def t_levels(self, communication: bool = True) -> "Any":
        """Pooled t-levels in natural order (one float per node)."""
        key = ("t", bool(communication))
        got = self._memo.get(key)
        if got is None:
            got = self._memo[key] = self._t_sweep(communication)
        return got

    def _t_sweep(self, communication: bool) -> "Any":
        tl = _np.zeros(self.n_nodes)
        pptr, src = self._pptr_o, self._psrc_o
        pw, pwsrc, lvl = self._pw_o, self._pwsrc_o, self._lvl
        mred = _np.maximum.reduceat
        for L in range(1, self.n_levels):
            a, b = lvl[L], lvl[L + 1]
            ea, eb = pptr[a], pptr[b]
            # scalar kernel order: (tl[j] + w[j]) + c
            cand = tl[src[ea:eb]]
            cand += pwsrc[ea:eb]
            if communication:
                cand += pw[ea:eb]
            mred(cand, pptr[a:b] - ea, out=tl[a:b])
        return self._unpermute(tl)

    def b_levels(self, communication: bool = True) -> "Any":
        """Pooled b-levels (``communication=False`` gives Hu levels)."""
        key = ("b", bool(communication))
        got = self._memo.get(key)
        if got is None:
            got = self._memo[key] = self._b_sweep(communication)
        return got

    def _b_sweep(self, communication: bool) -> "Any":
        # Sinks take the scalar kernel's `best(0.0) + w[t]` initial value;
        # the sweep overwrites every non-sink.
        bl = self._w_o + 0.0
        dst, sw, w_o = self._sdst_o, self._sw_o, self._w_o
        lvl, flvl = self._lvl, self._flvl
        fnodes, fstarts, sptr_o = self._fnodes, self._fstarts, self._sptr_o
        mred = _np.maximum.reduceat
        for L in range(self.n_levels - 2, -1, -1):
            fa, fb = flvl[L], flvl[L + 1]
            if fa == fb:
                continue
            ea = fstarts[fa]
            eb = sptr_o[lvl[L + 1]]
            cand = bl[dst[ea:eb]]
            if communication:
                cand = cand + sw[ea:eb]
            mx = mred(cand, fstarts[fa:fb] - ea)
            sel = fnodes[fa:fb]
            bl[sel] = mx + w_o[sel]
        return self._unpermute(bl)

    def critical_path_lengths(self, communication: bool = True) -> "Any":
        """Per-graph critical-path length (max b-level; 0.0 for empty graphs)."""
        key = ("cp", bool(communication))
        got = self._memo.get(key)
        if got is None:
            bl = self.b_levels(communication)
            cp = _np.zeros(self.n_graphs)
            nz = self._n_per > 0
            if nz.any():
                cp[nz] = _np.maximum.reduceat(bl, self.node_off[:-1][nz])
            got = self._memo[key] = cp
        return got

    def alap(self, communication: bool = True) -> "Any":
        """Pooled ALAP start times, natural order."""
        key = ("alap", bool(communication))
        got = self._memo.get(key)
        if got is None:
            bl = self.b_levels(communication)
            cp = self.critical_path_lengths(communication)
            got = self._memo[key] = _np.repeat(cp, self._n_per) - bl
        return got

    # ------------------------------------------------------------------
    # classification metrics (paper section 3)
    # ------------------------------------------------------------------
    def granularities(self) -> list:
        """Per-graph section-3.1 granularity; ``None`` where undefined.

        ``None`` marks graphs where :func:`repro.core.metrics.granularity`
        would raise (no edges, or a non-sink whose heaviest out-edge has
        zero weight) — callers wanting the error go through the scalar
        function.  The mean is a per-graph Python ``sum`` over the packed
        terms: bitwise-identical to the scalar left fold, unlike numpy's
        pairwise summation.
        """
        got = self._memo.get("gran")
        if got is None:
            got = self._memo["gran"] = self._granularities()
        return got

    def _granularities(self) -> list:
        np = _np
        fn = np.flatnonzero(self._scnt)  # non-sinks, natural (= task) order
        if fn.size == 0:
            return [None] * self.n_graphs
        maxe = np.maximum.reduceat(self._sw, self._sptr[:-1][fn])
        # graphs containing a zero max out-edge are reported as None below;
        # silence the vector division's warning for those lanes
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = self._w[fn] / maxe
        bad = maxe <= 0.0
        fb = np.searchsorted(fn, self.node_off)
        out: list = []
        for k in range(self.n_graphs):
            a, b = int(fb[k]), int(fb[k + 1])
            if a == b or bad[a:b].any():
                out.append(None)
                continue
            seg = terms[a:b].tolist()
            out.append(sum(seg) / len(seg))
        return out

    def granularity_bands(self) -> list:
        """Per-graph band index into
        :data:`~repro.core.metrics.GRANULARITY_BANDS` (``None`` mirrors
        :meth:`granularities`)."""
        return [
            granularity_band(g) if g is not None else None
            for g in self.granularities()
        ]

    def anchors(self, include_sinks: bool = False) -> list:
        """Per-graph anchor out-degree (mode, ties to the smaller degree);
        ``None`` where no task qualifies."""
        np = _np
        out: list = []
        for k in range(self.n_graphs):
            degs = self._scnt[self.node_off[k] : self.node_off[k + 1]]
            if not include_sinks:
                degs = degs[degs > 0]
            if degs.size == 0:
                out.append(None)
                continue
            counts = np.bincount(degs)
            best = counts.max()
            out.append(int(np.flatnonzero(counts == best)[0]))
        return out

    def weight_ranges(self) -> list:
        """Per-graph ``(w_min, w_max)`` node-weight range; ``None`` if empty."""
        np = _np
        nz = self._n_per > 0
        lo = np.zeros(self.n_graphs)
        hi = np.zeros(self.n_graphs)
        if nz.any():
            starts = self.node_off[:-1][nz]
            lo[nz] = np.minimum.reduceat(self._w, starts)
            hi[nz] = np.maximum.reduceat(self._w, starts)
        return [
            (float(lo[k]), float(hi[k])) if nz[k] else None
            for k in range(self.n_graphs)
        ]

    def serial_times(self) -> list:
        """Per-graph total work, bitwise-equal to ``TaskGraph.serial_time``
        (Python left-fold sum per graph, ``0`` for empty graphs)."""
        w = self._w
        off = self.node_off
        return [
            sum(w[off[k] : off[k + 1]].tolist()) for k in range(self.n_graphs)
        ]

    # ------------------------------------------------------------------
    # splitting pooled arrays
    # ------------------------------------------------------------------
    def per_graph(self, pooled: "Any") -> list:
        """Split a pooled natural-order array into per-graph Python lists."""
        off = self.node_off
        return [
            pooled[off[k] : off[k + 1]].tolist() for k in range(self.n_graphs)
        ]


def _prime(graph: TaskGraph, key: Any, value: Any) -> None:
    # cached() keeps an existing entry; ours is bit-identical anyway.
    graph.cached(key, lambda: value)


class BatchReport(int):
    """The number of graphs a :func:`batch_analyze` call primed, plus the
    input positions it *refused*.

    An ``int`` subclass so every existing ``batch_analyze(...) == n`` /
    truthiness use keeps working; :attr:`skipped` carries the 0-based
    positions (into the call's input iterable, before deduplication) of
    graphs skipped because compiling them raised
    :class:`~repro.core.exceptions.CycleError`.  Callers that mutate
    graphs — the adversarial search, the suite runner's prebatcher —
    check ``report.skipped`` to catch a bad mutation instead of silently
    scoring whatever stale memo the per-graph path would fall back to.
    """

    skipped: tuple[int, ...]

    def __new__(cls, analyzed: int = 0, skipped: tuple[int, ...] = ()) -> "BatchReport":
        self = super().__new__(cls, analyzed)
        self.skipped = tuple(skipped)
        return self

    def __repr__(self) -> str:
        return f"BatchReport(analyzed={int(self)}, skipped={self.skipped})"


def batch_analyze(
    graphs: Iterable[TaskGraph], *, classify: bool = True
) -> BatchReport:
    """Analyze many graphs in one vectorized pass, priming their memos.

    Compiles each graph's :class:`GraphIndex` through the existing
    :func:`~repro.core.kernels.graph_index` cache (already-compiled graphs
    are ``kernels.cache.hits``, not recompiles), packs the indexes into a
    :class:`GraphBatch`, runs the t/b/hu/ALAP sweeps, and installs the
    per-graph results under the exact memo keys the lazy kernels use —
    downstream consumers (schedulers, analysis, classification) then hit
    the memos and produce byte-identical output.  With ``classify=True``
    the section-3 granularity and serial time are primed as well.

    Returns a :class:`BatchReport` — the number of graphs analyzed (it
    compares equal to a plain ``int``), carrying the input positions of
    any cyclic graphs in ``skipped``.  A no-op reporting 0 when
    :func:`batch_enabled` is false.  Never raises for individual bad
    graphs: cyclic graphs are skipped with a ``batch.skipped_cyclic``
    counter bump and their positions reported (the per-graph path raises
    :class:`CycleError` on demand, exactly as without batching), and
    graphs whose granularity is undefined simply aren't primed for it.
    """
    if not batch_enabled():
        return BatchReport(0)
    todo: list[tuple[int, TaskGraph]] = []
    seen: set[int] = set()
    already = 0
    check_keys = _LEVEL_KEYS + ((_KEY_SERIAL,) if classify else ())
    for pos, g in enumerate(graphs):
        if id(g) in seen:
            continue
        seen.add(id(g))
        if all(g.has_cached(k) for k in check_keys):
            already += 1
            continue
        todo.append((pos, g))
    registry = get_registry()
    if already:
        registry.inc("batch.already_primed", already)
    if not todo:
        return BatchReport(0)
    with registry.timer("batch.analyze"):
        kept: list[TaskGraph] = []
        indexes: list[GraphIndex] = []
        skipped: list[int] = []
        for pos, g in todo:
            try:
                gi = graph_index(g)
            except CycleError:
                skipped.append(pos)
                continue
            kept.append(g)
            indexes.append(gi)
        if skipped:
            registry.inc("batch.skipped_cyclic", len(skipped))
        if not kept:
            return BatchReport(0, tuple(skipped))
        batch = GraphBatch(indexes)
        tracer = get_tracer()
        with tracer.span(
            "batch.analyze", cat="batch", graphs=len(kept), nodes=batch.n_nodes
        ) if tracer.enabled else nullcontext():
            tl = batch.per_graph(batch.t_levels(True))
            bl = batch.per_graph(batch.b_levels(True))
            hu = batch.per_graph(batch.b_levels(False))
            al = batch.per_graph(batch.alap(True))
            grans = batch.granularities() if classify else None
            serials = batch.serial_times() if classify else None
            for k, g in enumerate(kept):
                _prime(g, _KEY_T, tl[k])
                _prime(g, _KEY_B, bl[k])
                _prime(g, _KEY_HU, hu[k])
                _prime(g, _KEY_ALAP, al[k])
                if grans is not None:
                    if grans[k] is not None:
                        _prime(g, _KEY_GRAN, grans[k])
                    _prime(g, _KEY_SERIAL, serials[k])
        registry.inc("batch.batches")
        registry.inc("batch.graphs", len(kept))
        registry.inc("batch.nodes", batch.n_nodes)
    return BatchReport(len(kept), tuple(skipped))
