"""Run manifests: what produced a results file, exactly.

A :class:`RunManifest` records everything needed to trust (or re-run) a
saved experiment: the master seed, the run configuration, the package
version, the platform, per-phase wall times and a metrics snapshot.  The
CLI writes one next to every saved results JSON (``res.json`` →
``res.manifest.json``) so a results file is never orphaned from its
provenance; ``python -m repro stats`` reads it back.

Manifests are versioned JSON with the same format-guard convention as
:mod:`repro.experiments.persistence`.
"""

from __future__ import annotations

import json
import platform as _platform
import sys
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter

__all__ = ["RunManifest", "manifest_path_for", "load_manifest"]

_FORMAT = "repro-manifest"
_FORMAT_VERSION = 1


def manifest_path_for(results_path: str | Path) -> Path:
    """Manifest path conventionally paired with ``results_path``
    (``res.json`` → ``res.manifest.json``)."""
    p = Path(results_path)
    if p.name.endswith(".manifest.json"):
        return p
    return p.with_name(p.stem + ".manifest.json")


@dataclass
class RunManifest:
    """Provenance record of one experiment run."""

    created: str = ""
    seed: int | None = None
    config: dict = field(default_factory=dict)
    version: str = ""
    platform: dict = field(default_factory=dict)
    phases: dict[str, float] = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def collect(
        cls, *, seed: int | None = None, config: dict | None = None
    ) -> RunManifest:
        """A manifest pre-filled with environment facts (version, platform,
        creation time); phases and metrics are attached as the run goes."""
        from .. import __version__  # local import: repro/__init__ may be mid-import

        return cls(
            created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            seed=seed,
            config=dict(config or {}),
            version=__version__,
            platform={
                "python": sys.version.split()[0],
                "implementation": _platform.python_implementation(),
                "system": _platform.system(),
                "release": _platform.release(),
                "machine": _platform.machine(),
            },
        )

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the ``with`` body as phase ``name`` (accumulates wall
        seconds if the same phase runs more than once)."""
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            self.phases[name] = round(self.phases.get(name, 0.0) + elapsed, 6)

    def attach_metrics(self, registry=None) -> None:
        """Snapshot ``registry`` (default: the process registry) into the
        manifest."""
        if registry is None:
            from .metrics import get_registry

            registry = get_registry()
        self.metrics = registry.snapshot()

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": _FORMAT,
            "version": _FORMAT_VERSION,
            "created": self.created,
            "seed": self.seed,
            "config": self.config,
            "package_version": self.version,
            "platform": self.platform,
            "phases": self.phases,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> RunManifest:
        if payload.get("format") != _FORMAT:
            raise ValueError("not a repro manifest")
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported manifest version {payload.get('version')!r}"
            )
        return cls(
            created=payload.get("created", ""),
            seed=payload.get("seed"),
            config=payload.get("config", {}),
            version=payload.get("package_version", ""),
            platform=payload.get("platform", {}),
            phases=payload.get("phases", {}),
            metrics=payload.get("metrics", {}),
        )

    def write(self, path: str | Path) -> Path:
        """Write the manifest to ``path`` verbatim."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1) + "\n")
        return path

    def write_for(self, results_path: str | Path) -> Path:
        """Write next to a results file using the pairing convention."""
        return self.write(manifest_path_for(results_path))

    @classmethod
    def load(cls, path: str | Path) -> RunManifest:
        try:
            payload = json.loads(Path(path).read_text())
        except ValueError as exc:
            raise ValueError(f"{path}: not a repro manifest ({exc})") from None
        try:
            return cls.from_dict(payload)
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from None


def load_manifest(path: str | Path) -> RunManifest:
    """Module-level alias of :meth:`RunManifest.load`."""
    return RunManifest.load(path)
