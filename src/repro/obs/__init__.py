"""repro.obs — observability for the scheduling testbed.

One cross-cutting layer, four small parts:

* :mod:`repro.obs.trace` — span/event tracer with monotonic timing and
  Chrome-trace / JSONL export (``--trace`` on the CLI);
* :mod:`repro.obs.metrics` — named counters/timers/histograms with a
  process-global default registry plus injectable instances for tests;
* :mod:`repro.obs.manifest` — run manifests (seed, config, version,
  platform, phase wall times, metrics snapshot) written next to every
  saved results file;
* :mod:`repro.obs.log` — stdlib-``logging`` structured logger and the
  ``log_progress`` suite-progress callback.

The instrumented choke points (``Scheduler.schedule``, ``run_suite``,
``core.simulator``, several heuristics) emit into the process-global
tracer/registry; both default to disabled/cheap, so the testbed pays
near-zero overhead until a CLI flag or a test turns collection on.
"""

from .log import (
    JsonFormatter,
    ProgressLogger,
    ProgressStats,
    configure,
    get_logger,
    log_progress,
)
from .manifest import RunManifest, load_manifest, manifest_path_for
from .metrics import (
    HistogramStats,
    MetricsRegistry,
    TimerStats,
    get_registry,
    set_registry,
    use_registry,
)
from .trace import Tracer, complete_event, get_tracer, set_tracer, use_tracer

__all__ = [
    # trace
    "Tracer",
    "complete_event",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    # metrics
    "MetricsRegistry",
    "TimerStats",
    "HistogramStats",
    "get_registry",
    "set_registry",
    "use_registry",
    # manifest
    "RunManifest",
    "manifest_path_for",
    "load_manifest",
    # log
    "configure",
    "get_logger",
    "JsonFormatter",
    "ProgressStats",
    "ProgressLogger",
    "log_progress",
]
