"""repro.obs — observability for the scheduling testbed.

One cross-cutting layer, seven small parts:

* :mod:`repro.obs.trace` — span/event tracer with monotonic timing and
  Chrome-trace / JSONL export (``--trace`` on the CLI);
* :mod:`repro.obs.telemetry` — W3C-traceparent-style distributed trace
  context: one trace id follows a request or campaign across client,
  daemon and suite-worker process boundaries;
* :mod:`repro.obs.metrics` — named counters/timers/histograms (including
  fixed-bucket latency histograms with p50/p95/p99) with a process-global
  default registry plus injectable instances for tests;
* :mod:`repro.obs.prom` — Prometheus text-format exposition of a metrics
  snapshot (the service's ``metrics`` verb, ``repro top``);
* :mod:`repro.obs.profile` — opt-in sampling profiler writing
  flamegraph-ready collapsed stacks (``--profile`` / ``REPRO_PROFILE``);
* :mod:`repro.obs.manifest` — run manifests (seed, config, version,
  platform, phase wall times, metrics snapshot) written next to every
  saved results file;
* :mod:`repro.obs.log` — stdlib-``logging`` structured logger and the
  ``log_progress`` suite-progress callback.

The instrumented choke points (``Scheduler.schedule``, ``run_suite``,
``core.simulator``, the kernel compiler, the service pipeline) emit into
the process-global tracer/registry; both default to disabled/cheap, so
the testbed pays near-zero overhead until a CLI flag or a test turns
collection on.  When a trace context is active, every recorded event is
tagged with its ``trace_id``/``span_id`` automatically.
"""

from .log import (
    JsonFormatter,
    ProgressLogger,
    ProgressStats,
    configure,
    get_logger,
    log_progress,
)
from .manifest import RunManifest, load_manifest, manifest_path_for
from .metrics import (
    DEFAULT_LATENCY_BOUNDS_MS,
    FixedHistogram,
    HistogramStats,
    MetricsRegistry,
    TimerStats,
    get_registry,
    set_registry,
    use_registry,
)
from .profile import SamplingProfiler, profile_path_for, profile_to
from .prom import to_prometheus
from .telemetry import (
    TRACEPARENT_KEY,
    TraceContext,
    current_context,
    extract,
    inject,
    new_context,
    parse_traceparent,
    use_context,
)
from .trace import Tracer, complete_event, get_tracer, set_tracer, use_tracer

__all__ = [
    # trace
    "Tracer",
    "complete_event",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    # telemetry
    "TRACEPARENT_KEY",
    "TraceContext",
    "new_context",
    "parse_traceparent",
    "current_context",
    "use_context",
    "inject",
    "extract",
    # metrics
    "MetricsRegistry",
    "TimerStats",
    "HistogramStats",
    "FixedHistogram",
    "DEFAULT_LATENCY_BOUNDS_MS",
    "get_registry",
    "set_registry",
    "use_registry",
    # prom
    "to_prometheus",
    # profile
    "SamplingProfiler",
    "profile_to",
    "profile_path_for",
    # manifest
    "RunManifest",
    "manifest_path_for",
    "load_manifest",
    # log
    "configure",
    "get_logger",
    "JsonFormatter",
    "ProgressStats",
    "ProgressLogger",
    "log_progress",
]
