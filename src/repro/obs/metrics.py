"""Named counters, timers and histograms for the testbed.

A :class:`MetricsRegistry` is a plain in-process aggregation sink:
heuristics and the simulator *emit* (``inc``, ``add_timing``, ``observe``)
and analysis code *reads* (``counter``, ``timer_stats``, ``snapshot``).
There is a process-global default registry (:func:`get_registry`) that the
instrumented code paths write into, plus injectable instances for tests —
:func:`use_registry` swaps the default within a ``with`` block, so counter
assertions never see another test's traffic.

Emission is designed for hot paths: algorithms accumulate locally and flush
one ``inc`` per run, and a disabled-tracing schedule call costs two dict
updates (see ``benchmarks/bench_observability.py`` for the <5% overhead
guarantee).

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-able dicts;
they are embedded in run manifests (:mod:`repro.obs.manifest`) and printed
by ``python -m repro stats``.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter

__all__ = [
    "TimerStats",
    "HistogramStats",
    "FixedHistogram",
    "DEFAULT_LATENCY_BOUNDS_MS",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Default latency bucket upper bounds (milliseconds, ``le`` semantics):
#: sub-ms to 10 s, roughly log-spaced like Prometheus' classic defaults.
DEFAULT_LATENCY_BOUNDS_MS: tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


@dataclass
class TimerStats:
    """Aggregate of one named timer: call count and seconds."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


@dataclass
class HistogramStats:
    """Aggregate of one named value distribution.

    Keeps count/sum/min/max plus power-of-two bucket counts (bucket ``k``
    holds values ``v`` with ``2**(k-1) < v <= 2**k``; non-positive values
    land in bucket ``None`` rendered as ``"<=0"``).
    """

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: dict[int | None, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        key = None if value <= 0 else max(0, math.ceil(math.log2(value)))
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {
                ("<=0" if k is None else f"<=2^{k}"): v
                for k, v in sorted(
                    self.buckets.items(), key=lambda kv: (kv[0] is not None, kv[0] or 0)
                )
            },
        }


class FixedHistogram:
    """A histogram over *fixed* bucket boundaries with quantile estimation.

    ``bounds`` are strictly-increasing, finite upper bounds with inclusive
    (``le``) semantics — bucket ``i`` counts values ``bounds[i-1] < v <=
    bounds[i]`` and one implicit overflow bucket catches everything above
    ``bounds[-1]``.  Because the boundaries are identical on every worker,
    two histograms merge *exactly* (bucket counts add), which is what makes
    per-shard latency aggregation well-defined — unlike quantiles, which do
    not compose.

    :meth:`quantile` is the standard bucket-interpolation estimator
    (Prometheus' ``histogram_quantile``): find the bucket holding the
    target rank, interpolate linearly inside it, and clamp to the observed
    ``[min, max]`` — so a single sample reports itself exactly and a
    population sitting exactly on a boundary reports that boundary.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS_MS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("FixedHistogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bounds must be strictly increasing: {bounds}")
        if not all(math.isfinite(b) for b in bounds):
            raise ValueError("bounds must be finite (+inf overflow is implicit)")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``); NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        cum = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cum + n >= rank:
                lower = self.bounds[i - 1] if i > 0 else self.min
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                if rank <= cum:  # boundary rank: previous bucket's edge
                    estimate = lower
                else:
                    estimate = lower + (upper - lower) * (rank - cum) / n
                return min(max(estimate, self.min), self.max)
            cum += n
        return self.max  # q == 1.0 or float round-off

    def merge(self, other: "FixedHistogram | dict") -> None:
        """Fold another histogram (or its :meth:`as_dict`) in — exact, and
        order-independent, provided the bucket bounds match."""
        if isinstance(other, dict):
            folded = FixedHistogram(other["bounds"])
            folded.counts = list(other["counts"])
            folded.count = other["count"]
            folded.total = other["total"]
            folded.min = other["min"] if other["count"] else math.inf
            folded.max = other["max"] if other["count"] else -math.inf
            other = folded
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "p50": self.quantile(0.50) if self.count else 0.0,
            "p95": self.quantile(0.95) if self.count else 0.0,
            "p99": self.quantile(0.99) if self.count else 0.0,
        }

    def __repr__(self) -> str:
        return f"FixedHistogram({self.count} samples, {len(self.bounds)} buckets)"


def _pow2_bucket_key(label: str) -> int | None:
    """Invert :meth:`HistogramStats.as_dict`'s bucket labels."""
    if label == "<=0":
        return None
    return int(label.removeprefix("<=2^"))


class MetricsRegistry:
    """Thread-safe registry of named counters, timers and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._timers: dict[str, TimerStats] = {}
        self._histograms: dict[str, HistogramStats] = {}
        self._fixed: dict[str, FixedHistogram] = {}

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def add_timing(self, name: str, seconds: float) -> None:
        """Record one timed call of ``seconds`` under timer ``name``."""
        with self._lock:
            stats = self._timers.get(name)
            if stats is None:
                stats = self._timers[name] = TimerStats()
            stats.add(seconds)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time the ``with`` body into timer ``name`` (errors included)."""
        start = perf_counter()
        try:
            yield
        finally:
            self.add_timing(name, perf_counter() - start)

    def observe(
        self, name: str, value: float, *, bounds: Sequence[float] | None = None
    ) -> None:
        """Record ``value`` into histogram ``name``.

        With ``bounds`` the histogram is a :class:`FixedHistogram` over
        those (first-declaration-wins) boundaries — quantile-estimable and
        exactly mergeable across workers; without, the adaptive
        power-of-two :class:`HistogramStats` is used.
        """
        with self._lock:
            fixed = self._fixed.get(name)
            if fixed is None and bounds is not None:
                fixed = self._fixed[name] = FixedHistogram(bounds)
            if fixed is not None:
                fixed.observe(value)
                return
            stats = self._histograms.get(name)
            if stats is None:
                stats = self._histograms[name] = HistogramStats()
            stats.observe(value)

    def fixed_histogram(self, name: str) -> FixedHistogram | None:
        """The named :class:`FixedHistogram`, or ``None``."""
        return self._fixed.get(name)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def timer_stats(self, name: str) -> TimerStats:
        """Stats of timer ``name`` (zeroed stats if never recorded)."""
        return self._timers.get(name, TimerStats())

    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> dict:
        """JSON-able dump of everything recorded so far.  Fixed histograms
        are distinguishable by their ``bounds`` key."""
        with self._lock:
            histograms = {n: h.as_dict() for n, h in self._histograms.items()}
            histograms.update(
                (n, h.as_dict()) for n, h in self._fixed.items()
            )
            return {
                "counters": dict(self._counters),
                "timers": {n: t.as_dict() for n, t in self._timers.items()},
                "histograms": histograms,
            }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        Counters, timer count/total and histogram bucket counts add, so the
        merge of N worker snapshots is order-independent; per-merge timer
        min/max are kept as bounds.  This is the shared-nothing aggregation
        the parallel suite runner and (eventually) sharded serving tiers
        rely on.
        """
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, t in snapshot.get("timers", {}).items():
                stats = self._timers.setdefault(name, TimerStats())
                stats.count += t["count"]
                stats.total_s += t["total_s"]
                stats.min_s = min(stats.min_s, t.get("min_s", math.inf))
                stats.max_s = max(stats.max_s, t.get("max_s", 0.0))
            for name, h in snapshot.get("histograms", {}).items():
                if "bounds" in h:
                    fixed = self._fixed.get(name)
                    if fixed is None:
                        fixed = self._fixed[name] = FixedHistogram(h["bounds"])
                    fixed.merge(h)
                    continue
                if not h.get("count"):
                    continue
                stats = self._histograms.setdefault(name, HistogramStats())
                stats.count += h["count"]
                stats.total += h["total"]
                stats.min = min(stats.min, h["min"])
                stats.max = max(stats.max, h["max"])
                for label, n in h.get("buckets", {}).items():
                    key = _pow2_bucket_key(label)
                    stats.buckets[key] = stats.buckets.get(key, 0) + n

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._histograms.clear()
            self._fixed.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._timers)} timers, "
            f"{len(self._histograms) + len(self._fixed)} histograms)"
        )


#: Process-global default registry the instrumented code paths emit into.
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process default; returns the old one."""
    global _default_registry
    old, _default_registry = _default_registry, registry
    return old


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` (isolates counters in tests)."""
    old = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(old)
