"""Named counters, timers and histograms for the testbed.

A :class:`MetricsRegistry` is a plain in-process aggregation sink:
heuristics and the simulator *emit* (``inc``, ``add_timing``, ``observe``)
and analysis code *reads* (``counter``, ``timer_stats``, ``snapshot``).
There is a process-global default registry (:func:`get_registry`) that the
instrumented code paths write into, plus injectable instances for tests —
:func:`use_registry` swaps the default within a ``with`` block, so counter
assertions never see another test's traffic.

Emission is designed for hot paths: algorithms accumulate locally and flush
one ``inc`` per run, and a disabled-tracing schedule call costs two dict
updates (see ``benchmarks/bench_observability.py`` for the <5% overhead
guarantee).

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-able dicts;
they are embedded in run manifests (:mod:`repro.obs.manifest`) and printed
by ``python -m repro stats``.
"""

from __future__ import annotations

import math
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter

__all__ = [
    "TimerStats",
    "HistogramStats",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
]


@dataclass
class TimerStats:
    """Aggregate of one named timer: call count and seconds."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


@dataclass
class HistogramStats:
    """Aggregate of one named value distribution.

    Keeps count/sum/min/max plus power-of-two bucket counts (bucket ``k``
    holds values ``v`` with ``2**(k-1) < v <= 2**k``; non-positive values
    land in bucket ``None`` rendered as ``"<=0"``).
    """

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: dict[int | None, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        key = None if value <= 0 else max(0, math.ceil(math.log2(value)))
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {
                ("<=0" if k is None else f"<=2^{k}"): v
                for k, v in sorted(
                    self.buckets.items(), key=lambda kv: (kv[0] is not None, kv[0] or 0)
                )
            },
        }


class MetricsRegistry:
    """Thread-safe registry of named counters, timers and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._timers: dict[str, TimerStats] = {}
        self._histograms: dict[str, HistogramStats] = {}

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def add_timing(self, name: str, seconds: float) -> None:
        """Record one timed call of ``seconds`` under timer ``name``."""
        with self._lock:
            stats = self._timers.get(name)
            if stats is None:
                stats = self._timers[name] = TimerStats()
            stats.add(seconds)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time the ``with`` body into timer ``name`` (errors included)."""
        start = perf_counter()
        try:
            yield
        finally:
            self.add_timing(name, perf_counter() - start)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        with self._lock:
            stats = self._histograms.get(name)
            if stats is None:
                stats = self._histograms[name] = HistogramStats()
            stats.observe(value)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def timer_stats(self, name: str) -> TimerStats:
        """Stats of timer ``name`` (zeroed stats if never recorded)."""
        return self._timers.get(name, TimerStats())

    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> dict:
        """JSON-able dump of everything recorded so far."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timers": {n: t.as_dict() for n, t in self._timers.items()},
                "histograms": {
                    n: h.as_dict() for n, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry (counters and
        timer count/total only — per-merge min/max/buckets are kept as
        bounds/approximations)."""
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, t in snapshot.get("timers", {}).items():
                stats = self._timers.setdefault(name, TimerStats())
                stats.count += t["count"]
                stats.total_s += t["total_s"]
                stats.min_s = min(stats.min_s, t.get("min_s", math.inf))
                stats.max_s = max(stats.max_s, t.get("max_s", 0.0))

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._timers)} timers, {len(self._histograms)} histograms)"
        )


#: Process-global default registry the instrumented code paths emit into.
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process default; returns the old one."""
    global _default_registry
    old, _default_registry = _default_registry, registry
    return old


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` (isolates counters in tests)."""
    old = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(old)
