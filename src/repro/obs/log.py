"""Structured logging for the testbed, on stdlib :mod:`logging`.

Everything logs under the ``"repro"`` logger namespace
(:func:`get_logger`), so embedding applications keep full control; the CLI
calls :func:`configure` once, which installs exactly one stderr handler in
either human or JSON-lines format (``--verbose`` / ``--log-json``).

:class:`ProgressLogger` is the ready-made ``run_suite`` progress callback:
pass ``progress=obs.log_progress`` and get periodic lines with graph count,
elapsed wall time, throughput and (when the suite size is known) an ETA.
"""

from __future__ import annotations

import json
import logging
import sys
from dataclasses import dataclass
from time import perf_counter
from typing import Any, TextIO

__all__ = [
    "get_logger",
    "configure",
    "JsonFormatter",
    "ProgressStats",
    "ProgressLogger",
    "log_progress",
]

_ROOT = "repro"

#: LogRecord attributes that are plumbing, not user payload.
_RECORD_FIELDS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger in the testbed's namespace (``repro`` or ``repro.<name>``)."""
    return logging.getLogger(_ROOT if not name else f"{_ROOT}.{name}")


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts/level/logger/msg plus any ``extra``
    fields attached to the record."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S"),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RECORD_FIELDS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def configure(
    *,
    verbose: bool = False,
    json_mode: bool = False,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Install the testbed's single log handler (idempotent).

    ``verbose`` lowers the level to DEBUG (default INFO); ``json_mode``
    emits JSON lines instead of the human format.  Returns the root
    ``repro`` logger.
    """
    logger = logging.getLogger(_ROOT)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler._repro_obs = True  # type: ignore[attr-defined]
    if json_mode:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s %(levelname)-7s %(name)s: %(message)s",
                datefmt="%H:%M:%S",
            )
        )
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG if verbose else logging.INFO)
    logger.propagate = False
    return logger


@dataclass(frozen=True)
class ProgressStats:
    """Throughput facts ``run_suite`` hands to 3-argument progress
    callbacks."""

    done: int
    total: int | None
    elapsed: float
    rate: float

    @property
    def eta(self) -> float | None:
        """Estimated seconds remaining (None when total/rate unknown)."""
        if self.total is None or self.rate <= 0:
            return None
        return max(self.total - self.done, 0) / self.rate


class ProgressLogger:
    """Progress callback logging count, elapsed time, graphs/sec and ETA.

    Works both as a 3-argument callback (``run_suite`` supplies
    :class:`ProgressStats`) and as a plain 2-argument one (it then times
    itself from its first call).  A fresh run is detected when the count
    resets, so one module-level instance (:data:`log_progress`) can serve
    consecutive runs.
    """

    def __init__(self, *, every: int = 25, logger: logging.Logger | None = None):
        self.every = every
        self._logger = logger
        self._start: float | None = None
        self._last_done = 0

    def _emit(self, stats: ProgressStats) -> None:
        logger = self._logger or get_logger("progress")
        total = "?" if stats.total is None else str(stats.total)
        msg = (
            f"{stats.done}/{total} graphs | {stats.elapsed:.1f}s elapsed | "
            f"{stats.rate:.1f} graphs/s"
        )
        eta = stats.eta
        if eta is not None:
            msg += f" | ETA {eta:.1f}s"
        logger.info(
            msg,
            extra={
                "done": stats.done,
                "total": stats.total,
                "elapsed_s": round(stats.elapsed, 3),
                "rate": round(stats.rate, 3),
            },
        )

    def __call__(self, done: int, result, stats: ProgressStats | None = None) -> None:
        if done <= self._last_done or self._start is None:
            self._start = perf_counter()
        self._last_done = done
        if stats is None:
            elapsed = perf_counter() - self._start
            rate = done / elapsed if elapsed > 0 else 0.0
            stats = ProgressStats(done=done, total=None, elapsed=elapsed, rate=rate)
        if done % self.every == 0 or done == stats.total:
            self._emit(stats)


#: Ready-made callback: ``run_suite(suite, progress=obs.log_progress)``.
log_progress = ProgressLogger()
