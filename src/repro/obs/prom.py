"""Prometheus text-format exposition of a metrics snapshot.

:func:`to_prometheus` renders a :meth:`MetricsRegistry.snapshot
<repro.obs.metrics.MetricsRegistry.snapshot>` dict in the Prometheus
text exposition format (version 0.0.4) — the lingua franca of every
scraper, so the service's ``metrics`` verb and ``repro top`` need no
bespoke consumer:

* counters → ``<prefix>_<name>_total`` (``counter``);
* timers → ``_seconds_count`` / ``_seconds_sum`` (a summary without
  quantiles — Prometheus computes rates from these);
* fixed-bucket histograms → classic ``histogram`` triplets: cumulative
  ``_bucket{le="..."}`` lines ending in ``le="+Inf"``, plus ``_sum`` and
  ``_count``;
* power-of-two histograms → the same shape, with their ``2^k`` boundaries
  as the ``le`` values.

Metric names are sanitized to ``[a-zA-Z0-9_:]`` (dots become underscores),
the repo's ``service.op.schedule`` style mapping to
``repro_service_op_schedule``.  No labels other than ``le`` are emitted —
one process, one stream; shard labels belong to the scraper's config.
"""

from __future__ import annotations

import math
import re
from typing import Any, Mapping

__all__ = ["to_prometheus"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LEADING_OK = re.compile(r"^[a-zA-Z_:]")


def _metric_name(prefix: str, name: str, suffix: str = "") -> str:
    base = _NAME_OK.sub("_", f"{prefix}_{name}" if prefix else name)
    if not _LEADING_OK.match(base):
        base = "_" + base
    return base + suffix


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _pow2_bounds(buckets: Mapping[str, int]) -> list[tuple[float, int]]:
    """(upper bound, count) pairs in increasing-bound order."""
    pairs = []
    for label, count in buckets.items():
        if label == "<=0":
            pairs.append((0.0, count))
        else:
            pairs.append((2.0 ** int(label.removeprefix("<=2^")), count))
    return sorted(pairs)


def _histogram_lines(name: str, h: Mapping[str, Any]) -> list[str]:
    lines = [f"# TYPE {name} histogram"]
    if "bounds" in h:  # FixedHistogram: per-bucket counts, +Inf overflow
        pairs = list(zip(h["bounds"], h["counts"]))
    else:  # power-of-two HistogramStats
        pairs = _pow2_bounds(h.get("buckets", {}))
    cum = 0
    for bound, count in pairs:
        cum += count
        lines.append(f'{name}_bucket{{le="{_format_value(bound)}"}} {cum}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {h["count"]}')
    lines.append(f"{name}_sum {_format_value(h['total'])}")
    lines.append(f"{name}_count {h['count']}")
    return lines


def to_prometheus(snapshot: Mapping[str, Any], *, prefix: str = "repro") -> str:
    """Render a metrics snapshot as Prometheus exposition text."""
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _metric_name(prefix, name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("timers", {})):
        t = snapshot["timers"][name]
        metric = _metric_name(prefix, name, "_seconds")
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {t['count']}")
        lines.append(f"{metric}_sum {_format_value(t['total_s'])}")
    for name in sorted(snapshot.get("histograms", {})):
        lines.extend(
            _histogram_lines(_metric_name(prefix, name), snapshot["histograms"][name])
        )
    return "\n".join(lines) + "\n" if lines else ""
