"""Opt-in sampling profiler: flamegraph-ready collapsed stacks, no deps.

A :class:`SamplingProfiler` wakes on a background thread every
``interval_s`` and captures the Python stack of every live thread via
``sys._current_frames()``, folding each into a semicolon-joined *collapsed
stack* line (``module:func;module:func;... count``) — the input format of
``flamegraph.pl``, speedscope and ``inferno``.  Statistical, not tracing:
the instrumented process pays one stack walk per tick instead of a
per-call hook, so it is safe to attach to the serving daemon or a
2100-graph campaign (``--profile`` / ``REPRO_PROFILE=1``).

Caveats, stated rather than hidden: samples are wall-clock (a thread
blocked on I/O or a lock accumulates samples where it blocks — often
exactly what you want to see in a daemon), the profiler's own thread is
excluded, and C-extension frames appear as their Python caller.

The output is written next to the artifact it profiles (run manifest or
serve manifest) as ``*.profile.txt`` by the CLI glue; the file is plain
text so ``sort | head`` is already an analysis tool.
"""

from __future__ import annotations

import os
import sys
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter

__all__ = ["SamplingProfiler", "profile_to", "profile_path_for", "env_enabled"]

#: Environment switch: any non-empty value but "0" enables ``--profile``.
ENV_VAR = "REPRO_PROFILE"


def env_enabled() -> bool:
    """Whether :data:`ENV_VAR` asks for profiling."""
    return os.environ.get(ENV_VAR, "0") not in ("", "0")


def profile_path_for(artifact_path: str | Path) -> Path:
    """Profile path conventionally paired with an artifact
    (``res.json`` → ``res.profile.txt``)."""
    p = Path(artifact_path)
    return p.with_name(p.stem + ".profile.txt")


class SamplingProfiler:
    """Collect collapsed stacks from all threads at a fixed interval."""

    def __init__(self, interval_s: float = 0.005) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = interval_s
        self.samples: dict[str, int] = {}
        self.n_ticks = 0
        self.started_pc = 0.0
        self.stopped_pc = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self.started_pc = perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.stopped_pc = perf_counter()
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _run(self) -> None:
        me = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample(me)

    def _sample(self, exclude_ident: int) -> None:
        frames = sys._current_frames()
        self.n_ticks += 1
        for ident, frame in frames.items():
            if ident == exclude_ident:
                continue
            parts: list[str] = []
            while frame is not None:
                code = frame.f_code
                module = code.co_filename.rpartition("/")[2].removesuffix(".py")
                parts.append(f"{module}:{code.co_name}")
                frame = frame.f_back
            if not parts:
                continue
            stack = ";".join(reversed(parts))
            self.samples[stack] = self.samples.get(stack, 0) + 1

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return sum(self.samples.values())

    def collapsed(self) -> str:
        """The collapsed-stack text: ``frame;frame;frame count`` per line,
        most-sampled stacks first (count-descending, then lexical)."""
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(
                self.samples.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        return "\n".join(lines)

    def write(self, path: str | Path) -> Path:
        """Write the collapsed stacks (with a provenance header comment)."""
        path = Path(path)
        wall = (self.stopped_pc or perf_counter()) - self.started_pc
        header = (
            f"# repro sampling profile: {self.n_samples} samples over "
            f"{self.n_ticks} ticks in {wall:.3f}s "
            f"(interval {self.interval_s * 1e3:.1f}ms, pid {os.getpid()})\n"
        )
        body = self.collapsed()
        path.write_text(header + body + ("\n" if body else ""))
        return path


@contextmanager
def profile_to(
    path: str | Path | None, *, interval_s: float = 0.005
) -> Iterator[SamplingProfiler | None]:
    """Profile the ``with`` body into ``path``; no-op when ``path`` is
    falsy, so call sites can pass their ``--profile``-derived path
    unconditionally."""
    if not path:
        yield None
        return
    profiler = SamplingProfiler(interval_s=interval_s)
    with profiler:
        yield profiler
    profiler.write(path)
