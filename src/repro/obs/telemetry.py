"""Distributed trace context: W3C-traceparent-style propagation.

A :class:`TraceContext` is the identity of one request (or campaign) as it
crosses process boundaries: a 128-bit ``trace_id`` shared by every span the
request touches, plus a 64-bit ``span_id`` naming the hop that carried it.
The encoding is the W3C Trace Context ``traceparent`` header::

    00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
    ^^ version  ^^^^ trace-id (32 hex)  ^^^^ span-id (16) ^^ flags

chosen so traces exported here can be correlated with any tracing backend
that speaks the standard, and so the field survives being eyeballed in an
NDJSON frame.

Propagation model (mirrors ``contextvars``, so it is async- and
thread-correct within one process):

* :func:`current_context` — the active context, or ``None`` (telemetry off:
  the default, costing one contextvar read at span-record time);
* :func:`use_context` / :func:`activate` — install a context for a scope
  (``with``-based for request handlers, token-based for executor threads);
* :meth:`TraceContext.child` — same trace, fresh span id: what a client
  stamps on an outgoing request and a server activates for its handling;
* :func:`inject` / :func:`extract` — move the context in and out of a JSON
  envelope under the :data:`TRACEPARENT_KEY` key (the NDJSON service
  protocol and the suite-runner's worker handoff both use these).

The tracer (:mod:`repro.obs.trace`) tags every recorded event with the
active context's ids automatically, so *any* instrumented code — scheduler
spans, ``kernels.compile``, service ops, suite-worker graph spans — joins
the trace without knowing telemetry exists.
"""

from __future__ import annotations

import os
import re
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

__all__ = [
    "TRACEPARENT_KEY",
    "TraceContext",
    "new_context",
    "parse_traceparent",
    "current_context",
    "activate",
    "deactivate",
    "use_context",
    "inject",
    "extract",
]

#: Envelope key carrying the serialized context (request frames, worker args).
TRACEPARENT_KEY = "traceparent"

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


@dataclass(frozen=True)
class TraceContext:
    """One hop of one distributed trace (immutable, hashable)."""

    trace_id: str  # 32 lowercase hex chars, not all-zero
    span_id: str  # 16 lowercase hex chars, not all-zero
    flags: int = 1  # bit 0: sampled

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` encoding of this context."""
        return f"00-{self.trace_id}-{self.span_id}-{self.flags:02x}"

    def child(self) -> "TraceContext":
        """Same trace, fresh span id — the outgoing-request context."""
        return TraceContext(
            trace_id=self.trace_id, span_id=_hex_id(8), flags=self.flags
        )

    def __str__(self) -> str:
        return self.to_traceparent()


def _hex_id(n_bytes: int) -> str:
    """``n_bytes`` of randomness as lowercase hex, never all-zero (the
    all-zero id is the spec's "invalid" sentinel)."""
    while True:
        value = os.urandom(n_bytes).hex()
        if value.strip("0"):
            return value


def new_context() -> TraceContext:
    """A fresh root context (new trace id, new span id, sampled)."""
    return TraceContext(trace_id=_hex_id(16), span_id=_hex_id(8))


def parse_traceparent(header: Any) -> TraceContext | None:
    """Decode a ``traceparent`` string; ``None`` for anything malformed.

    Malformed context is dropped, never raised on: a bad header must not
    fail the request it rode in on (the W3C-specified behaviour).
    """
    if not isinstance(header, str):
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    trace_id = match.group("trace_id")
    span_id = match.group("span_id")
    if match.group("version") == "ff":  # forbidden version value
        return None
    if not trace_id.strip("0") or not span_id.strip("0"):
        return None
    return TraceContext(
        trace_id=trace_id, span_id=span_id, flags=int(match.group("flags"), 16)
    )


#: The active context of this task/thread (None = telemetry off).
_current: ContextVar[TraceContext | None] = ContextVar(
    "repro_trace_context", default=None
)


def current_context() -> TraceContext | None:
    """The active :class:`TraceContext`, or ``None``."""
    return _current.get()


def activate(ctx: TraceContext | None):
    """Install ``ctx`` as the active context; returns a token for
    :func:`deactivate`.  Token-based (not ``with``-based) so executor
    threads can bracket work that is not lexically scoped."""
    return _current.set(ctx)


def deactivate(token) -> None:
    """Restore the context replaced by the matching :func:`activate`."""
    _current.reset(token)


@contextmanager
def use_context(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Scoped :func:`activate`: the previous context is restored on exit."""
    token = activate(ctx)
    try:
        yield ctx
    finally:
        deactivate(token)


def inject(obj: dict, ctx: TraceContext | None = None) -> dict:
    """Stamp ``ctx`` (default: the active context) onto a JSON envelope.

    Mutates and returns ``obj``; a no-op when there is no context, so
    untelemetered traffic carries no extra bytes.
    """
    if ctx is None:
        ctx = current_context()
    if ctx is not None:
        obj[TRACEPARENT_KEY] = ctx.to_traceparent()
    return obj


def extract(obj: Mapping[str, Any]) -> TraceContext | None:
    """Read a context out of a JSON envelope (``None`` if absent/bad)."""
    return parse_traceparent(obj.get(TRACEPARENT_KEY))
