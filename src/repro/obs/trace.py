"""Lightweight span/event tracer with Chrome-trace-compatible export.

A :class:`Tracer` collects *complete* events ("ph": "X" in the Chrome
trace-event format) with monotonic (``perf_counter``) timing.  Spans are
opened with the :meth:`Tracer.span` context manager and nest: each recorded
event carries its parent span's name in ``args.parent`` (nesting is also
implied by time containment on one thread, which is how ``chrome://tracing``
and Perfetto render it).

Two serializations of the same events:

* :meth:`Tracer.to_jsonl` — one JSON trace event per line (easy to grep /
  stream / tail);
* :meth:`Tracer.to_chrome` — the ``{"traceEvents": [...]}`` object format
  loadable directly in the Chrome trace viewer.

:meth:`Tracer.write` picks by file suffix (``.jsonl`` vs anything else).
:func:`complete_event` is the single builder for trace-event dicts; it is
shared with :func:`repro.viz.schedule_to_trace` so *schedule* traces and
*testbed* traces use one event vocabulary.

A process-global tracer (disabled by default, so instrumentation is a
near-no-op) is reachable via :func:`get_tracer` / :func:`set_tracer`;
tests inject their own with :func:`use_tracer`.
"""

from __future__ import annotations

import json
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter

from .telemetry import current_context

__all__ = [
    "complete_event",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


def complete_event(
    name: str,
    *,
    ts: float,
    dur: float,
    cat: str = "repro",
    pid: int = 0,
    tid: int = 0,
    args: dict | None = None,
) -> dict:
    """One Chrome trace-event dict (``ph: "X"``; ``ts``/``dur`` in µs)."""
    event = {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": pid,
        "tid": tid,
    }
    if args:
        event["args"] = args
    return event


class Tracer:
    """Collects timed spans and instant events.

    ``enabled=False`` turns every recording call into a cheap no-op — the
    default process-global tracer ships disabled so the instrumented hot
    paths pay only an attribute check.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[dict] = []
        self._epoch = perf_counter()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._tids: dict[int, int] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    @contextmanager
    def span(self, name: str, *, cat: str = "repro", **args) -> Iterator[None]:
        """Record one complete event spanning the ``with`` body.

        Exactly one event is recorded per entry, *including when the body
        raises* — the exception is summarized in ``args.error`` and
        re-raised.
        """
        if not self.enabled:
            yield
            return
        stack = self._stack()
        start = perf_counter()
        stack.append(name)
        error: BaseException | None = None
        try:
            yield
        except BaseException as exc:
            error = exc
            raise
        finally:
            stack.pop()
            self.add_span(
                name, start, perf_counter() - start,
                cat=cat, error=error, args=args,
            )

    def add_span(
        self,
        name: str,
        start: float,
        duration: float,
        *,
        cat: str = "repro",
        error: BaseException | None = None,
        args: dict | None = None,
    ) -> None:
        """Record a complete event from an explicit ``perf_counter`` start
        and duration (seconds) — for call sites that time themselves."""
        if not self.enabled:
            return
        ev_args = dict(args) if args else {}
        stack = self._stack()
        if stack and stack[-1] != name:
            ev_args["parent"] = stack[-1]
        if error is not None:
            ev_args["error"] = f"{type(error).__name__}: {error}"
        ctx = current_context()
        if ctx is not None:
            ev_args["trace_id"] = ctx.trace_id
            ev_args["span_id"] = ctx.span_id
        event = complete_event(
            name,
            ts=(start - self._epoch) * 1e6,
            dur=duration * 1e6,
            cat=cat,
            tid=self._tid(),
            args=ev_args or None,
        )
        with self._lock:
            self.events.append(event)

    def instant(self, name: str, *, cat: str = "repro", **args) -> None:
        """Record a zero-duration marker event (``ph: "i"``)."""
        if not self.enabled:
            return
        ctx = current_context()
        if ctx is not None:
            args = dict(args)
            args["trace_id"] = ctx.trace_id
            args["span_id"] = ctx.span_id
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "ts": (perf_counter() - self._epoch) * 1e6,
            "pid": 0,
            "tid": self._tid(),
            "s": "t",
        }
        if args:
            event["args"] = args
        with self._lock:
            self.events.append(event)

    # ------------------------------------------------------------------
    # inspection & export
    # ------------------------------------------------------------------
    def spans(self, name: str | None = None) -> list[dict]:
        """All recorded complete events, optionally filtered by name."""
        return [
            e for e in self.events
            if e["ph"] == "X" and (name is None or e["name"] == name)
        ]

    def clear(self) -> None:
        with self._lock:
            self.events.clear()

    def to_jsonl(self) -> str:
        """One trace event per line."""
        return "\n".join(json.dumps(e, sort_keys=True) for e in self.events)

    def to_chrome(self) -> str:
        """Chrome trace viewer / Perfetto object format."""
        return json.dumps(
            {"traceEvents": self.events, "displayTimeUnit": "ms"}, indent=1
        )

    def write(self, path: str | Path) -> Path:
        """Write the trace; ``*.jsonl`` gets line format, else Chrome JSON."""
        path = Path(path)
        if path.suffix == ".jsonl":
            payload = self.to_jsonl() + "\n"
        else:
            payload = self.to_chrome() + "\n"
        path.write_text(payload)
        return path

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self.events)} events)"


#: Process-global tracer: disabled by default so instrumentation is free.
_default_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer (disabled unless someone enabled it)."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global tracer; returns the old one."""
    global _default_tracer
    old, _default_tracer = _default_tracer, tracer
    return old


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Temporarily install ``tracer`` (tests, scoped captures)."""
    old = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(old)
