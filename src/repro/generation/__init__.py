"""Random and structured task-graph generation."""

from .parse_tree import SPKind, SPNode, random_parse_tree
from .random_dag import (
    adjust_anchor,
    assign_weights,
    generate_pdg,
    sample_target_granularity,
    sp_dag_from_tree,
)
from .suites import (
    PAPER_ANCHORS,
    PAPER_GRAPHS_PER_CELL,
    PAPER_WEIGHT_RANGES,
    SuiteCell,
    SuiteGraph,
    band_label,
    generate_suite,
    suite_cells,
    weight_range_label,
)
from . import workloads
from .layered import generate_layered_pdg, layered_dag

__all__ = [
    "SPKind",
    "SPNode",
    "random_parse_tree",
    "sp_dag_from_tree",
    "adjust_anchor",
    "assign_weights",
    "sample_target_granularity",
    "generate_pdg",
    "SuiteCell",
    "SuiteGraph",
    "suite_cells",
    "generate_suite",
    "band_label",
    "weight_range_label",
    "PAPER_ANCHORS",
    "PAPER_WEIGHT_RANGES",
    "PAPER_GRAPHS_PER_CELL",
    "workloads",
    "layered_dag",
    "generate_layered_pdg",
]
