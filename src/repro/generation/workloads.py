"""Deterministic structured task graphs.

The paper's conclusion calls for testing on "DAGs generated from real serial
programs"; these are the classic kernels the scheduling literature uses for
exactly that.  Each factory takes computation and communication weight
parameters so any granularity regime can be dialed in; all graphs are
reproducible and validated.

Used by the examples and the structured-workload benchmark.
"""

from __future__ import annotations

from ..core.exceptions import GenerationError
from ..core.taskgraph import TaskGraph

__all__ = [
    "chain",
    "fork_join",
    "diamond",
    "out_tree",
    "in_tree",
    "fft_graph",
    "gaussian_elimination",
    "divide_and_conquer",
    "stencil_1d",
    "cholesky",
    "wavefront",
]


def _check(comp: float, comm: float) -> None:
    if comp <= 0:
        raise GenerationError(f"comp weight must be positive, got {comp}")
    if comm < 0:
        raise GenerationError(f"comm weight must be non-negative, got {comm}")


def chain(n: int, *, comp: float = 10.0, comm: float = 5.0) -> TaskGraph:
    """A linear pipeline of ``n`` tasks — no exploitable parallelism."""
    _check(comp, comm)
    if n < 1:
        raise GenerationError("chain needs at least one task")
    g = TaskGraph()
    for i in range(n):
        g.add_task(i, comp)
        if i:
            g.add_edge(i - 1, i, comm)
    return g


def fork_join(width: int, *, stages: int = 1, comp: float = 10.0, comm: float = 5.0) -> TaskGraph:
    """``stages`` fork-join bulges of ``width`` parallel tasks each."""
    _check(comp, comm)
    if width < 1 or stages < 1:
        raise GenerationError("width and stages must be positive")
    g = TaskGraph()
    nid = 0

    def new(w: float) -> int:
        nonlocal nid
        g.add_task(nid, w)
        nid += 1
        return nid - 1

    prev_join = new(comp)
    for _ in range(stages):
        mids = [new(comp) for _ in range(width)]
        join = new(comp)
        for m in mids:
            g.add_edge(prev_join, m, comm)
            g.add_edge(m, join, comm)
        prev_join = join
    return g


def diamond(*, comp: float = 10.0, comm: float = 5.0) -> TaskGraph:
    """The 4-node diamond — the smallest fork-join."""
    return fork_join(2, stages=1, comp=comp, comm=comm)


def out_tree(depth: int, *, branching: int = 2, comp: float = 10.0, comm: float = 5.0) -> TaskGraph:
    """A complete out-tree (root broadcasts work down ``depth`` levels)."""
    _check(comp, comm)
    if depth < 0 or branching < 1:
        raise GenerationError("depth must be >= 0 and branching >= 1")
    g = TaskGraph()
    g.add_task(0, comp)
    frontier = [0]
    nid = 1
    for _ in range(depth):
        nxt = []
        for parent in frontier:
            for _ in range(branching):
                g.add_task(nid, comp)
                g.add_edge(parent, nid, comm)
                nxt.append(nid)
                nid += 1
        frontier = nxt
    return g


def in_tree(depth: int, *, branching: int = 2, comp: float = 10.0, comm: float = 5.0) -> TaskGraph:
    """A complete in-tree (reduction toward a single sink)."""
    tree = out_tree(depth, branching=branching, comp=comp, comm=comm)
    reversed_graph = TaskGraph()
    for t in tree.tasks():
        reversed_graph.add_task(t, tree.weight(t))
    for u, v in tree.edges():
        reversed_graph.add_edge(v, u, tree.edge_weight(u, v))
    return reversed_graph


def fft_graph(k: int, *, comp: float = 10.0, comm: float = 5.0) -> TaskGraph:
    """The ``2^k``-point FFT butterfly: ``k + 1`` ranks of ``2^k`` tasks.

    Task ``(s, i)`` at rank ``s`` depends on ``(s-1, i)`` and on its
    butterfly partner ``(s-1, i xor 2^(s-1))``.
    """
    _check(comp, comm)
    if k < 1:
        raise GenerationError("fft_graph needs k >= 1")
    n = 1 << k
    g = TaskGraph()
    for s in range(k + 1):
        for i in range(n):
            g.add_task((s, i), comp)
            if s:
                g.add_edge((s - 1, i), (s, i), comm)
                partner = i ^ (1 << (s - 1))
                g.add_edge((s - 1, partner), (s, i), comm)
    return g


def gaussian_elimination(n: int, *, comp: float = 10.0, comm: float = 5.0) -> TaskGraph:
    """Column-oriented Gaussian elimination on an ``n x n`` matrix.

    Pivot task ``(k, k)`` enables the updates ``(k, j)`` for ``j > k``;
    update ``(k, j)`` feeds the next step's task in column ``j``.  The
    classic wide-then-narrowing staircase DAG.
    """
    _check(comp, comm)
    if n < 2:
        raise GenerationError("gaussian_elimination needs n >= 2")
    g = TaskGraph()
    for k in range(n - 1):
        for j in range(k, n):
            g.add_task((k, j), comp)
    for k in range(n - 1):
        for j in range(k + 1, n):
            g.add_edge((k, k), (k, j), comm)  # pivot enables update
            if k + 1 <= n - 2 and j >= k + 1:
                g.add_edge((k, j), (k + 1, j), comm)  # column carries forward
    return g


def divide_and_conquer(depth: int, *, comp: float = 10.0, comm: float = 5.0) -> TaskGraph:
    """Binary divide phase followed by a mirrored conquer phase.

    ``2^(depth+1) - 1`` split tasks, the same number of merge tasks, with
    each leaf split feeding its merge twin.
    """
    _check(comp, comm)
    if depth < 0:
        raise GenerationError("depth must be >= 0")
    g = TaskGraph()

    def split(node: int, d: int) -> list[int]:
        g.add_task(("s", node), comp)
        if d == depth:
            return [node]
        leaves = []
        for child in (2 * node + 1, 2 * node + 2):
            leaves += split(child, d + 1)
            g.add_edge(("s", node), ("s", child), comm)
        return leaves

    def merge(node: int, d: int) -> None:
        g.add_task(("m", node), comp)
        if d == depth:
            g.add_edge(("s", node), ("m", node), comm)
            return
        for child in (2 * node + 1, 2 * node + 2):
            merge(child, d + 1)
            g.add_edge(("m", child), ("m", node), comm)

    split(0, 0)
    merge(0, 0)
    return g


def stencil_1d(width: int, steps: int, *, comp: float = 10.0, comm: float = 5.0) -> TaskGraph:
    """A 1-D three-point stencil: ``steps`` sweeps over ``width`` cells."""
    _check(comp, comm)
    if width < 1 or steps < 1:
        raise GenerationError("width and steps must be positive")
    g = TaskGraph()
    for t in range(steps):
        for i in range(width):
            g.add_task((t, i), comp)
            if t:
                for j in (i - 1, i, i + 1):
                    if 0 <= j < width:
                        g.add_edge((t - 1, j), (t, i), comm)
    return g


def cholesky(n: int, *, comp: float = 10.0, comm: float = 5.0) -> TaskGraph:
    """Tiled right-looking Cholesky factorization on an ``n x n`` tile grid.

    Tasks: ``("potrf", k)``, ``("trsm", k, i)`` for i > k,
    ``("syrk", k, i)`` and ``("gemm", k, i, j)`` updates.  The classic
    irregular staircase DAG used throughout the runtime-systems literature.
    """
    _check(comp, comm)
    if n < 1:
        raise GenerationError("cholesky needs n >= 1")
    g = TaskGraph()
    for k in range(n):
        g.add_task(("potrf", k), comp)
        if k:
            g.add_edge(("syrk", k - 1, k), ("potrf", k), comm)
        for i in range(k + 1, n):
            g.add_task(("trsm", k, i), comp)
            g.add_edge(("potrf", k), ("trsm", k, i), comm)
            if k:
                g.add_edge(("gemm", k - 1, i, k), ("trsm", k, i), comm)
        for i in range(k + 1, n):
            g.add_task(("syrk", k, i), comp)
            g.add_edge(("trsm", k, i), ("syrk", k, i), comm)
            if k:
                g.add_edge(("syrk", k - 1, i), ("syrk", k, i), comm)
            for j in range(k + 1, i):
                g.add_task(("gemm", k, i, j), comp)
                g.add_edge(("trsm", k, i), ("gemm", k, i, j), comm)
                g.add_edge(("trsm", k, j), ("gemm", k, i, j), comm)
                if k:
                    g.add_edge(("gemm", k - 1, i, j), ("gemm", k, i, j), comm)
    return g


def wavefront(rows: int, cols: int, *, comp: float = 10.0, comm: float = 5.0) -> TaskGraph:
    """A 2-D wavefront sweep: ``(i, j)`` depends on its north and west
    neighbours (dynamic programming / Smith-Waterman shape)."""
    _check(comp, comm)
    if rows < 1 or cols < 1:
        raise GenerationError("rows and cols must be positive")
    g = TaskGraph()
    for i in range(rows):
        for j in range(cols):
            g.add_task((i, j), comp)
            if i:
                g.add_edge((i - 1, j), (i, j), comm)
            if j:
                g.add_edge((i, j - 1), (i, j), comm)
    return g
