"""Random series-parallel parse trees.

The paper's graph generation system "generates graphs using a random parse
tree generator" (section 5.1).  A parse tree here is a series-parallel
recipe: LINEAR internal nodes compose their children sequentially,
INDEPENDENT nodes compose them concurrently, leaves are tasks.  Kinds
alternate by level (a linear child of a linear node would merge into its
parent), matching the canonical clan parse trees of
:mod:`repro.clans.parse_tree`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

import numpy as np

from ..core.exceptions import GenerationError

__all__ = ["SPKind", "SPNode", "random_parse_tree"]


class SPKind(Enum):
    """Node kinds of a series-parallel parse tree."""

    LEAF = "leaf"
    LINEAR = "linear"
    INDEPENDENT = "independent"


@dataclass
class SPNode:
    """One node of a series-parallel parse tree."""

    kind: SPKind
    children: list["SPNode"] = field(default_factory=list)

    @property
    def n_leaves(self) -> int:
        if self.kind is SPKind.LEAF:
            return 1
        return sum(c.n_leaves for c in self.children)

    def walk(self) -> Iterator["SPNode"]:
        yield self
        for c in self.children:
            yield from c.walk()

    def depth(self) -> int:
        if self.kind is SPKind.LEAF:
            return 0
        return 1 + max(c.depth() for c in self.children)


def random_parse_tree(
    n_leaves: int,
    rng: np.random.Generator,
    *,
    max_children: int = 4,
    root_kind: SPKind | None = None,
) -> SPNode:
    """A uniform-ish random series-parallel tree with exactly ``n_leaves``.

    Each internal node splits its leaf budget into 2..``max_children``
    random positive parts; child kinds alternate with the parent's.  The
    root kind defaults to LINEAR with probability 0.6 (a mostly sequential
    program with parallel sections — the common PDG shape), INDEPENDENT
    otherwise.
    """
    if n_leaves < 1:
        raise GenerationError(f"need at least one leaf, got {n_leaves}")
    if max_children < 2:
        raise GenerationError(f"max_children must be >= 2, got {max_children}")
    if root_kind is None:
        root_kind = SPKind.LINEAR if rng.random() < 0.6 else SPKind.INDEPENDENT
    elif root_kind is SPKind.LEAF:
        raise GenerationError("root kind cannot be LEAF")
    return _build(n_leaves, root_kind, rng, max_children)


def _build(n: int, kind: SPKind, rng: np.random.Generator, max_children: int) -> SPNode:
    if n == 1:
        return SPNode(SPKind.LEAF)
    k = int(rng.integers(2, min(max_children, n) + 1))
    parts = _random_composition(n, k, rng)
    child_kind = SPKind.INDEPENDENT if kind is SPKind.LINEAR else SPKind.LINEAR
    children = [_build(p, child_kind, rng, max_children) for p in parts]
    return SPNode(kind, children)


def _random_composition(n: int, k: int, rng: np.random.Generator) -> list[int]:
    """Split ``n`` into ``k`` positive integer parts, uniformly at random."""
    if k > n:
        raise GenerationError(f"cannot split {n} leaves into {k} parts")
    cuts = rng.choice(n - 1, size=k - 1, replace=False) + 1
    cuts.sort()
    bounds = [0, *cuts.tolist(), n]
    return [bounds[i + 1] - bounds[i] for i in range(k)]
