"""Layered random DAGs — the alternative generator for the bias study.

The paper closes with an open question (section 5.1): "It is unclear
whether the graph generation method provided a bias toward any of the
heuristics.  Further study is required."  This module provides the study's
instrument: a structurally different random-DAG family (layer-by-layer
construction in the style of Tobita & Kasahara's STG suite) that shares the
weight-assignment pass — so Table 2/3-style comparisons can be rerun on
graphs that did *not* come from a series-parallel parse tree.

Layered DAGs are generally *not* series-parallel: their clan parse trees
are dominated by primitive clans, stressing CLANS's pseudo-clan handling.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import GenerationError
from ..core.metrics import GRANULARITY_BANDS, granularity
from ..core.taskgraph import TaskGraph
from .random_dag import assign_weights, sample_target_granularity

__all__ = ["layered_dag", "generate_layered_pdg"]


def layered_dag(
    rng: np.random.Generator,
    *,
    n_tasks: int,
    mean_width: float = 4.0,
    p_skip: float = 0.15,
) -> TaskGraph:
    """A connected random layered DAG with ``n_tasks`` unit-weight tasks.

    Tasks are dealt into layers of Poisson(``mean_width``) size (min 1).
    Every non-first-layer task draws at least one predecessor from the
    previous layer; additional edges from the previous layer appear with
    probability ~1/width, and long "skip" edges from any earlier layer with
    probability ``p_skip``.
    """
    if n_tasks < 1:
        raise GenerationError(f"need at least one task, got {n_tasks}")
    if mean_width < 1:
        raise GenerationError(f"mean_width must be >= 1, got {mean_width}")
    layers: list[list[int]] = []
    nid = 0
    graph = TaskGraph()
    while nid < n_tasks:
        width = max(1, int(rng.poisson(mean_width)))
        width = min(width, n_tasks - nid)
        layer = list(range(nid, nid + width))
        for t in layer:
            graph.add_task(t, 1.0)
        layers.append(layer)
        nid += width

    for li in range(1, len(layers)):
        prev = layers[li - 1]
        for t in layers[li]:
            # guaranteed predecessor keeps the graph connected layer-to-layer
            anchor = prev[int(rng.integers(len(prev)))]
            graph.add_edge(anchor, t, 0.0)
            for p in prev:
                if p != anchor and rng.random() < 1.0 / (1 + len(prev)):
                    graph.add_edge(p, t, 0.0)
            if li >= 2 and rng.random() < p_skip:
                earlier_layer = layers[int(rng.integers(li - 1))]
                skip = earlier_layer[int(rng.integers(len(earlier_layer)))]
                if not graph.has_edge(skip, t):
                    graph.add_edge(skip, t, 0.0)
    return graph


def generate_layered_pdg(
    rng: np.random.Generator,
    *,
    n_tasks: int,
    band: int,
    weight_range: tuple[int, int],
    mean_width: float = 4.0,
    max_attempts: int = 25,
) -> TaskGraph:
    """A layered random PDG landing in the given granularity band.

    Shares :func:`~repro.generation.random_dag.assign_weights` (and its
    exact granularity targeting) with the parse-tree generator, so the two
    families differ only in *topology* — exactly what the bias study needs.
    """
    for _ in range(max_attempts):
        graph = layered_dag(rng, n_tasks=n_tasks, mean_width=mean_width)
        if graph.n_edges == 0:
            continue
        target = sample_target_granularity(band, rng)
        assign_weights(graph, rng, weight_range=weight_range, target_granularity=target)
        lo, hi = GRANULARITY_BANDS[band]
        if lo <= granularity(graph) < hi:
            return graph
    raise GenerationError(
        f"could not generate a layered graph in band {band} with {n_tasks} tasks"
    )
