"""Random PDG construction: parse tree -> DAG -> anchor -> weights.

This mirrors the paper's pipeline (section 5.1): "The graph generation
system generates graphs using a random parse tree generator.  The graphs
are then modified by removing and inserting randomly connected edges to
match the given anchor out-degree", after which weights are assigned to land
in a target granularity band.

The three stages are exposed separately (:func:`sp_dag_from_tree`,
:func:`adjust_anchor`, :func:`assign_weights`) and composed by
:func:`generate_pdg`.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.exceptions import GenerationError
from ..core.metrics import GRANULARITY_BANDS, anchor_out_degree, granularity
from ..core.taskgraph import TaskGraph
from .parse_tree import SPKind, SPNode, random_parse_tree

__all__ = [
    "sp_dag_from_tree",
    "adjust_anchor",
    "assign_weights",
    "sample_target_granularity",
    "generate_pdg",
]


def sp_dag_from_tree(tree: SPNode) -> TaskGraph:
    """Expand a series-parallel parse tree into a DAG of unit-weight tasks.

    LINEAR nodes join consecutive children with complete bipartite
    sink-to-source edges; INDEPENDENT nodes take the disjoint union.  Tasks
    are numbered 0..n-1 in construction order; weights and edge costs are
    placeholders (1 and 0) until :func:`assign_weights` runs.
    """
    graph = TaskGraph()
    counter = [0]

    def build(node: SPNode) -> tuple[list[int], list[int]]:
        """Returns (sources, sinks) of the fragment."""
        if node.kind is SPKind.LEAF:
            t = counter[0]
            counter[0] += 1
            graph.add_task(t, 1.0)
            return [t], [t]
        parts = [build(c) for c in node.children]
        if node.kind is SPKind.INDEPENDENT:
            return (
                [s for srcs, _ in parts for s in srcs],
                [s for _, sinks in parts for s in sinks],
            )
        # LINEAR: chain the fragments
        for (_, sinks_a), (srcs_b, _) in zip(parts, parts[1:]):
            for u in sinks_a:
                for v in srcs_b:
                    graph.add_edge(u, v, 0.0)
        return parts[0][0], parts[-1][1]

    build(tree)
    return graph


def adjust_anchor(
    graph: TaskGraph,
    anchor: int,
    rng: np.random.Generator,
    *,
    max_steps: int | None = None,
) -> None:
    """Insert/remove edges in place until the anchor out-degree equals ``anchor``.

    One node at a time is driven to out-degree exactly ``anchor`` — chosen
    among nodes holding the current (wrong) mode — by adding forward edges
    (with respect to a fixed topological order, preserving acyclicity) or
    removing random outgoing edges.  Raises :class:`GenerationError` if the
    target cannot be reached (callers resample the parse tree).
    """
    if anchor < 1:
        raise GenerationError(f"anchor must be >= 1, got {anchor}")
    topo = graph.topological_order()
    pos = {t: i for i, t in enumerate(topo)}
    if max_steps is None:
        max_steps = 4 * graph.n_tasks + 16

    for _ in range(max_steps):
        mode = _mode_out_degree(graph)
        if mode == anchor:
            return
        candidates = [
            t
            for t in topo
            if graph.out_degree(t) == mode
            and (mode > anchor or _n_addable(graph, t, pos, topo) >= anchor - mode)
        ]
        if not candidates and mode < anchor:
            # No mode-degree node can grow; try any growable non-sink.
            candidates = [
                t
                for t in topo
                if 0 < graph.out_degree(t) < anchor
                and _n_addable(graph, t, pos, topo) >= anchor - graph.out_degree(t)
            ]
        if not candidates:
            raise GenerationError(
                f"cannot reach anchor {anchor} (mode stuck at {mode})"
            )
        v = candidates[int(rng.integers(len(candidates)))]
        if graph.out_degree(v) < anchor:
            targets = _addable(graph, v, pos, topo)
            picks = rng.choice(len(targets), size=anchor - graph.out_degree(v), replace=False)
            for i in picks:
                graph.add_edge(v, targets[int(i)], 0.0)
        else:
            out = graph.successors(v)
            drop = rng.choice(len(out), size=graph.out_degree(v) - anchor, replace=False)
            for i in drop:
                graph.remove_edge(v, out[int(i)])
    raise GenerationError(f"anchor adjustment did not converge to {anchor}")


def _mode_out_degree(graph: TaskGraph) -> int:
    return anchor_out_degree(graph, include_sinks=False)


def _addable(graph: TaskGraph, v, pos, topo) -> list:
    """Later-in-topo-order nodes ``v`` has no edge to (safe to connect)."""
    succ = set(graph.successors(v))
    return [u for u in topo if pos[u] > pos[v] and u not in succ]


def _n_addable(graph: TaskGraph, v, pos, topo) -> int:
    return len(_addable(graph, v, pos, topo))


def assign_weights(
    graph: TaskGraph,
    rng: np.random.Generator,
    *,
    weight_range: tuple[int, int],
    target_granularity: float,
    jitter: float = 0.3,
) -> None:
    """Assign node and edge weights in place, hitting the target granularity.

    Node weights are uniform integers in ``weight_range`` (section 3.3).
    Each non-sink's heaviest outgoing edge is sized so the node's
    weight/edge ratio scatters (log-normally, ``jitter`` sigma) around the
    target; remaining out-edges get 30–100% of the heaviest.  A single
    closing rescale of all edge weights makes the realized paper-formula
    granularity *exactly* the target.
    """
    wmin, wmax = weight_range
    if not (0 < wmin <= wmax):
        raise GenerationError(f"bad weight range {weight_range}")
    if target_granularity <= 0:
        raise GenerationError("target granularity must be positive")
    for t in graph.tasks():
        graph.add_task(t, float(rng.integers(wmin, wmax + 1)))
    for t in graph.tasks():
        out = graph.successors(t)
        if not out:
            continue
        g_i = target_granularity * math.exp(rng.normal(0.0, jitter))
        max_edge = graph.weight(t) / g_i
        heavy = out[int(rng.integers(len(out)))]
        for s in out:
            if s == heavy:
                graph.add_edge(t, s, max_edge)
            else:
                graph.add_edge(t, s, max_edge * rng.uniform(0.3, 1.0))
    scale = granularity(graph) / target_granularity
    for u, v in graph.edges():
        graph.add_edge(u, v, graph.edge_weight(u, v) * scale)


#: Sampling windows for a target granularity inside each paper band.  The
#: open-ended bands get practical inner limits; all windows sit strictly
#: inside the band so float error in the closing rescale cannot leak out.
_BAND_WINDOWS: tuple[tuple[float, float], ...] = (
    (0.012, 0.075),
    (0.085, 0.19),
    (0.21, 0.78),
    (0.82, 1.95),
    (2.05, 8.0),
)


def sample_target_granularity(band: int, rng: np.random.Generator) -> float:
    """Log-uniform granularity target within paper band ``band`` (0..4)."""
    if not 0 <= band < len(GRANULARITY_BANDS):
        raise GenerationError(f"band must be 0..{len(GRANULARITY_BANDS) - 1}")
    lo, hi = _BAND_WINDOWS[band]
    return float(math.exp(rng.uniform(math.log(lo), math.log(hi))))


def generate_pdg(
    rng: np.random.Generator,
    *,
    n_tasks: int,
    band: int,
    anchor: int,
    weight_range: tuple[int, int],
    max_attempts: int = 25,
) -> TaskGraph:
    """One random PDG in the given classification cell.

    Resamples the parse tree when anchor adjustment fails; verifies the
    realized classification before returning.
    """
    last_error: GenerationError | None = None
    for _ in range(max_attempts):
        tree = random_parse_tree(n_tasks, rng)
        graph = sp_dag_from_tree(tree)
        if graph.n_edges == 0:  # fully independent: no anchor/granularity
            continue
        try:
            adjust_anchor(graph, anchor, rng)
        except GenerationError as exc:
            last_error = exc
            continue
        target = sample_target_granularity(band, rng)
        assign_weights(graph, rng, weight_range=weight_range, target_granularity=target)
        lo, hi = GRANULARITY_BANDS[band]
        g = granularity(graph)
        if not (lo <= g < hi):  # pragma: no cover - rescale is exact
            last_error = GenerationError(f"granularity {g} missed band {band}")
            continue
        if _mode_out_degree(graph) != anchor:  # pragma: no cover
            last_error = GenerationError("anchor drifted")
            continue
        return graph
    raise GenerationError(
        f"could not generate a graph for band={band} anchor={anchor} "
        f"n={n_tasks}: {last_error}"
    )
