"""The paper's 2100-graph test suite (Table 1).

Sixty cells — 5 granularity bands x 4 anchor out-degrees x 3 node-weight
ranges — of 35 graphs each.  Every cell is generated from its own child seed
of one master seed, so the suite is reproducible and any subset of cells can
be regenerated independently.

Note on weight ranges: the paper's section 3.3 and Tables 6–9 use
[20,100] / [20,200] / [20,400]; Table 1's header instead says 10–100 /
10–200 / 10–300.  We follow section 3.3 (see DESIGN.md).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ..core.metrics import GRANULARITY_BANDS
from ..core.taskgraph import TaskGraph
from .random_dag import generate_pdg

__all__ = [
    "PAPER_ANCHORS",
    "PAPER_WEIGHT_RANGES",
    "PAPER_GRAPHS_PER_CELL",
    "GRAPH_CLASSES",
    "SuiteCell",
    "SuiteGraph",
    "AdversarialGraph",
    "suite_cells",
    "generate_suite",
    "adversarial_suite",
    "band_label",
    "weight_range_label",
]

PAPER_ANCHORS: tuple[int, ...] = (2, 3, 4, 5)
PAPER_WEIGHT_RANGES: tuple[tuple[int, int], ...] = ((20, 100), (20, 200), (20, 400))
PAPER_GRAPHS_PER_CELL: int = 35

#: Row labels used throughout the paper's tables.
_BAND_LABELS = ("G < 0.08", "0.08 < G < 0.2", "0.2 < G < 0.8", "0.8 < G < 2", "2 < G")


def band_label(band: int) -> str:
    """The paper's row label for granularity band ``band``."""
    return _BAND_LABELS[band]


def weight_range_label(weight_range: tuple[int, int]) -> str:
    """The paper's row label for a node weight range."""
    return f"{weight_range[0]} - {weight_range[1]}"


@dataclass(frozen=True)
class SuiteCell:
    """One Table-1 cell: a (granularity band, anchor, weight range) class."""

    band: int
    anchor: int
    weight_range: tuple[int, int]

    def __post_init__(self) -> None:
        if not 0 <= self.band < len(GRANULARITY_BANDS):
            raise ValueError(f"band out of range: {self.band}")

    @property
    def label(self) -> str:
        return (
            f"{band_label(self.band)} / anchor {self.anchor} / "
            f"weights {weight_range_label(self.weight_range)}"
        )


@dataclass(frozen=True)
class SuiteGraph:
    """A generated graph together with its classification cell."""

    cell: SuiteCell
    index: int
    graph: TaskGraph

    @property
    def graph_id(self) -> str:
        lo, hi = self.cell.weight_range
        return f"b{self.cell.band}-a{self.cell.anchor}-w{lo}_{hi}-#{self.index}"


@dataclass(frozen=True)
class AdversarialGraph(SuiteGraph):
    """A promoted search-discovered instance (`adversarial` graph class).

    The graph id is derived from the instance's wire digest rather than a
    cell index, so identity is content-addressed and stable no matter how
    many instances a store holds.  Everything downstream of generation —
    ``run_suite``, campaigns, checkpoints, the serving tier — only touches
    ``graph_id`` / ``cell`` / ``graph``, so these flow through unchanged.
    """

    digest: str = ""

    @property
    def graph_id(self) -> str:
        return f"adv-{self.digest[:12]}"


def suite_cells() -> list[SuiteCell]:
    """All 60 cells in Table 1's iteration order (band, anchor, range)."""
    return [
        SuiteCell(band, anchor, wr)
        for band in range(len(GRANULARITY_BANDS))
        for anchor in PAPER_ANCHORS
        for wr in PAPER_WEIGHT_RANGES
    ]


def generate_suite(
    *,
    graphs_per_cell: int = PAPER_GRAPHS_PER_CELL,
    seed: int = 19940815,
    n_tasks_range: tuple[int, int] = (40, 100),
    cells: list[SuiteCell] | None = None,
) -> Iterator[SuiteGraph]:
    """Lazily generate the classified random-graph suite.

    ``graphs_per_cell=35`` with all 60 cells reproduces the paper's 2100
    graphs.  Graph sizes are sampled uniformly from ``n_tasks_range`` (the
    paper never states its sizes; see DESIGN.md).
    """
    if graphs_per_cell < 1:
        raise ValueError("graphs_per_cell must be positive")
    nmin, nmax = n_tasks_range
    if not 2 <= nmin <= nmax:
        raise ValueError(f"bad n_tasks_range {n_tasks_range}")
    all_cells = suite_cells() if cells is None else cells
    master = np.random.SeedSequence(seed)
    # One child seed per *possible* cell keeps a cell's graphs identical
    # whether or not other cells are generated.
    index_of = {c: i for i, c in enumerate(suite_cells())}
    children = master.spawn(len(index_of))
    for cell in all_cells:
        rng = np.random.default_rng(children[index_of.get(cell, 0)])
        if cell not in index_of:
            # Custom (non-Table-1) cell: derive a seed from its fields.
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    (seed, cell.band, cell.anchor, *cell.weight_range)
                )
            )
        for i in range(graphs_per_cell):
            n = int(rng.integers(nmin, nmax + 1))
            graph = generate_pdg(
                rng,
                n_tasks=n,
                band=cell.band,
                anchor=cell.anchor,
                weight_range=cell.weight_range,
            )
            yield SuiteGraph(cell, i, graph)


def adversarial_suite(
    store_dir=None, *, promoted_only: bool = True
) -> Iterator[SuiteGraph]:
    """Lazily yield the promoted adversarial instances as suite graphs.

    The ``adversarial`` graph class: instances discovered by
    ``repro adversarial search`` and promoted into the store
    (``results/adversarial/`` by default) come back as
    :class:`AdversarialGraph` values in deterministic (digest) order,
    classified into a Table-1 style cell from their realized metrics.
    An absent store yields nothing.
    """
    from ..adversarial.store import DEFAULT_STORE_DIR, adversarial_suite_graphs

    if store_dir is None:
        store_dir = DEFAULT_STORE_DIR
    yield from adversarial_suite_graphs(store_dir, promoted_only=promoted_only)


#: Registered graph classes: name -> generator of SuiteGraphs.  ``table1``
#: is the paper's random testbed; ``adversarial`` serves the promoted
#: instances from the on-disk store.
GRAPH_CLASSES = {
    "table1": generate_suite,
    "adversarial": adversarial_suite,
}
