"""Processor network topologies and topology-aware scheduling.

The paper (appendix A.3) notes that MH "considers processor speed,
interconnection topology, and contention … Since the topology we use in
our examples is fully-connected our experiment does not take advantage of
this feature."  This subpackage builds the feature out:

* :mod:`repro.topology.networks` — fixed processor networks (fully
  connected, ring, 2-D mesh, hypercube, star) with hop distances;
* :mod:`repro.topology.simulate` — timing/validation where a message
  between processors costs ``edge weight * hop distance``;
* :mod:`repro.topology.mh_topo` — the topology-aware MH variant, which
  reduces exactly to bounded MH on a fully connected network.
"""

from .mh_topo import TopologyMHScheduler
from .networks import (
    FullyConnected,
    Hypercube,
    Mesh2D,
    Ring,
    Star,
    Topology,
)
from .contention import OnePortResult, Transfer, simulate_one_port
from .port_aware import PortAwareScheduler
from .simulate import simulate_on_topology, validate_on_topology

__all__ = [
    "Topology",
    "FullyConnected",
    "Ring",
    "Mesh2D",
    "Hypercube",
    "Star",
    "simulate_on_topology",
    "validate_on_topology",
    "TopologyMHScheduler",
    "simulate_one_port",
    "OnePortResult",
    "Transfer",
    "PortAwareScheduler",
]
