"""One-port communication contention — stressing the paper's assumption 4.

The paper's model lets communication overlap computation without limit:
a processor can send any number of messages simultaneously.  Real NICs
serialize.  The classic *one-port* model gives every processor one send
port and one receive port; each transfer occupies its sender's send port
and its receiver's receive port for the full edge weight.

:func:`simulate_one_port` times a processor assignment under that model
(greedy, messages issued in task order), so any heuristic's clustering can
be re-evaluated with contention: the gap against the contention-free
simulator quantifies how much that heuristic leans on assumption 4.
Same-processor data passing remains free.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..core.analysis import b_levels_view
from ..core.exceptions import ScheduleError
from ..core.schedule import Schedule
from ..core.simulator import _priority_topological_order
from ..core.taskgraph import Task, TaskGraph

__all__ = ["Transfer", "OnePortResult", "simulate_one_port"]


@dataclass(frozen=True)
class Transfer:
    """One cross-processor message in the one-port timing."""

    src: Task
    dst: Task
    start: float
    finish: float
    from_proc: int
    to_proc: int


@dataclass(frozen=True)
class OnePortResult:
    """Tasks plus the message log of a one-port simulation."""

    schedule: Schedule
    transfers: tuple[Transfer, ...]

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    def port_busy_time(self) -> float:
        """Total time spent on transfers (each counted once)."""
        return sum(t.finish - t.start for t in self.transfers)


def simulate_one_port(
    graph: TaskGraph,
    assignment: Mapping[Task, int],
    *,
    priority: Mapping[Task, float] | None = None,
) -> OnePortResult:
    """Time an assignment with one send and one receive port per processor.

    Tasks run in a priority-topological order per processor (as in the
    contention-free simulator); each cross-processor input is fetched by a
    transfer that must reserve the sender's send port and the receiver's
    receive port, both for the edge weight.  Transfers are issued greedily
    in task order (heaviest-priority consumers fetch first), which keeps
    the simulation deterministic.
    """
    tasks = set(graph.tasks())
    if set(assignment) != tasks:
        raise ScheduleError("assignment does not cover exactly the graph's tasks")
    if priority is None:
        priority = b_levels_view(graph, communication=True)

    schedule = Schedule()
    transfers: list[Transfer] = []
    proc_free: dict[int, float] = {}
    send_free: dict[int, float] = {}
    recv_free: dict[int, float] = {}

    for t in _priority_topological_order(graph, priority):
        p = assignment[t]
        start = proc_free.get(p, 0.0)
        for pred, c in graph.in_edges(t).items():
            q = assignment[pred]
            if q == p:
                arrival = schedule.finish(pred)
            elif c == 0.0:
                arrival = schedule.finish(pred)
            else:
                xfer_start = max(
                    schedule.finish(pred),
                    send_free.get(q, 0.0),
                    recv_free.get(p, 0.0),
                )
                arrival = xfer_start + c
                send_free[q] = arrival
                recv_free[p] = arrival
                transfers.append(
                    Transfer(pred, t, xfer_start, arrival, q, p)
                )
            if arrival > start:
                start = arrival
        schedule.place(t, p, start, graph.weight(t))
        proc_free[p] = schedule.finish(t)
    return OnePortResult(schedule, tuple(transfers))
