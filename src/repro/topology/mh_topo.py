"""Topology-aware MH — the feature the paper's clique testbed left inert.

Appendix A.3: MH "fits the PDG to various network topologies in an attempt
to minimize communication delays … by placing communicating tasks close
together."  This variant implements that behaviour on the
:mod:`repro.topology.networks` models:

* priority = communication-inclusive level, exactly as uniform MH;
* each free task is allocated to the topology processor where it *starts
  earliest*, with message arrivals scaled by hop distance — so consumers
  gravitate toward their producers' neighbourhoods;
* the processor pool is the fixed network (no growth).

On a :class:`~repro.topology.networks.FullyConnected` network of p
processors this reduces to ``MHScheduler(max_processors=p)`` (every
distance is one hop), which the tests assert.
"""

from __future__ import annotations

import heapq

from ..core.analysis import b_levels_view
from ..core.schedule import Schedule
from ..core.taskgraph import Task, TaskGraph
from ..schedulers.base import Scheduler
from .networks import Topology

__all__ = ["TopologyMHScheduler"]


class TopologyMHScheduler(Scheduler):
    """MH list scheduling onto a fixed processor network.

    Not registered in the global registry (it is parameterized by the
    network); construct directly::

        TopologyMHScheduler(Ring(8)).schedule(graph)
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.name = f"MH@{type(topology).__name__}{topology.n_processors}"

    def _schedule(self, graph: TaskGraph) -> Schedule:
        topo = self.topology
        level = b_levels_view(graph, communication=True)
        seq = {t: i for i, t in enumerate(graph.tasks())}

        schedule = Schedule()
        proc_of: dict[Task, int] = {}
        proc_free = [0.0] * topo.n_processors

        n_sched_preds = {t: 0 for t in graph.tasks()}
        free = [(-level[t], seq[t], t) for t in graph.tasks() if graph.in_degree(t) == 0]
        heapq.heapify(free)
        events: list[tuple[float, int, Task]] = []
        n_done = 0

        while n_done < graph.n_tasks:
            while free:
                _, _, task = heapq.heappop(free)
                best_p, best_start = 0, float("inf")
                for p in range(topo.n_processors):
                    start = proc_free[p]
                    for pred, c in graph.in_edges(task).items():
                        arrival = schedule.finish(pred) + c * topo.distance(
                            proc_of[pred], p
                        )
                        if arrival > start:
                            start = arrival
                    if start < best_start - 1e-12:
                        best_p, best_start = p, start
                schedule.place(task, best_p, best_start, graph.weight(task))
                proc_of[task] = best_p
                proc_free[best_p] = schedule.finish(task)
                heapq.heappush(events, (schedule.finish(task), seq[task], task))
                n_done += 1
            while events:
                _, _, task = heapq.heappop(events)
                for succ in graph.successors(task):
                    n_sched_preds[succ] += 1
                    if n_sched_preds[succ] == graph.in_degree(succ):
                        heapq.heappush(free, (-level[succ], seq[succ], succ))
        return schedule
