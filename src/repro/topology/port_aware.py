"""A contention-aware list scheduler for the one-port model.

:mod:`repro.topology.contention` showed that schedules built for the
paper's free-overlap model degrade badly when ports serialize.  This
scheduler plans *with* the port constraints: an MH-style list scheduler
whose placement rule evaluates, for each candidate processor, the true
one-port start time — reserving the sender/receiver ports for every fetch
it would trigger — and commits the reservations of the chosen candidate.

The benchmark compares it against re-timed contention-blind heuristics:
planning with the real model should recover much of the penalty.
"""

from __future__ import annotations

import heapq

from ..core.analysis import b_levels_view
from ..core.exceptions import GraphError
from ..core.schedule import Schedule
from ..core.taskgraph import Task, TaskGraph

__all__ = ["PortAwareScheduler"]


class PortAwareScheduler:
    """List scheduling that plans around one-port communication."""

    def __init__(self, *, max_processors: int | None = None) -> None:
        if max_processors is not None and max_processors < 1:
            raise GraphError("max_processors must be >= 1")
        self.max_processors = max_processors
        self.name = "MH1P"
        #: Transfers committed by the last schedule() call.
        self.last_transfers: list[tuple[Task, Task, float, float]] = []

    def schedule(self, graph: TaskGraph) -> Schedule:
        """Schedule under the one-port model (see module docstring)."""
        if graph.n_tasks == 0:
            raise GraphError("MH1P: cannot schedule an empty graph")
        graph.validate()
        level = b_levels_view(graph, communication=True)
        seq = {t: i for i, t in enumerate(graph.tasks())}

        schedule = Schedule()
        proc_of: dict[Task, int] = {}
        proc_free: list[float] = []
        send_free: list[float] = []
        recv_free: list[float] = []
        self.last_transfers = []

        def plan(task: Task, proc: int):
            """(start, port reservations) for placing ``task`` on ``proc``."""
            fresh = proc == len(proc_free)
            start = 0.0 if fresh else proc_free[proc]
            recv_cursor = 0.0 if fresh else recv_free[proc]
            reservations = []  # (src_proc, xfer_start, xfer_finish, pred)
            # fetch in deterministic pred order (heaviest message first —
            # long transfers should not wait behind short ones)
            preds = sorted(
                graph.in_edges(task).items(), key=lambda kv: (-kv[1], seq[kv[0]])
            )
            send_cursor = dict()  # local view of send ports
            for pred, c in preds:
                q = proc_of[pred]
                if q == proc or c == 0.0:
                    arrival = schedule.finish(pred)
                else:
                    s_free = send_cursor.get(q, send_free[q])
                    xfer = max(schedule.finish(pred), s_free, recv_cursor)
                    arrival = xfer + c
                    send_cursor[q] = arrival
                    recv_cursor = arrival
                    reservations.append((q, xfer, arrival, pred))
                if arrival > start:
                    start = arrival
            return start, recv_cursor, reservations

        n_sched_preds = {t: 0 for t in graph.tasks()}
        free = [(-level[t], seq[t], t) for t in graph.tasks() if graph.in_degree(t) == 0]
        heapq.heapify(free)
        while free:
            _, _, task = heapq.heappop(free)
            can_grow = (
                self.max_processors is None or len(proc_free) < self.max_processors
            )
            candidates = list(range(len(proc_free))) + (
                [len(proc_free)] if can_grow or not proc_free else []
            )
            best = None
            for proc in candidates:
                start, recv_cursor, reservations = plan(task, proc)
                key = (start, proc)
                if best is None or key < best[0]:
                    best = (key, proc, start, recv_cursor, reservations)
            assert best is not None
            _, proc, start, recv_cursor, reservations = best
            if proc == len(proc_free):
                proc_free.append(0.0)
                send_free.append(0.0)
                recv_free.append(0.0)
            for q, xfer, arrival, pred in reservations:
                send_free[q] = max(send_free[q], arrival)
                self.last_transfers.append((pred, task, xfer, arrival))
            recv_free[proc] = max(recv_free[proc], recv_cursor)
            schedule.place(task, proc, start, graph.weight(task))
            proc_free[proc] = schedule.finish(task)
            proc_of[task] = proc
            for succ in graph.successors(task):
                n_sched_preds[succ] += 1
                if n_sched_preds[succ] == graph.in_degree(succ):
                    heapq.heappush(free, (-level[succ], seq[succ], succ))
        return schedule
