"""Fixed processor networks with hop distances.

Under the topology model, a message whose edge weight is ``c`` sent between
processors ``p`` and ``q`` takes ``c * distance(p, q)`` — store-and-forward
over the shortest path, no contention.  ``distance(p, p) == 0`` always, so
the fully connected network with unit distances reproduces the paper's
uniform model on a bounded pool.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..core.exceptions import ScheduleError

__all__ = ["Topology", "FullyConnected", "Ring", "Mesh2D", "Hypercube", "Star"]


class Topology(ABC):
    """A finite set of processors 0..n-1 with a hop metric."""

    def __init__(self, n_processors: int) -> None:
        if n_processors < 1:
            raise ScheduleError(f"need at least one processor, got {n_processors}")
        self.n_processors = n_processors

    def distance(self, p: int, q: int) -> int:
        """Hops between processors ``p`` and ``q`` (0 iff p == q)."""
        self._check(p)
        self._check(q)
        if p == q:
            return 0
        return self._distance(p, q)

    @abstractmethod
    def _distance(self, p: int, q: int) -> int:
        """Hop count for distinct, validated p and q."""

    def _check(self, p: int) -> None:
        if not 0 <= p < self.n_processors:
            raise ScheduleError(
                f"processor {p} outside topology of size {self.n_processors}"
            )

    @property
    def diameter(self) -> int:
        """Largest pairwise distance."""
        return max(
            self.distance(p, q)
            for p in range(self.n_processors)
            for q in range(self.n_processors)
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_processors={self.n_processors})"


class FullyConnected(Topology):
    """Every pair one hop apart — the paper's network, bounded."""

    def _distance(self, p: int, q: int) -> int:
        return 1


class Ring(Topology):
    """Bidirectional ring; distance is the shorter way around."""

    def _distance(self, p: int, q: int) -> int:
        d = abs(p - q)
        return min(d, self.n_processors - d)


class Mesh2D(Topology):
    """A ``rows x cols`` grid with Manhattan distances."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ScheduleError("mesh dimensions must be positive")
        super().__init__(rows * cols)
        self.rows = rows
        self.cols = cols

    def _distance(self, p: int, q: int) -> int:
        pr, pc = divmod(p, self.cols)
        qr, qc = divmod(q, self.cols)
        return abs(pr - qr) + abs(pc - qc)

    def __repr__(self) -> str:
        return f"Mesh2D(rows={self.rows}, cols={self.cols})"


class Hypercube(Topology):
    """A ``2^dim``-processor hypercube; distance = Hamming distance."""

    def __init__(self, dim: int) -> None:
        if dim < 0:
            raise ScheduleError("hypercube dimension must be >= 0")
        super().__init__(1 << dim)
        self.dim = dim

    def _distance(self, p: int, q: int) -> int:
        return (p ^ q).bit_count()

    def __repr__(self) -> str:
        return f"Hypercube(dim={self.dim})"


class Star(Topology):
    """Processor 0 is the hub; leaves talk through it (2 hops apart)."""

    def _distance(self, p: int, q: int) -> int:
        return 1 if p == 0 or q == 0 else 2
