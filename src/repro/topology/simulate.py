"""Timing and validation under a processor-network topology.

The only change from the uniform model (:mod:`repro.core.simulator`) is the
communication rule: a message of edge weight ``c`` between processors ``p``
and ``q`` arrives after ``c * distance(p, q)`` — store-and-forward along a
shortest path, no link contention.  A fully connected topology therefore
reproduces the paper's model exactly.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..core.analysis import b_levels_view
from ..core.exceptions import ScheduleError
from ..core.schedule import Schedule
from ..core.simulator import _priority_topological_order
from ..core.taskgraph import Task, TaskGraph
from .networks import Topology

__all__ = ["simulate_on_topology", "validate_on_topology"]

_EPS = 1e-9


def simulate_on_topology(
    graph: TaskGraph,
    assignment: Mapping[Task, int],
    topology: Topology,
    *,
    priority: Mapping[Task, float] | None = None,
) -> Schedule:
    """Time a processor assignment on ``topology``.

    Per-processor orders are derived from ``priority`` (default b-level),
    as in :func:`repro.core.simulator.simulate_clustering`.
    """
    tasks = set(graph.tasks())
    if set(assignment) != tasks:
        raise ScheduleError("assignment does not cover exactly the graph's tasks")
    for t, p in assignment.items():
        if not 0 <= p < topology.n_processors:
            raise ScheduleError(
                f"task {t!r} assigned to processor {p} outside {topology!r}"
            )
    if priority is None:
        priority = b_levels_view(graph, communication=True)

    schedule = Schedule()
    proc_free: dict[int, float] = {}
    for t in _priority_topological_order(graph, priority):
        p = assignment[t]
        start = proc_free.get(p, 0.0)
        for pred, c in graph.in_edges(t).items():
            arrival = schedule.finish(pred) + c * topology.distance(
                assignment[pred], p
            )
            if arrival > start:
                start = arrival
        schedule.place(t, p, start, graph.weight(t))
        proc_free[p] = schedule.finish(t)
    return schedule


def validate_on_topology(
    schedule: Schedule, graph: TaskGraph, topology: Topology
) -> None:
    """Check a schedule against the topology-scaled communication rule.

    Mirrors :meth:`Schedule.validate` with the hop-scaled arrival times.
    """
    placed = {p.task for p in schedule}
    if placed != set(graph.tasks()):
        raise ScheduleError("schedule does not cover exactly the graph's tasks")
    for p in schedule:
        if not 0 <= p.processor < topology.n_processors:
            raise ScheduleError(
                f"task {p.task!r} on processor {p.processor} outside {topology!r}"
            )
        expect = graph.weight(p.task)
        if abs((p.finish - p.start) - expect) > _EPS:
            raise ScheduleError(f"task {p.task!r} has wrong duration")
    for proc in schedule.processors:
        row = schedule.tasks_on(proc)
        for a, b in zip(row, row[1:]):
            if b.start < a.finish - _EPS:
                raise ScheduleError(
                    f"tasks {a.task!r} and {b.task!r} overlap on processor {proc}"
                )
    for u, v in graph.edges():
        pu, pv = schedule[u], schedule[v]
        arrival = pu.finish + graph.edge_weight(u, v) * topology.distance(
            pu.processor, pv.processor
        )
        if pv.start < arrival - _EPS:
            raise ScheduleError(
                f"task {v!r} starts before its input from {u!r} arrives "
                f"over the network"
            )
