"""Visualization exports: SVG Gantt charts, Chrome trace events, dot trees.

Pure-string renderers (no plotting dependencies) so schedules and clan
trees can be inspected in a browser:

* :func:`schedule_to_svg` — a Gantt chart, one lane per processor, bars
  labelled with task ids, communication-free (bars only);
* :func:`schedule_to_trace` — Chrome ``chrome://tracing`` / Perfetto
  trace-event JSON, one "thread" per processor;
* :func:`clan_tree_to_dot` — Graphviz source for a clan parse tree.
"""

from __future__ import annotations

import json
import html

from .clans.parse_tree import ClanKind, ClanNode
from .core.schedule import Schedule
from .obs.trace import complete_event

__all__ = ["schedule_to_svg", "schedule_to_trace", "clan_tree_to_dot"]

# a small qualitative palette; tasks cycle through it per processor lane
_COLORS = (
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
)


def schedule_to_svg(
    schedule: Schedule,
    *,
    width: int = 900,
    lane_height: int = 28,
    font_size: int = 11,
) -> str:
    """Render a schedule as a self-contained SVG Gantt chart."""
    procs = schedule.processors
    span = schedule.makespan
    if not procs or span <= 0:
        return '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"/>'
    label_w = 46
    chart_w = width - label_w
    height = lane_height * len(procs) + 30
    scale = chart_w / span

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="{font_size}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for lane, proc in enumerate(procs):
        y = lane * lane_height + 4
        parts.append(
            f'<text x="4" y="{y + lane_height * 0.65:.1f}">P{proc}</text>'
        )
        for i, placed in enumerate(schedule.tasks_on(proc)):
            x = label_w + placed.start * scale
            w = max((placed.finish - placed.start) * scale, 1.0)
            color = _COLORS[i % len(_COLORS)]
            label = html.escape(str(placed.task))
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
                f'height="{lane_height - 8}" fill="{color}" rx="2">'
                f"<title>{label}: {placed.start:g}-{placed.finish:g}</title></rect>"
            )
            if w > font_size * 1.5:
                parts.append(
                    f'<text x="{x + 3:.1f}" y="{y + lane_height * 0.6:.1f}" '
                    f'fill="white">{label}</text>'
                )
    axis_y = lane_height * len(procs) + 16
    parts.append(
        f'<text x="{label_w}" y="{axis_y}">0</text>'
        f'<text x="{width - 40}" y="{axis_y}">{span:g}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def schedule_to_trace(schedule: Schedule) -> str:
    """Chrome trace-event JSON (load in chrome://tracing or Perfetto).

    Events share the :func:`repro.obs.trace.complete_event` vocabulary used
    by the testbed tracer, so schedule traces and experiment traces can be
    inspected with the same tooling.
    """
    events = [
        complete_event(
            str(placed.task),
            cat="task",
            ts=placed.start * 1000.0,  # model units -> "us"
            dur=(placed.finish - placed.start) * 1000.0,
            tid=placed.processor,
        )
        for placed in sorted(schedule, key=lambda p: (p.processor, p.start))
    ]
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}, indent=1)


_KIND_STYLE = {
    ClanKind.LINEAR: ("box", "#dbeafe"),
    ClanKind.INDEPENDENT: ("ellipse", "#dcfce7"),
    ClanKind.PRIMITIVE: ("hexagon", "#fee2e2"),
    ClanKind.LEAF: ("plaintext", "#ffffff"),
}


def clan_tree_to_dot(tree: ClanNode) -> str:
    """Graphviz source for a clan parse tree (kind-coloured nodes)."""
    lines = ["digraph clans {", "  node [style=filled];"]
    ids: dict[int, int] = {}

    def visit(node: ClanNode) -> int:
        nid = ids.setdefault(id(node), len(ids))
        shape, fill = _KIND_STYLE[node.kind]
        if node.is_leaf:
            label = html.escape(str(node.task))
        else:
            label = f"{node.kind.value.upper()} ({node.size})"
        lines.append(
            f'  n{nid} [label="{label}", shape={shape}, fillcolor="{fill}"];'
        )
        for child in node.children:
            cid = visit(child)
            lines.append(f"  n{nid} -> n{cid};")
        return nid

    visit(tree)
    lines.append("}")
    return "\n".join(lines)
